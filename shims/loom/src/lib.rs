//! Offline stand-in for [loom](https://docs.rs/loom).
//!
//! The real loom exhaustively explores thread interleavings under a
//! model-checked scheduler. This shim keeps the API surface the workspace's
//! `cfg(loom)` tests compile against — `loom::model`, `loom::sync::*`,
//! `loom::thread::*` — but backs it with `std`: [`model`] re-runs the test
//! body many times with real threads and injected yields, which is a
//! stress test rather than a proof. When the environment gains the real
//! loom, the same tests upgrade to exhaustive checking with no source
//! change (only this path dependency is swapped).

#![forbid(unsafe_code)]

/// How many times [`model`] re-runs the closure. Real loom explores every
/// interleaving; rerunning with OS scheduling is the best std can do.
const ITERATIONS: usize = 64;

/// Run `f` repeatedly, propagating the first panic (loom's entry point).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..ITERATIONS {
        f();
    }
}

pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_reruns_the_body() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        super::model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.load(Ordering::SeqCst), super::ITERATIONS);
    }

    #[test]
    fn threads_and_sync_reexports_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        super::model({
            let counter = counter.clone();
            move || {
                let c = counter.clone();
                let h = super::thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
                h.join().expect("joins");
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), super::ITERATIONS);
    }
}
