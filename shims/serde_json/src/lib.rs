//! Offline stand-in for `serde_json`: string front-end over the shim
//! `serde` crate's [`Json`] document model.

pub use serde::Json as Value;
use serde::{parse_json, write_json, DeError, Deserialize, Serialize};

/// Error type shared by serialization and deserialization.
pub type Error = DeError;

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_json(&value.to_json(), None))
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_json(&value.to_json(), Some(2)))
}

/// Parse a value back from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let doc = parse_json(text).map_err(DeError::new)?;
    T::from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_pairs_round_trips() {
        let v: Vec<(usize, f64)> = vec![(1, 0.5), (2, -3.25)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_null_round_trips() {
        let v: Vec<Option<String>> = vec![Some("a".into()), None];
        let text = to_string(&v).unwrap();
        let back: Vec<Option<String>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
