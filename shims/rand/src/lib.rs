//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small trait surface it actually uses: [`RngCore`],
//! [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`), the
//! [`Rng`] extension trait (`gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Distribution quality matches
//! what the reproduction needs: uniform ranges from a 64-bit source.

/// A source of randomness: everything builds on `next_u32`/`next_u64`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 step — used to expand a `u64` seed into a full seed array,
/// mirroring `rand_core`'s `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
///
/// Single blanket impl over [`SampleUniform`] types, matching the real
/// crate's structure — this is what lets `gen_range(0..5)` infer `usize`
/// from how the result is used.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that support uniform sampling from `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = unit_f64(rng);
                let v = lo as f64 + (hi as f64 - lo as f64) * u;
                // Guard against rounding up to the exclusive bound.
                if v >= hi as f64 { lo } else { v as $t }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice helpers (`shuffle`, `choose`) over any RNG.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, back to front.
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

/// `rand_core` compatibility: the real `rand` re-exports its core traits.
pub mod rand_core {
    pub use super::{RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = Counter(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<i32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
