//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shim `serde` crate's `to_json`/`from_json` data model, using only the
//! built-in `proc_macro` API (no syn/quote in the offline environment).
//!
//! Supported shapes — exactly what this workspace derives on:
//! - structs with named fields (incl. `#[serde(skip, default = "fn_name")]`)
//! - tuple structs
//! - enums with unit, tuple and struct variants
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed shapes
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    ty: String,
    skip: bool,
    default_fn: Option<String>,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Input {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

/// Serde attributes found on one field.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    default_fn: Option<String>,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Consume leading attributes, returning any `#[serde(...)]` info.
    fn eat_attrs(&mut self) -> SerdeAttrs {
        let mut out = SerdeAttrs::default();
        loop {
            let is_attr = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_attr {
                return out;
            }
            self.pos += 1; // '#'
            let Some(TokenTree::Group(g)) = self.next() else {
                return out;
            };
            let mut inner = Cursor::new(g.stream());
            if let Some(TokenTree::Ident(name)) = inner.peek() {
                if name.to_string() == "serde" {
                    inner.pos += 1;
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        parse_serde_args(args.stream(), &mut out);
                    }
                }
            }
        }
    }

    /// Consume an optional visibility (`pub`, `pub(crate)`, ...).
    fn eat_vis(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Collect tokens of a type until a top-level comma (or end), tracking
    /// angle-bracket depth so `Vec<(A, B)>` stays intact.
    fn eat_type(&mut self) -> String {
        let mut depth = 0i32;
        let mut out = String::new();
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            out.push_str(&t.to_string());
            out.push(' ');
            self.pos += 1;
        }
        out
    }
}

fn parse_serde_args(stream: TokenStream, out: &mut SerdeAttrs) {
    let mut c = Cursor::new(stream);
    while !c.at_end() {
        match c.next() {
            Some(TokenTree::Ident(i)) => match i.to_string().as_str() {
                "skip" => out.skip = true,
                "default" => {
                    if !c.eat_punct('=') {
                        continue;
                    }
                    if let Some(TokenTree::Literal(l)) = c.next() {
                        let s = l.to_string();
                        out.default_fn = Some(s.trim_matches('"').to_string());
                    }
                }
                _ => {}
            },
            Some(TokenTree::Punct(_)) => {}
            _ => break,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.eat_attrs();
        if c.at_end() {
            break;
        }
        c.eat_vis();
        let name = match c.expect_ident() {
            Ok(n) => n,
            Err(_) => break,
        };
        if !c.eat_punct(':') {
            break;
        }
        let ty = c.eat_type();
        c.eat_punct(',');
        fields.push(Field {
            name,
            ty,
            skip: attrs.skip,
            default_fn: attrs.default_fn,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut tys = Vec::new();
    while !c.at_end() {
        let _ = c.eat_attrs();
        if c.at_end() {
            break;
        }
        c.eat_vis();
        let ty = c.eat_type();
        c.eat_punct(',');
        if !ty.trim().is_empty() {
            tys.push(ty);
        }
    }
    tys
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        let _ = c.eat_attrs();
        if c.at_end() {
            break;
        }
        let name = match c.expect_ident() {
            Ok(n) => n,
            Err(_) => break,
        };
        let body = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let tys = parse_tuple_fields(g.stream());
                c.pos += 1;
                VariantBody::Tuple(tys)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantBody::Struct(fields)
            }
            _ => VariantBody::Unit,
        };
        c.eat_punct(',');
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(stream);
    let _ = c.eat_attrs();
    c.eat_vis();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim derive: generics on `{name}` are unsupported"));
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                body: Body::NamedStruct(parse_named_fields(g.stream())),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                body: Body::TupleStruct(parse_tuple_fields(g.stream())),
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                body: Body::Enum(parse_variants(g.stream())),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Json)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.skip {
                    continue;
                }
                s.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), ::serde::Serialize::to_json(&self.{n})));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Json::Obj(__fields)\n");
            s
        }
        Body::TupleStruct(tys) => {
            let elems: Vec<String> = (0..tys.len())
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Json::Arr(vec![{}])\n", elems.join(", "))
        }
        Body::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        s.push_str(&format!(
                            "{name}::{vn} => ::serde::Json::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantBody::Tuple(tys) => {
                        let binds: Vec<String> =
                            (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::Json::Obj(vec![(\"{vn}\".to_string(), ::serde::Json::Arr(vec![{e}]))]),\n",
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let elems: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_json({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => ::serde::Json::Obj(vec![(\"{vn}\".to_string(), ::serde::Json::Obj(vec![{e}]))]),\n",
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_json(&self) -> ::serde::Json {{\n{body}\n}}\n\
         }}\n"
    )
}

fn field_from_json(owner: &str, f: &Field) -> String {
    if f.skip {
        return match &f.default_fn {
            Some(func) => format!("{n}: {func}(),\n", n = f.name),
            None => format!("{n}: ::std::default::Default::default(),\n", n = f.name),
        };
    }
    format!(
        "{n}: <{ty} as ::serde::Deserialize>::from_json(::serde::obj_get(__obj, \"{n}\")\
           .ok_or_else(|| ::serde::DeError::new(\"{owner}.{n}: missing field\"))?)?,\n",
        n = f.name,
        ty = f.ty
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_obj().ok_or_else(|| ::serde::DeError::new(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&field_from_json(name, f));
            }
            s.push_str("})\n");
            s
        }
        Body::TupleStruct(tys) => {
            let mut s = format!(
                "let __arr = __v.as_arr().ok_or_else(|| ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for (i, ty) in tys.iter().enumerate() {
                s.push_str(&format!(
                    "<{ty} as ::serde::Deserialize>::from_json(__arr.get({i})\
                       .ok_or_else(|| ::serde::DeError::new(\"{name}: short array\"))?)?,\n"
                ));
            }
            s.push_str("))\n");
            s
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantBody::Tuple(tys) => {
                        let mut fields = String::new();
                        for (i, ty) in tys.iter().enumerate() {
                            fields.push_str(&format!(
                                "<{ty} as ::serde::Deserialize>::from_json(__arr.get({i})\
                                   .ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: short array\"))?)?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let __arr = _payload.as_arr().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected array\"))?;\n\
                               ::std::result::Result::Ok({name}::{vn}({fields}))\n\
                             }}\n"
                        ));
                    }
                    VariantBody::Struct(fs) => {
                        let mut fields = String::new();
                        for f in fs {
                            fields.push_str(&field_from_json(name, f));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let __obj = _payload.as_obj().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected object\"))?;\n\
                               ::std::result::Result::Ok({name}::{vn} {{ {fields} }})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                   ::serde::Json::Str(_s) => match _s.as_str() {{\n\
                     {unit_arms}\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\"{name}: unknown unit variant\")),\n\
                   }},\n\
                   ::serde::Json::Obj(_o) if _o.len() == 1 => {{\n\
                     let (_tag, _payload) = &_o[0];\n\
                     match _tag.as_str() {{\n\
                       {tagged_arms}\
                       _ => ::std::result::Result::Err(::serde::DeError::new(\"{name}: unknown variant\")),\n\
                     }}\n\
                   }}\n\
                   _ => ::std::result::Result::Err(::serde::DeError::new(\"{name}: expected variant encoding\")),\n\
                 }}\n"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_json(__v: &::serde::Json) -> ::std::result::Result<{name}, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen failed: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
