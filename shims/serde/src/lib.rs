//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serde: a [`Json`] document model, [`Serialize`]/[`Deserialize`]
//! traits over it, impls for the std types the workspace stores, and derive
//! macros (re-exported from the shim `serde_derive`). The `serde_json` shim
//! supplies the string front-end (`to_string_pretty`, `from_str`).

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

mod json;

pub use json::{parse_json, write_json, Json};

/// Deserialization error: a message plus nothing else (no spans offline).
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Json`] document.
pub trait Serialize {
    fn to_json(&self) -> Json;
}

/// Types that can be rebuilt from a [`Json`] document.
pub trait Deserialize: Sized {
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

/// Ordered-object key lookup used by derived code.
pub fn obj_get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<$t, DeError> {
                match v {
                    Json::Num(n) => Ok(*n as $t),
                    _ => Err(DeError::new(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<$t, DeError> {
                match v {
                    Json::Num(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null; restore them as NaN.
                    Json::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::new(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<bool, DeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<String, DeError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Json) -> Result<char, DeError> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, DeError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, DeError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Box<T>, DeError> {
        Ok(Box::new(T::from_json(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json(v: &Json) -> Result<Arc<T>, DeError> {
        Ok(Arc::new(T::from_json(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_json(v: &Json) -> Result<Rc<T>, DeError> {
        Ok(Rc::new(T::from_json(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Maps serialize as objects with string keys, ordered for determinism.
impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> Json {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<HashMap<String, V>, DeError> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::from_json(x)?)))
                .collect(),
            _ => Err(DeError::new("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<BTreeMap<String, V>, DeError> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::from_json(x)?)))
                .collect(),
            _ => Err(DeError::new("expected object")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<($($t,)+), DeError> {
                match v {
                    Json::Arr(items) => Ok(($(
                        $t::from_json(items.get($n).ok_or_else(|| DeError::new("tuple: short array"))?)?,
                    )+)),
                    _ => Err(DeError::new("tuple: expected array")),
                }
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Json, DeError> {
        Ok(v.clone())
    }
}
