//! The JSON document model, writer and parser behind the serde shim.

/// A JSON value. Objects keep insertion order (serialization is stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integers print without a fractional part for round-trip fidelity.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip float form; valid JSON too.
        out.push_str(&format!("{n:?}"));
    }
}

/// Serialize a [`Json`] document. `indent = None` is compact; `Some(width)`
/// pretty-prints with that indent step.
pub fn write_json(v: &Json, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, v, indent, 0);
    out
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(out, *n),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("dangling escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c".into(), Json::Str("x\"y\\z\né".into())),
            ("big".into(), Json::Num(123456789.0)),
        ]);
        for indent in [None, Some(2)] {
            let text = write_json(&doc, indent);
            assert_eq!(parse_json(&text).expect("parses"), doc, "indent={indent:?}");
        }
    }

    #[test]
    fn float_precision_round_trips() {
        let n = 0.123_456_789_012_345_68;
        let text = write_json(&Json::Num(n), None);
        match parse_json(&text).unwrap() {
            Json::Num(back) => assert_eq!(back, n),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("true false").is_err());
    }
}
