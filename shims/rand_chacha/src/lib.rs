//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher used
//! as a deterministic RNG. Output streams differ from the upstream crate's
//! (which is irrelevant here — every consumer only needs a seedable,
//! high-quality, reproducible source), but the cipher core is the real
//! ChaCha construction with 8 rounds.

pub use rand::rand_core;
use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha8-based deterministic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 8 key words, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index into `block`; 16 means "generate a fresh block".
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn uniformish_range_draws() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
