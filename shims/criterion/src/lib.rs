//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion::bench_function` / `Bencher::iter` surface and
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up briefly, then timed over a scaled batch and reported as
//! mean ns/iter on stdout — enough to compare hot paths locally without
//! the statistical machinery of the real crate.

use std::time::{Duration, Instant};

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark runner handle passed to each registered function.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup pass: run until the warmup budget is spent to estimate cost.
        let mut warm = Bencher {
            mode: Mode::Budget(self.warmup),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut warm);
        let per_iter = warm.elapsed.as_nanos().max(1) / warm.iters.max(1) as u128;
        let target = (self.measure.as_nanos() / per_iter.max(1)).clamp(10, 5_000_000) as u64;

        // Measurement pass: fixed iteration count sized to fill the budget.
        let mut meas = Bencher {
            mode: Mode::Fixed(target),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut meas);
        let mean_ns = meas.elapsed.as_nanos() as f64 / meas.iters.max(1) as f64;
        println!("{name:<40} {mean_ns:>12.1} ns/iter ({} iters)", meas.iters);
        self
    }
}

enum Mode {
    Budget(Duration),
    Fixed(u64),
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Budget(budget) => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    black_box(routine());
                    self.iters += 1;
                }
                self.elapsed = start.elapsed();
            }
            Mode::Fixed(n) => {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
                self.iters = n;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
