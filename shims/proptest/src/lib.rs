//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/macro subset this workspace's property tests
//! use: range and string-pattern strategies, tuples, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `proptest::collection::vec`, `any`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Compared to the real crate there is no shrinking and no failure
//! persistence: cases are generated from a per-test deterministic seed, so
//! failures reproduce exactly on re-run.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG & config
// ---------------------------------------------------------------------------

/// Deterministic per-test randomness source.
pub struct TestRng {
    rng: ChaCha8Rng,
}

impl TestRng {
    /// Seeded from the test's name, so every test has its own stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: ChaCha8Rng::seed_from_u64(h),
        }
    }

    pub fn gen_usize(&mut self, range: Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    pub fn gen_f64(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    fn inner(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Type-erase into a cheaply-clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the next layer. `depth` bounds nesting;
    /// the size/branch hints of the real API are accepted and ignored.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A shared, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice among boxed branches (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_usize(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

/// Always-the-same-value strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Range / primitive / string strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// The values `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner().gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_f64() * 2.0 - 1.0
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.gen_f64() * 2.0 - 1.0) as f32
    }
}

/// Strategy of any `Arbitrary` type.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String-pattern strategy: the `"[a-z]{1,6}"` regex subset — literal
/// characters and character classes, each optionally repeated `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (alphabet, next) = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
            (expand_class(&chars[i + 1..close]), close + 1)
        } else {
            (vec![chars[i]], i + 1)
        };
        i = next;
        let (lo, hi, next) = parse_repeat(&chars, i).unwrap_or((1, 1, i));
        i = next;
        let count = if lo == hi { lo } else { rng.gen_usize(lo..hi + 1) };
        for _ in 0..count {
            out.push(alphabet[rng.gen_usize(0..alphabet.len())]);
        }
    }
    out
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            for c in body[i]..=body[i + 2] {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

fn parse_repeat(chars: &[char], at: usize) -> Option<(usize, usize, usize)> {
    if chars.get(at) != Some(&'{') {
        return None;
    }
    let close = chars[at..].iter().position(|&c| c == '}')? + at;
    let body: String = chars[at + 1..close].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((lo, hi, close + 1))
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact count or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of the element strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_usize(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The `proptest!` block: one or more `#[test] fn name(arg in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __cases = __config.cases as usize;
            let mut __executed = 0usize;
            let mut __attempts = 0usize;
            while __executed < __cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cases * 25,
                    "proptest shim: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || -> ::std::result::Result<(), ()> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if __run().is_ok() {
                    __executed += 1;
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert within a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($branch)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::deterministic("string_pattern_shapes");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "bad len: {s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "bad chars: {s:?}");
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let mut rng = TestRng::deterministic("union_hits_every_branch");
        let s = prop_oneof![0..1i64, 10..11i64, 20..21i64];
        let mut seen = [false; 3];
        for _ in 0..100 {
            match crate::Strategy::generate(&s, &mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("impossible draw {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(n) => {
                    assert!((0..5).contains(n), "leaf out of range");
                    1
                }
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0..5i64).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(T::Node)
        });
        let mut rng = TestRng::deterministic("recursive_strategy_terminates");
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&crate::Strategy::generate(&tree, &mut rng)));
        }
        assert!(max_depth > 1, "recursion never taken");
        assert!(max_depth <= 4, "depth bound violated: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_assumes(v in crate::collection::vec(-5i64..5, 1..10), b in any::<bool>()) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|x| (-5..5).contains(x)));
            let flipped = !b;
            prop_assert_ne!(b, flipped);
        }
    }
}
