//! Compare view-selection algorithms on one instance: greedy top-k sweeps,
//! IterView's oscillation, BigSub's freeze, RLView's convergence, and the
//! exact ILP optimum.
//!
//! ```sh
//! cargo run --release --example view_selection
//! ```

use autoview::core::{collect_pair_truth, preprocess_and_measure};
use autoview::engine::Pricing;
use autoview::ilp::MvsInstance;
use autoview::select::{
    greedy_best, BigSub, BigSubConfig, GreedyRank, IterView, IterViewConfig, RlView,
    RlViewConfig,
};
use autoview::workload::cloud::mini;

fn main() {
    // Build a measured MVS instance from a real (mini) workload.
    let workload = mini(21);
    let pricing = Pricing::paper_defaults();
    let mut catalog = workload.catalog.clone();
    let plans = workload.plans();
    let pre = preprocess_and_measure(&mut catalog, &plans, pricing).expect("preprocess");
    let pairs =
        collect_pair_truth(&catalog, &pre, &plans, usize::MAX, 3).expect("pairs");

    let nc = pre.analysis.candidates.len();
    let mut benefits = vec![vec![0.0; nc]; plans.len()];
    for p in &pairs {
        benefits[p.query][p.candidate] = p.actual_benefit;
    }
    let instance = MvsInstance {
        benefits,
        overheads: pre.overheads.clone(),
        overlaps: pre.analysis.overlap_pairs.clone(),
    };
    println!(
        "instance: {} queries × {} candidates, {} overlap pairs\n",
        instance.num_queries(),
        instance.num_candidates(),
        instance.overlaps.len()
    );

    for rank in GreedyRank::ALL {
        let (k, r) = greedy_best(&instance, rank);
        println!("{:<10} best k = {:<3} utility = ${:.4}", rank.name(), k, r.utility);
    }

    let iter = IterView::new(
        &instance,
        IterViewConfig {
            iterations: 60,
            ..IterViewConfig::default()
        },
    )
    .run();
    println!(
        "{:<10} best iter = {:<2} utility = ${:.4} (oscillating trajectory)",
        "IterView", iter.best_iteration, iter.utility
    );

    let big = BigSub::run(
        &instance,
        BigSubConfig {
            iterations: 60,
            ..BigSubConfig::default()
        },
    );
    println!(
        "{:<10} best iter = {:<2} utility = ${:.4} (frozen after 20)",
        "BigSub", big.best_iteration, big.utility
    );

    let rl = RlView::run(
        &instance,
        RlViewConfig {
            n1: 10,
            n2: 25,
            memory_size: 20,
            max_steps_per_epoch: 60,
            ..RlViewConfig::default()
        },
    );
    println!(
        "{:<10} best iter = {:<2} utility = ${:.4} (DQN-stabilized)",
        "RLView", rl.best_iteration, rl.utility
    );

    let (opt, proven) = instance.solve_exact(500_000);
    println!(
        "{:<10} utility = ${:.4}{}",
        "OPT",
        opt.utility,
        if proven { " (proven optimal)" } else { " (budget)" }
    );
}
