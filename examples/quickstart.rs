//! Quickstart: run the whole AutoView pipeline on a miniature workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small multi-project workload, lets the system find shared
//! subqueries, trains the Wide-Deep cost model on measured rewrites, selects
//! views with RLView, deploys them, and prints the end-to-end savings.

use autoview::core::{AutoViewConfig, AutoViewSystem, EstimatorKind, SelectorKind};
use autoview::cost::WideDeepConfig;
use autoview::select::RlViewConfig;
use autoview::workload::cloud::mini;

fn main() {
    let workload = mini(42);
    println!(
        "workload: {} queries over {} tables in {} projects",
        workload.queries.len(),
        workload.catalog.len(),
        workload.num_projects
    );

    let config = AutoViewConfig {
        estimator: EstimatorKind::WideDeep(WideDeepConfig {
            epochs: 10,
            ..WideDeepConfig::default()
        }),
        selector: SelectorKind::RlView(RlViewConfig {
            n1: 8,
            n2: 12,
            memory_size: 16,
            max_steps_per_epoch: 40,
            ..RlViewConfig::default()
        }),
        max_training_pairs: 100,
        ..AutoViewConfig::default()
    };

    let mut system = AutoViewSystem::new(workload.catalog.clone(), workload.plans(), config);
    let report = system.run().expect("pipeline runs");

    println!("\n== AutoView end-to-end report ({}) ==", report.method);
    println!("raw workload cost:      ${:.4}", report.raw_cost);
    println!("raw workload latency:   {:.1}s", report.raw_latency);
    println!("materialized views:     {}", report.num_views);
    println!("view overhead:          ${:.4}", report.view_overhead);
    println!("rewritten queries:      {}", report.num_rewritten);
    println!("measured benefit:       ${:.4}", report.benefit);
    println!("rewritten latency:      {:.1}s", report.rewritten_latency);
    println!("saved-cost ratio r_c:   {:.2}%", report.saved_ratio_percent);
    println!(
        "\ntraining pairs collected into the metadata DB: {}",
        system.metadata.num_pairs()
    );
}
