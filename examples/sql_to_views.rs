//! From SQL text to materialized views: parse queries, detect the shared
//! subquery, materialize it, rewrite, and verify the rewritten queries
//! return identical results at lower cost.
//!
//! ```sh
//! cargo run --release --example sql_to_views
//! ```
//!
//! Uses the paper's running example (Fig. 2): two analytical queries over
//! `user_memo` / `user_action` sharing a filtered join.

use autoview::engine::{Catalog, Column, Executor, Pricing, Table, ViewStore};
use autoview::equiv::analyze_workload;
use autoview::plan::parse_query;

fn main() {
    // ---- schema + data ----------------------------------------------------
    let mut catalog = Catalog::new();
    let n = 2000;
    catalog
        .add_table(
            Table::new(
                "user_memo",
                vec![
                    ("user_id", Column::Int((0..n).map(|i| i % 97).collect())),
                    (
                        "memo_type",
                        Column::str(
                            (0..n)
                                .map(|i| if i % 3 == 0 { "pen" } else { "note" }.to_string())
                                .collect(),
                        ),
                    ),
                    (
                        "dt",
                        Column::str(
                            (0..n)
                                .map(|i| if i % 2 == 0 { "1010" } else { "1009" }.to_string())
                                .collect(),
                        ),
                    ),
                ],
            )
            .expect("rectangular"),
        )
        .expect("fresh");
    catalog
        .add_table(
            Table::new(
                "user_action",
                vec![
                    ("user_id", Column::Int((0..n).map(|i| (i * 7) % 97).collect())),
                    ("type", Column::Int((0..n).map(|i| i % 4).collect())),
                    (
                        "dt",
                        Column::str(
                            (0..n)
                                .map(|i| if i % 2 == 0 { "1010" } else { "1008" }.to_string())
                                .collect(),
                        ),
                    ),
                ],
            )
            .expect("rectangular"),
        )
        .expect("fresh");

    // ---- two queries sharing the filtered join ----------------------------
    let q1 = parse_query(
        "select t1.user_id, count(*) as cnt from ( \
           select t1.user_id from user_memo t1 \
           where t1.dt = '1010' and t1.memo_type = 'pen' ) t1 \
         join ( \
           select t2.user_id from user_action t2 \
           where t2.type = 2 and t2.dt = '1010' ) t2 \
         on t1.user_id = t2.user_id group by t1.user_id",
    )
    .expect("q1 parses");
    let q2 = parse_query(
        "select t1.user_id, max(t2.user_id) as m from ( \
           select t1.user_id from user_memo t1 \
           where t1.dt = '1010' and t1.memo_type = 'pen' ) t1 \
         join ( \
           select t2.user_id from user_action t2 \
           where t2.type = 2 and t2.dt = '1010' ) t2 \
         on t1.user_id = t2.user_id group by t1.user_id",
    )
    .expect("q2 parses");

    println!("q1 plan:\n{}", q1.display_indent());

    // ---- find the shared subquery -----------------------------------------
    let analysis = analyze_workload(&[q1.clone(), q2.clone()]);
    let shared = analysis
        .candidates
        .iter()
        .filter(|c| c.query_frequency == 2)
        .max_by_key(|c| c.plan.node_count())
        .expect("the join is shared");
    println!(
        "shared subquery (used by {} queries):\n{}",
        shared.query_frequency,
        shared.plan.display_indent()
    );

    // ---- materialize + rewrite + verify ------------------------------------
    let pricing = Pricing::paper_defaults();
    let mut views = ViewStore::new();
    let vid = views
        .materialize(&mut catalog, shared.plan.clone(), pricing)
        .expect("materializes");
    let view = views.view(vid).expect("exists");
    println!(
        "materialized {} rows, overhead ${:.6}",
        view.row_count,
        view.total_overhead()
    );

    let exec = Executor::new(&catalog, pricing);
    for (name, q) in [("q1", &q1), ("q2", &q2)] {
        let (rewritten, applied) = autoview::engine::rewrite_with_view(q, view);
        assert_eq!(applied, 1, "{name} must be rewritable");
        let before = exec.run(q).expect("raw runs");
        let after = exec.run(&rewritten).expect("rewritten runs");
        assert_eq!(before.batch, after.batch, "{name} results must match");
        println!(
            "{name}: ${:.6} -> ${:.6}  (benefit ${:.6}, {} rows)",
            before.report.cost_dollars,
            after.report.cost_dollars,
            before.report.cost_dollars - after.report.cost_dollars,
            after.batch.num_rows(),
        );
    }
}
