//! Train and compare cost estimators on measured ground truth.
//!
//! ```sh
//! cargo run --release --example cost_estimation
//! ```
//!
//! Collects (query, view) → A(q|v) ground truth by executing rewritten
//! queries on the engine, trains the Wide-Deep model and the baselines, and
//! prints test-set MAE/MAPE — a miniature of the paper's Table III.

use autoview::core::{collect_pair_truth, preprocess_and_measure};
use autoview::cost::{
    mae, mape, metrics::split_7_1_2, Ablation, CostEstimator, FeatureInput, Gbm, GbmConfig,
    LinearRegression, OptimizerEstimator, WideDeep, WideDeepConfig,
};
use autoview::engine::Pricing;
use autoview::workload::cloud::mini;

fn main() {
    let workload = mini(7);
    let pricing = Pricing::paper_defaults();
    let mut catalog = workload.catalog.clone();
    let plans = workload.plans();

    let pre = preprocess_and_measure(&mut catalog, &plans, pricing).expect("preprocess");
    let pairs =
        collect_pair_truth(&catalog, &pre, &plans, 200, 1).expect("ground truth");
    println!(
        "collected {} labelled (query, view) pairs from {} candidates",
        pairs.len(),
        pre.analysis.candidates.len()
    );

    let samples: Vec<(FeatureInput, f64)> = pairs
        .iter()
        .map(|p| (p.sample.input.clone(), p.sample.cost_qv))
        .collect();
    let (train_idx, _, test_idx) = split_7_1_2(samples.len(), 9);
    let train: Vec<(FeatureInput, f64)> =
        train_idx.iter().map(|&i| samples[i].clone()).collect();
    let test: Vec<&(FeatureInput, f64)> = test_idx.iter().map(|&i| &samples[i]).collect();
    let truth: Vec<f64> = test.iter().map(|(_, y)| *y).collect();

    let wd_cfg = WideDeepConfig {
        epochs: 15,
        ..WideDeepConfig::default()
    };
    let mut ablated = wd_cfg.clone();
    ablated.ablation = Ablation::NExp;

    let models: Vec<Box<dyn CostEstimator>> = vec![
        Box::new(OptimizerEstimator::default()),
        Box::new(LinearRegression::fit(&train)),
        Box::new(Gbm::fit_samples(&train, GbmConfig::default())),
        Box::new(WideDeep::fit(&train, ablated)),
        Box::new(WideDeep::fit(&train, wd_cfg)),
    ];

    println!("\n{:<12} {:>12} {:>10}", "estimator", "MAE ($)", "MAPE (%)");
    for m in &models {
        let preds: Vec<f64> = test.iter().map(|(inp, _)| m.estimate(inp)).collect();
        println!(
            "{:<12} {:>12.6} {:>10.2}",
            m.name(),
            mae(&truth, &preds),
            mape(&truth, &preds)
        );
    }
}
