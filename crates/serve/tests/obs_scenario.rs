//! End-to-end telemetry scenario: a phase-shifted workload whose second
//! phase regresses latency, driven through a deterministic stepping clock.
//!
//! Phase A serves the mini workload with a tiny per-read clock step
//! (healthy, tens of microseconds per request). Phase B replays the same
//! queries with a huge step, so every request's measured latency blows
//! through the SLO threshold. The test asserts the full alerting path:
//! the multi-window burn-rate monitor fires, the anomaly detectors
//! trigger a flight-recorder dump, and the dump contains the offending
//! phase-B records.

use av_cost::OptimizerEstimator;
use av_obs::{Objective, RecordStatus};
use av_online::LifecycleConfig;
use av_plan::Fingerprint;
use av_serve::{ServeConfig, ViewServer};
use av_trace::{Clock, Tracer};
use av_workload::cloud::mini;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A clock that self-advances by a configurable step on every read, so
/// each timed region in the serving path accrues deterministic latency
/// without any sleeping.
#[derive(Clone)]
struct SteppingClock {
    nanos: Arc<AtomicU64>,
    step: Arc<AtomicU64>,
}

impl SteppingClock {
    fn new(step: u64) -> SteppingClock {
        SteppingClock {
            nanos: Arc::new(AtomicU64::new(0)),
            step: Arc::new(AtomicU64::new(step)),
        }
    }

    fn set_step(&self, step: u64) {
        self.step.store(step, Ordering::SeqCst);
    }
}

impl Clock for SteppingClock {
    fn now_nanos(&self) -> u64 {
        let step = self.step.load(Ordering::SeqCst);
        self.nanos.fetch_add(step, Ordering::SeqCst) + step
    }
}

fn server_on(clock: &SteppingClock, w: &av_workload::Workload) -> ViewServer {
    let tracer = Tracer::with_clock(Box::new(clock.clone()));
    ViewServer::with_tracer(
        w.catalog.clone(),
        Box::new(OptimizerEstimator::default()),
        ServeConfig {
            lifecycle: LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            ..ServeConfig::default()
        },
        tracer,
    )
}

#[test]
fn phase_shift_fires_burn_alert_and_dumps_offending_queries() {
    // Phase A: ~2µs per clock read — far under the 10ms SLO threshold.
    let clock = SteppingClock::new(2_000);
    let w = mini(91);
    let plans = w.plans();
    let server = server_on(&clock, &w);

    // Warm up: admit views so routed queries carry frozen cost estimates.
    server.reoptimize(&plans, None).expect("reoptimizes");

    for _ in 0..8 {
        for p in &plans {
            server.execute("acme", p).expect("healthy phase serves");
        }
    }
    assert!(
        server.obs().alerts().is_empty(),
        "healthy phase must not breach the SLO"
    );
    let healthy_dumps = server.obs().dumps().len();

    // Phase B: 5ms per clock read — every request now measures well over
    // the 10ms latency threshold (at least three reads span a request).
    clock.set_step(5_000_000);
    let phase_b_fps: Vec<u64> = plans.iter().map(|p| Fingerprint::of(p).0).collect();
    for _ in 0..12 {
        for p in &plans {
            server.execute("acme", p).expect("slow phase still serves");
        }
    }

    // The burn-rate monitor fired for the latency objective.
    let alerts = server.obs().alerts();
    assert!(
        alerts
            .iter()
            .any(|a| a.tenant == "acme" && a.objective == Objective::LatencyP99),
        "phase shift must fire a latency burn-rate alert, got {alerts:?}"
    );
    let fired = alerts
        .iter()
        .find(|a| a.objective == Objective::LatencyP99)
        .expect("latency alert");
    assert!(fired.fast_burn >= 6.0, "fast window saturates its burn");
    assert!(fired.slow_burn >= 3.0, "slow window saturates its burn");

    // Alerts and anomalies both captured flight dumps.
    let dumps = server.obs().dumps();
    assert!(dumps.len() > healthy_dumps, "breach must store dumps");
    let reasons: Vec<&str> = dumps.iter().map(|d| d.reason.as_str()).collect();
    assert!(
        reasons.contains(&"slo_latency_burn"),
        "burn alert dumps the ring, got {reasons:?}"
    );
    assert!(
        reasons.contains(&"latency_regression"),
        "anomaly detector dumps the ring, got {reasons:?}"
    );

    // The dump holds the offending queries: phase-B fingerprints whose
    // measured latency breached the threshold.
    let dump = dumps
        .iter()
        .find(|d| d.reason == "slo_latency_burn")
        .expect("slo dump");
    let threshold_nanos = 10_000u64 * 1_000;
    let offending = dump
        .records
        .iter()
        .filter(|r| {
            r.tenant == "acme"
                && r.status == RecordStatus::Ok
                && phase_b_fps.contains(&r.plan_fp)
                && r.admit_wait_nanos + r.exec_nanos > threshold_nanos
        })
        .count();
    assert!(
        offending > 0,
        "dump must contain the slow phase-B records themselves"
    );

    // The snapshot agrees with the alert history and serializes.
    let stats = server.stats_snapshot();
    assert!(stats.enabled);
    assert!(!stats.alerts.is_empty());
    assert!(!stats.dumps.is_empty());
    let t = stats
        .slo
        .iter()
        .find(|t| t.tenant == "acme")
        .expect("tenant slo stats");
    assert!(t.alerts_fired > 0);
    assert!(t.p99_us >= 10_000, "p99 reflects the regression");
    let json = serde_json::to_string(&stats).expect("stats serialize");
    assert!(json.contains("slo_latency_burn"));
}

#[test]
fn routed_queries_record_residuals_and_export_exposition() {
    let clock = SteppingClock::new(1_000);
    let w = mini(92);
    let plans = w.plans();
    let server = server_on(&clock, &w);

    // No estimates before the first swap: nothing to compare against.
    server.execute("t0", &plans[0]).expect("serves");
    assert_eq!(server.stats_snapshot().residuals.recorded, 0);

    // After reoptimize the deployment carries frozen per-query estimates;
    // routed repeats feed the residual stream.
    server.reoptimize(&plans, None).expect("reoptimizes");
    assert!(
        server.current().estimate_count() > 0,
        "swap freezes estimates for routed window queries"
    );
    for _ in 0..2 {
        for p in &plans {
            server.execute("t0", p).expect("serves");
        }
    }
    let stats = server.stats_snapshot();
    assert!(
        stats.residuals.recorded > 0,
        "routed repeats must record residuals"
    );
    assert!(!stats.residuals.per_view.is_empty());
    assert!(!stats.residuals.per_op.is_empty());

    // The exposition stitches registry metrics, SLO series and residual
    // aggregates into one scrape body.
    let text = server.prometheus_text();
    assert!(text.contains("serve_latency_us_bucket"));
    assert!(text.contains("le=\"+Inf\""));
    assert!(text.contains("slo_requests_total{tenant=\"t0\"}"));
    assert!(text.contains("residuals_recorded_total"));
    assert!(text.contains("residual_q_error_mean{view="));

    // On-demand dump sees the most recent traffic without storing itself.
    let dump = server.obs().dump_now("on-demand");
    assert!(!dump.records.is_empty());
    assert!(server.obs().dumps().is_empty());
    assert!(dump.records.iter().all(|r| r.status == RecordStatus::Ok));
}
