//! Model checks for the serve layer's two lock-free-for-readers protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p av-serve --test loom_model --release
//! ```
//!
//! Against the workspace's std-backed loom shim this is a stress test
//! (each model body reruns many times with real threads); against the real
//! loom crate the same sources become exhaustive interleaving checks.

#![cfg(loom)]

use av_engine::Catalog;
use av_serve::{AdmissionConfig, AdmissionController, Deployment, DeploymentCell};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

fn empty_deployment(epoch: u64) -> Deployment {
    Deployment::new(epoch, std::sync::Arc::new(Catalog::new()), Vec::new())
}

/// A reader's handle must keep its epoch across a concurrent swap, and the
/// cell must never expose a torn or intermediate state: every load observes
/// exactly one of the published epochs.
#[test]
fn deployment_swap_vs_concurrent_readers() {
    loom::model(|| {
        let cell = Arc::new(DeploymentCell::new(empty_deployment(1)));

        let reader = {
            let cell = cell.clone();
            thread::spawn(move || {
                let before = cell.load();
                let e1 = before.epoch();
                thread::yield_now();
                // The handle is immutable: its epoch cannot move even if
                // the writer swapped underneath us.
                assert_eq!(before.epoch(), e1);
                let after = cell.load();
                assert!(
                    (after.epoch() == 1 || after.epoch() == 2) && after.epoch() >= e1,
                    "load observed epoch {} after seeing {e1}",
                    after.epoch()
                );
            })
        };
        let writer = {
            let cell = cell.clone();
            thread::spawn(move || {
                let old = cell.swap(std::sync::Arc::new(empty_deployment(2)));
                assert_eq!(old.epoch(), 1, "swap must return the displaced snapshot");
            })
        };

        reader.join().expect("reader");
        writer.join().expect("writer");
        assert_eq!(cell.epoch(), 2, "the swap must be visible once quiescent");
    });
}

/// With an inflight cap of 1, a release must wake the queued waiter: both
/// requests eventually run, one at a time, and the counters drain to zero.
#[test]
fn admission_release_wakes_queued_waiter() {
    loom::model(|| {
        let ctl = Arc::new(AdmissionController::new(AdmissionConfig {
            max_inflight_per_tenant: 1,
            max_queued_per_tenant: 4,
        }));
        let ran = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let inflight = Arc::new(AtomicUsize::new(0));

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let ctl = ctl.clone();
                let ran = ran.clone();
                let peak = peak.clone();
                let inflight = inflight.clone();
                thread::spawn(move || {
                    let permit = ctl.acquire("tenant").expect("queue has room");
                    let now = inflight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::yield_now();
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    ran.fetch_add(1, Ordering::SeqCst);
                    drop(permit);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }

        assert_eq!(ran.load(Ordering::SeqCst), 2, "both requests must run");
        assert_eq!(peak.load(Ordering::SeqCst), 1, "cap of 1 must serialize");
        let load = ctl.load_of("tenant");
        assert_eq!((load.inflight, load.queued), (0, 0), "counters must drain");
    });
}
