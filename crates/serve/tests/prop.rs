//! Serving-correctness properties: concurrent sessions over a shared
//! snapshot return byte-identical batches to serial, view-free execution —
//! including while an epoch swap lands mid-load.

use av_cost::OptimizerEstimator;
use av_engine::{Executor, Pricing, RecordBatch};
use av_online::LifecycleConfig;
use av_serve::{ServeConfig, ViewServer};
use av_workload::cloud::mini;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn server_for(w: &av_workload::Workload) -> ViewServer {
    ViewServer::new(
        w.catalog.clone(),
        Box::new(OptimizerEstimator::default()),
        ServeConfig {
            lifecycle: LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            ..ServeConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The golden serving invariant: whatever the interleaving of client
    /// threads and however the deployment epoch advances underneath them,
    /// every response is byte-identical to serial execution of the same
    /// plan against the raw catalog (no views, no cache, no concurrency).
    #[test]
    fn concurrent_sessions_match_serial_across_epoch_swap(
        seed in 0u64..1000,
        clients in 2usize..5,
        rounds in 1usize..3,
    ) {
        let w = mini(seed);
        let plans = w.plans();

        // Serial ground truth on the untouched catalog.
        let exec = Executor::new(&w.catalog, Pricing::paper_defaults());
        let expected: Vec<RecordBatch> = plans
            .iter()
            .map(|p| exec.run(p).expect("serial run").batch)
            .collect();

        let server = server_for(&w);
        let mismatches = AtomicU64::new(0);
        let failures = AtomicU64::new(0);
        let served = AtomicU64::new(0);

        std::thread::scope(|scope| {
            // Client threads hammer the server; each compares every batch
            // against the serial reference.
            for client in 0..clients {
                let server = &server;
                let plans = &plans;
                let expected = &expected;
                let mismatches = &mismatches;
                let failures = &failures;
                let served = &served;
                scope.spawn(move || {
                    let tenant = format!("tenant{}", client % 2);
                    for round in 0..rounds {
                        for k in 0..plans.len() {
                            // Spread clients over the plan list.
                            let i = (k + client + round) % plans.len();
                            match server.execute(&tenant, &plans[i]) {
                                Ok(resp) => {
                                    served.fetch_add(1, Ordering::Relaxed);
                                    if resp.batch != expected[i] {
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(_) => {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                });
            }
            // Re-optimizer swaps the deployment mid-load.
            let server = &server;
            let plans = &plans;
            scope.spawn(move || {
                server.reoptimize(plans, Some("tenant0")).expect("reoptimizes");
            });
        });

        let total = (clients * rounds * plans.len()) as u64;
        prop_assert_eq!(served.load(Ordering::Relaxed), total, "every request served");
        prop_assert_eq!(failures.load(Ordering::Relaxed), 0, "zero failed queries across the swap");
        prop_assert_eq!(mismatches.load(Ordering::Relaxed), 0, "concurrent == serial");
        prop_assert_eq!(server.epoch(), 1, "the swap landed");

        // After the dust settles the new epoch still serves identical rows.
        for (i, p) in plans.iter().enumerate() {
            let resp = server.execute("tenant1", p).expect("post-swap serve");
            prop_assert_eq!(&resp.batch, &expected[i]);
            prop_assert_eq!(resp.epoch, 1);
        }
    }
}
