//! Workload replay against a [`ViewServer`]: closed- and open-loop clients.
//!
//! This module is the one sanctioned wall-clock site in library code (see
//! `av-analyze`'s determinism lint): its entire purpose is measuring real
//! request latency under concurrency, so an injected test clock would
//! measure the mock instead of the system. Latency samples feed
//! `BENCH_serve.json`; nothing here is replayed.
//!
//! - **Closed loop** ([`run_closed_loop`]): each simulated client issues a
//!   request, waits for the response, *thinks* for a fixed interval, and
//!   repeats — the classic interactive-session model. Throughput scales
//!   with client count (think times overlap) until service time saturates
//!   the machine, which is exactly the scaling curve the serve benchmark
//!   reports.
//! - **Open loop** ([`run_open_loop`]): a dispatcher emits arrivals at a
//!   fixed rate into a bounded queue drained by a worker pool. When the
//!   queue is full the dispatcher blocks (backpressure, counted) instead
//!   of buffering unboundedly. Latency is measured from the *scheduled*
//!   arrival, so queue delay — including coordinated omission — is charged
//!   to the report.

use crate::server::{ServeError, ViewServer};
use av_plan::PlanRef;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Closed-loop client settings.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Simulated concurrent clients (one thread each).
    pub clients: usize,
    /// Requests each client issues before exiting.
    pub requests_per_client: usize,
    /// Think time between a response and the client's next request.
    pub think: Duration,
    /// Distinct tenants; client `i` submits as `tenant{i % tenants}`.
    pub tenants: usize,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            clients: 1,
            requests_per_client: 64,
            think: Duration::from_millis(2),
            tenants: 4,
        }
    }
}

/// Open-loop settings.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Worker threads draining the arrival queue.
    pub workers: usize,
    /// Arrival rate (requests per second).
    pub target_qps: f64,
    /// Total arrivals to dispatch.
    pub requests: usize,
    /// Arrival queue bound; a full queue blocks the dispatcher.
    pub queue_depth: usize,
    /// Distinct tenants, assigned round-robin per arrival.
    pub tenants: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            workers: 4,
            target_qps: 500.0,
            requests: 256,
            queue_depth: 64,
            tenants: 4,
        }
    }
}

/// Aggregated result of one load run. Latencies are microseconds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoadReport {
    pub requests: u64,
    /// Engine or deployment errors — must be zero in a healthy run.
    pub failed: u64,
    /// Admission-control rejections (shed load, not failures).
    pub rejected: u64,
    /// Dispatcher blocks on a full queue (open loop only).
    pub backpressure_events: u64,
    pub wall_seconds: f64,
    pub qps: f64,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
    /// Σ view-routing subtree replacements across all requests.
    pub rewrite_hits: u64,
}

/// Exact percentile from raw samples (nearest-rank on the sorted data).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[derive(Default)]
struct ClientTally {
    latencies_us: Vec<f64>,
    failed: u64,
    rejected: u64,
    rewrite_hits: u64,
}

fn merge_report(tallies: Vec<ClientTally>, wall_seconds: f64, backpressure: u64) -> LoadReport {
    let mut all: Vec<f64> = Vec::new();
    let mut failed = 0;
    let mut rejected = 0;
    let mut rewrite_hits = 0;
    for t in tallies {
        all.extend(t.latencies_us);
        failed += t.failed;
        rejected += t.rejected;
        rewrite_hits += t.rewrite_hits;
    }
    all.sort_by(|a, b| a.total_cmp(b));
    let requests = all.len() as u64;
    LoadReport {
        requests,
        failed,
        rejected,
        backpressure_events: backpressure,
        wall_seconds,
        qps: if wall_seconds > 0.0 {
            requests as f64 / wall_seconds
        } else {
            0.0
        },
        mean_us: if requests == 0 {
            0.0
        } else {
            all.iter().sum::<f64>() / requests as f64
        },
        p50_us: percentile(&all, 0.50),
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
        max_us: all.last().copied().unwrap_or(0.0),
        rewrite_hits,
    }
}

/// Replay `plans` from `cfg.clients` simulated sessions, each cycling
/// request → think → request. Client `i` starts at plan offset `i` so
/// concurrent clients spread over the workload instead of convoying.
pub fn run_closed_loop(
    server: &ViewServer,
    plans: &[PlanRef],
    cfg: &ClosedLoopConfig,
) -> LoadReport {
    if plans.is_empty() || cfg.clients == 0 {
        return LoadReport::default();
    }
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                scope.spawn(move || {
                    let tenant = format!("tenant{}", client % cfg.tenants.max(1));
                    let mut tally = ClientTally::default();
                    for r in 0..cfg.requests_per_client {
                        let plan = &plans[(client + r) % plans.len()];
                        let t0 = Instant::now();
                        match server.execute(&tenant, plan) {
                            Ok(resp) => {
                                tally
                                    .latencies_us
                                    .push(t0.elapsed().as_secs_f64() * 1e6);
                                tally.rewrite_hits += resp.rewrite_hits as u64;
                            }
                            Err(ServeError::Rejected(_)) => tally.rejected += 1,
                            Err(_) => tally.failed += 1,
                        }
                        if !cfg.think.is_zero() {
                            std::thread::sleep(cfg.think);
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    merge_report(tallies, started.elapsed().as_secs_f64(), 0)
}

/// One scheduled arrival: `(plan index, tenant index, scheduled instant)`.
type Arrival = (usize, usize, Instant);

/// A bounded MPMC queue of scheduled arrivals; the `bool` is the closed
/// flag.
struct ArrivalQueue {
    state: Mutex<(VecDeque<Arrival>, bool)>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
}

impl ArrivalQueue {
    fn new(depth: usize) -> ArrivalQueue {
        ArrivalQueue {
            state: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Blocking push; returns `true` if the dispatcher had to wait
    /// (backpressure).
    fn push(&self, item: Arrival) -> bool {
        let mut state = self.state.lock().expect("arrival queue poisoned");
        let mut waited = false;
        while state.0.len() >= self.depth {
            waited = true;
            state = self.not_full.wait(state).expect("arrival queue poisoned");
        }
        state.0.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        waited
    }

    /// Blocking pop; `None` once closed and drained.
    fn pop(&self) -> Option<Arrival> {
        let mut state = self.state.lock().expect("arrival queue poisoned");
        loop {
            if let Some(item) = state.0.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.1 {
                return None;
            }
            state = self.not_empty.wait(state).expect("arrival queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("arrival queue poisoned").1 = true;
        self.not_empty.notify_all();
    }
}

/// Dispatch `cfg.requests` arrivals at `cfg.target_qps` into a bounded
/// queue drained by `cfg.workers` threads. Latency is measured from each
/// arrival's *scheduled* instant, so time spent queued (or stalled behind
/// a full queue) counts against the service, not the client.
pub fn run_open_loop(server: &ViewServer, plans: &[PlanRef], cfg: &OpenLoopConfig) -> LoadReport {
    if plans.is_empty() || cfg.workers == 0 || cfg.requests == 0 || cfg.target_qps <= 0.0 {
        return LoadReport::default();
    }
    let queue = ArrivalQueue::new(cfg.queue_depth);
    let interval = Duration::from_secs_f64(1.0 / cfg.target_qps);
    let started = Instant::now();

    let (tallies, backpressure) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.workers)
            .map(|_| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    while let Some((plan_idx, tenant_idx, scheduled)) = queue.pop() {
                        let tenant = format!("tenant{tenant_idx}");
                        match server.execute(&tenant, &plans[plan_idx]) {
                            Ok(resp) => {
                                tally
                                    .latencies_us
                                    .push(scheduled.elapsed().as_secs_f64() * 1e6);
                                tally.rewrite_hits += resp.rewrite_hits as u64;
                            }
                            Err(ServeError::Rejected(_)) => tally.rejected += 1,
                            Err(_) => tally.failed += 1,
                        }
                    }
                    tally
                })
            })
            .collect();

        // Dispatcher runs on this thread: pace arrivals, then close.
        let mut backpressure = 0u64;
        let tenants = cfg.tenants.max(1);
        for i in 0..cfg.requests {
            let scheduled = started + interval.mul_f64(i as f64);
            let now = Instant::now();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            if queue.push((i % plans.len(), i % tenants, scheduled)) {
                backpressure += 1;
            }
        }
        queue.close();
        let tallies: Vec<ClientTally> = workers
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        (tallies, backpressure)
    });
    merge_report(tallies, started.elapsed().as_secs_f64(), backpressure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use av_cost::OptimizerEstimator;
    use av_online::LifecycleConfig;
    use av_workload::cloud::mini;

    fn server_for(w: &av_workload::Workload) -> ViewServer {
        ViewServer::new(
            w.catalog.clone(),
            Box::new(OptimizerEstimator::default()),
            ServeConfig {
                lifecycle: LifecycleConfig {
                    byte_budget: usize::MAX,
                    min_benefit_per_byte: 0.0,
                    tenant_byte_budget: usize::MAX,
                },
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 0.5), 5.0);
        assert_eq!(percentile(&s, 0.95), 10.0);
        assert_eq!(percentile(&s, 1.0), 10.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let w = mini(81);
        let plans = w.plans();
        let server = server_for(&w);
        let report = run_closed_loop(
            &server,
            &plans,
            &ClosedLoopConfig {
                clients: 4,
                requests_per_client: 8,
                think: Duration::from_micros(100),
                tenants: 2,
            },
        );
        assert_eq!(report.requests, 32);
        assert_eq!(report.failed, 0);
        assert_eq!(report.rejected, 0);
        assert!(report.qps > 0.0);
        assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
    }

    #[test]
    fn open_loop_drains_all_arrivals() {
        let w = mini(82);
        let plans = w.plans();
        let server = server_for(&w);
        let report = run_open_loop(
            &server,
            &plans,
            &OpenLoopConfig {
                workers: 2,
                target_qps: 2000.0,
                requests: 64,
                queue_depth: 8,
                tenants: 2,
            },
        );
        assert_eq!(report.requests + report.rejected, 64);
        assert_eq!(report.failed, 0);
        assert!(report.wall_seconds > 0.0);
    }
}
