//! Per-tenant admission control: inflight caps with a bounded wait queue.
//!
//! Serving "millions of users" from one shared snapshot means one hot
//! tenant must not monopolize the worker pool. Each tenant gets a cap on
//! concurrently executing requests; excess arrivals wait in a bounded
//! per-tenant queue (blocking the submitting session — backpressure), and
//! once the queue is full too, further arrivals are rejected outright so
//! the server sheds load instead of accumulating unbounded latency.
//!
//! [`AdmissionController::acquire`] returns an RAII [`Permit`]; dropping it
//! releases the slot and wakes one queued waiter.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Per-tenant concurrency policy.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Requests a tenant may have executing at once.
    pub max_inflight_per_tenant: usize,
    /// Requests a tenant may have *waiting* for a slot; arrivals beyond
    /// this are rejected with [`Rejection::QueueFull`].
    pub max_queued_per_tenant: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight_per_tenant: 8,
            max_queued_per_tenant: 64,
        }
    }
}

/// Why an arrival was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// Inflight cap reached and the wait queue is full.
    QueueFull { tenant: String },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull { tenant } => {
                write!(f, "tenant `{tenant}`: admission queue full")
            }
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct TenantState {
    inflight: usize,
    queued: usize,
}

/// Snapshot of one tenant's admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLoad {
    pub inflight: usize,
    pub queued: usize,
}

/// The controller. Thread-safe; share by reference.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<BTreeMap<String, TenantState>>,
    freed: Condvar,
    /// Permits currently held across *all* tenants. Kept in an atomic
    /// (redundant with summing the map) so the elastic-DOP policy can read
    /// it on every request without taking the admission lock.
    total_inflight: AtomicUsize,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            config,
            state: Mutex::new(BTreeMap::new()),
            freed: Condvar::new(),
            total_inflight: AtomicUsize::new(0),
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Permits currently held across all tenants — the server's instantaneous
    /// query concurrency. Lock-free; feeds the elastic degree-of-parallelism
    /// policy (`ViewServer::execute`).
    pub fn total_inflight(&self) -> usize {
        self.total_inflight.load(Ordering::SeqCst)
    }

    /// Admit one request for `tenant`, blocking while the tenant is at its
    /// inflight cap but has queue room. Returns an RAII permit, or
    /// [`Rejection::QueueFull`] when both the cap and the queue are
    /// exhausted.
    pub fn acquire(&self, tenant: &str) -> Result<Permit<'_>, Rejection> {
        let mut state = self.state.lock().expect("admission state poisoned");
        let entry = state.entry(tenant.to_string()).or_default();
        if entry.inflight < self.config.max_inflight_per_tenant {
            entry.inflight += 1;
            return Ok(self.permit(tenant));
        }
        if entry.queued >= self.config.max_queued_per_tenant {
            return Err(Rejection::QueueFull {
                tenant: tenant.to_string(),
            });
        }
        entry.queued += 1;
        loop {
            state = self.freed.wait(state).expect("admission state poisoned");
            let entry = state.entry(tenant.to_string()).or_default();
            if entry.inflight < self.config.max_inflight_per_tenant {
                entry.queued -= 1;
                entry.inflight += 1;
                return Ok(self.permit(tenant));
            }
        }
    }

    /// Admit without blocking: `None` when the tenant is at its cap (the
    /// caller decides whether to queue elsewhere or shed).
    pub fn try_acquire(&self, tenant: &str) -> Option<Permit<'_>> {
        let mut state = self.state.lock().expect("admission state poisoned");
        let entry = state.entry(tenant.to_string()).or_default();
        if entry.inflight < self.config.max_inflight_per_tenant {
            entry.inflight += 1;
            Some(self.permit(tenant))
        } else {
            None
        }
    }

    /// Current counters for a tenant.
    pub fn load_of(&self, tenant: &str) -> TenantLoad {
        let state = self.state.lock().expect("admission state poisoned");
        let s = state.get(tenant).copied().unwrap_or_default();
        TenantLoad {
            inflight: s.inflight,
            queued: s.queued,
        }
    }

    /// Called at every grant site (fast path, wait loop, try_acquire), so
    /// the global counter moves in lockstep with per-tenant `inflight`.
    fn permit(&self, tenant: &str) -> Permit<'_> {
        self.total_inflight.fetch_add(1, Ordering::SeqCst);
        Permit {
            controller: self,
            tenant: tenant.to_string(),
        }
    }

    fn release(&self, tenant: &str) {
        self.total_inflight.fetch_sub(1, Ordering::SeqCst);
        let mut state = self.state.lock().expect("admission state poisoned");
        if let Some(entry) = state.get_mut(tenant) {
            entry.inflight = entry.inflight.saturating_sub(1);
            if entry.inflight == 0 && entry.queued == 0 {
                state.remove(tenant);
            }
        }
        drop(state);
        self.freed.notify_all();
    }
}

/// An admitted request's slot; releases on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    controller: &'a AdmissionController,
    tenant: String,
}

impl Permit<'_> {
    pub fn tenant(&self) -> &str {
        &self.tenant
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.controller.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_enforce_inflight_cap() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight_per_tenant: 2,
            max_queued_per_tenant: 0,
        });
        let a = ctl.acquire("t").expect("first");
        let _b = ctl.acquire("t").expect("second");
        assert_eq!(ctl.load_of("t").inflight, 2);
        // Cap reached, zero queue: reject.
        assert_eq!(
            ctl.acquire("t").expect_err("third"),
            Rejection::QueueFull {
                tenant: "t".into()
            }
        );
        assert!(ctl.try_acquire("t").is_none());
        drop(a);
        assert_eq!(ctl.load_of("t").inflight, 1);
        let _c = ctl.acquire("t").expect("slot freed");
    }

    #[test]
    fn total_inflight_tracks_grants_across_tenants() {
        let ctl = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(ctl.total_inflight(), 0);
        let a = ctl.acquire("a").expect("a admitted");
        let b = ctl.try_acquire("b").expect("b admitted");
        assert_eq!(ctl.total_inflight(), 2);
        drop(a);
        assert_eq!(ctl.total_inflight(), 1);
        drop(b);
        assert_eq!(ctl.total_inflight(), 0);
    }

    #[test]
    fn tenants_are_isolated() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight_per_tenant: 1,
            max_queued_per_tenant: 0,
        });
        let _a = ctl.acquire("a").expect("a admitted");
        // `a` being saturated does not affect `b`.
        let _b = ctl.acquire("b").expect("b admitted");
        assert!(ctl.acquire("a").is_err());
        assert_eq!(ctl.load_of("b").inflight, 1);
    }

    /// Hammer the condvar path: many threads, several acquisitions each,
    /// against tight caps. Tracks the high-water mark of concurrently held
    /// permits with a CAS loop; if the wait loop ever admitted past the cap
    /// (e.g. a woken waiter skipping the re-check), the mark would exceed
    /// it. Run for both cap 1 (mutual exclusion) and cap 2 (the smallest
    /// cap where two waiters can race for the same freed slot).
    #[test]
    fn hammer_never_exceeds_inflight_cap() {
        for cap in [1usize, 2] {
            let ctl = AdmissionController::new(AdmissionConfig {
                max_inflight_per_tenant: cap,
                max_queued_per_tenant: 64,
            });
            let current = AtomicUsize::new(0);
            let high_water = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..12 {
                    s.spawn(|| {
                        for _ in 0..25 {
                            let _p = ctl.acquire("t").expect("queue has room");
                            let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                            high_water.fetch_max(now, Ordering::SeqCst);
                            std::hint::black_box(now);
                            current.fetch_sub(1, Ordering::SeqCst);
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert_eq!(done.load(Ordering::SeqCst), 12 * 25, "cap {cap}");
            let peak = high_water.load(Ordering::SeqCst);
            assert!(peak <= cap, "cap {cap} exceeded: saw {peak} concurrent permits");
            assert!(peak >= 1, "hammer never ran");
            assert_eq!(ctl.load_of("t").inflight, 0, "all permits released");
            assert_eq!(ctl.load_of("t").queued, 0, "no waiter stranded");
        }
    }

    #[test]
    fn queued_waiters_run_eventually() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_inflight_per_tenant: 1,
            max_queued_per_tenant: 16,
        });
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _p = ctl.acquire("t").expect("queue has room");
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(ctl.load_of("t").inflight, 0, "all permits released");
        assert_eq!(ctl.load_of("t").queued, 0);
    }
}
