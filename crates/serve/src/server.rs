//! The serving façade: concurrent sessions over one published snapshot.
//!
//! [`ViewServer`] separates the *read path* from the *reopt path*:
//!
//! - **Read path** ([`ViewServer::execute`]): admission → load the current
//!   [`Deployment`] `Arc` → route through its frozen views → execute via
//!   the sharded result cache. No lock is held across execution that the
//!   re-optimizer contends on; many sessions proceed in parallel.
//! - **Reopt path** ([`ViewServer::reoptimize`]): serialized behind a
//!   planner mutex. Selection re-runs on a workload window, the live view
//!   set is patched (with per-tenant byte accounting), a *candidate*
//!   deployment is built copy-on-write, preflighted through the
//!   `av-analyze` verifier, and only then atomically swapped in. A failed
//!   preflight leaves the published snapshot untouched — in-flight and
//!   future queries keep executing against the last good epoch.

use crate::admission::{AdmissionConfig, AdmissionController, Rejection};
use crate::deployment::{Deployment, DeploymentCell};
use av_cost::{tables_meta, CostEstimator, FeatureInput};
use av_engine::{
    Catalog, EngineError, ExecCache, MaterializedView, Pricing, RecordBatch, ShardedExecCache,
};
use av_obs::{Obs, ObsConfig, ObsOutcome, QueryRecord, RecordStatus, TenantTag};
use av_online::{
    reoptimize, AdmitOutcome, CandidateView, LifecycleConfig, OnlineSelector,
    ViewLifecycleManager, WindowSnapshot,
};
use av_plan::{Fingerprint, PlanRef};
use av_trace::Tracer;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub pricing: Pricing,
    /// Shards of the execution-result cache (locks that can be held
    /// concurrently). 0 means [`ShardedExecCache`]'s default.
    pub cache_shards: usize,
    /// Total cached results across all shards (split evenly).
    pub cache_capacity: usize,
    /// Executor thread count for cache misses (None = engine default).
    pub exec_threads: Option<usize>,
    /// Parallel-cutover row floor override (None = engine default).
    pub par_min_rows: Option<usize>,
    /// Derive each query's degree of parallelism from the admission
    /// controller's global inflight count: a lone query fans out across
    /// the shared pool, 64 concurrent clients each run near-serial instead
    /// of oversubscribing every core 64×. Results are identical either
    /// way; only scheduling changes.
    pub elastic_dop: bool,
    /// Thread source for parallel execution on cache misses: the shared
    /// morsel pool (default) or legacy per-query scoped spawning, kept so
    /// `serve_bench` can run paired pool-vs-scoped comparisons.
    pub exec_backend: av_engine::par::ParBackend,
    pub admission: AdmissionConfig,
    pub lifecycle: LifecycleConfig,
    pub selector: OnlineSelector,
    /// Minimum times a subquery must repeat in the reopt window before it
    /// becomes a view candidate.
    pub min_query_frequency: usize,
    /// Telemetry layer configuration (flight recorder, SLO monitoring,
    /// estimator residuals). `ObsConfig::disabled()` is the zero-overhead
    /// baseline `serve_bench` compares against.
    pub obs: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pricing: Pricing::paper_defaults(),
            cache_shards: 0,
            cache_capacity: 4096,
            exec_threads: None,
            par_min_rows: None,
            elastic_dop: true,
            exec_backend: av_engine::par::ParBackend::Pool,
            admission: AdmissionConfig::default(),
            lifecycle: LifecycleConfig::default(),
            selector: OnlineSelector::default(),
            min_query_frequency: 2,
            obs: ObsConfig::default(),
        }
    }
}

/// The elastic degree-of-parallelism policy: split `cores` workers evenly
/// across `inflight` concurrent queries, never below 1. One inflight query
/// gets the whole pool; at or past `cores` concurrent queries everyone runs
/// serial — inter-query parallelism replaces intra-query parallelism, so
/// the machine is never oversubscribed `inflight ×` like per-query scoped
/// spawning was.
pub fn elastic_dop(cores: usize, inflight: usize) -> usize {
    (cores.max(1) / inflight.max(1)).max(1)
}

/// Everything that can go wrong serving one request.
#[derive(Debug)]
pub enum ServeError {
    /// Turned away by admission control.
    Rejected(Rejection),
    /// Execution failed.
    Engine(EngineError),
    /// A candidate deployment failed its preflight; the previous epoch is
    /// still published.
    InvalidDeployment(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::InvalidDeployment(msg) => {
                write!(f, "candidate deployment rejected: {msg}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

/// One served query's result.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    pub batch: RecordBatch,
    /// `A_{β,γ}` actually paid (0-cost on a cache hit is still reported as
    /// the original execution's cost — the cached result's price).
    pub cost_dollars: f64,
    /// Subtree replacements made by view routing.
    pub rewrite_hits: usize,
    /// Deployment epoch this request executed against.
    pub epoch: u64,
}

/// What one re-optimization did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReoptSummary {
    /// Epoch of the newly published deployment.
    pub epoch: u64,
    pub admitted: usize,
    pub dropped: usize,
    pub rejected: usize,
    /// Live views in the published snapshot.
    pub live_views: usize,
    /// Selection utility on the window instance.
    pub estimated_utility: f64,
}

/// Mutable planning state, serialized behind one mutex: the authoritative
/// catalog (views materialize into it), the lifecycle manager, the cost
/// model, and a dry-run cache for candidate pricing.
struct Planner {
    catalog: Catalog,
    lifecycle: ViewLifecycleManager,
    estimator: Box<dyn CostEstimator + Send>,
    dryrun: ExecCache,
}

/// A concurrent, multi-tenant query server over epoch-swapped deployments.
pub struct ViewServer {
    config: ServeConfig,
    cell: DeploymentCell,
    cache: ShardedExecCache,
    admission: AdmissionController,
    tracer: Tracer,
    obs: Obs,
    planner: Mutex<Planner>,
}

impl ViewServer {
    /// Publish epoch 0: the given catalog with no views.
    pub fn new(
        catalog: Catalog,
        estimator: Box<dyn CostEstimator + Send>,
        config: ServeConfig,
    ) -> ViewServer {
        let tracer = Tracer::new();
        ViewServer::with_tracer(catalog, estimator, config, tracer)
    }

    /// [`ViewServer::new`] recording into a caller-supplied tracer.
    pub fn with_tracer(
        catalog: Catalog,
        estimator: Box<dyn CostEstimator + Send>,
        config: ServeConfig,
        tracer: Tracer,
    ) -> ViewServer {
        let shards = if config.cache_shards > 0 {
            config.cache_shards
        } else {
            ShardedExecCache::DEFAULT_SHARDS
        };
        let mut cache = ShardedExecCache::new(config.pricing, shards)
            .with_tracer(tracer.clone())
            .with_capacity(config.cache_capacity);
        if let Some(t) = config.exec_threads {
            cache = cache.with_threads(t);
        }
        if let Some(m) = config.par_min_rows {
            cache = cache.with_par_min_rows(m);
        }
        cache = cache.with_par_backend(config.exec_backend);
        // Request latencies are microseconds; the default 2^-20..2^30 bounds
        // waste half their buckets below 1, so pin a µs-suited log2 range
        // (1µs .. ~67s) for the serving latency series.
        tracer.metrics().register_histogram(
            "serve.latency_us",
            av_trace::Histogram::with_bounds(av_trace::log2_bounds(0, 26)),
        );
        let initial = Deployment::new(0, Arc::new(catalog.clone()), Vec::new());
        ViewServer {
            cell: DeploymentCell::new(initial),
            cache,
            admission: AdmissionController::new(config.admission),
            planner: Mutex::new(Planner {
                catalog,
                lifecycle: ViewLifecycleManager::new(config.lifecycle),
                estimator,
                dryrun: ExecCache::new(config.pricing).with_metric_prefix("serve.dryrun"),
            }),
            obs: Obs::new(config.obs.clone()),
            tracer,
            config,
        }
    }

    /// Execute one query for `tenant`: admission → snapshot load → view
    /// routing → (cached) execution. Never blocks on the re-optimizer.
    /// Every outcome — served, shed, failed — flows through the telemetry
    /// layer ([`Obs::observe_query`]): flight recorder, per-tenant SLO
    /// windows, estimator residuals and anomaly detectors.
    pub fn execute(&self, tenant: &str, plan: &PlanRef) -> Result<ServeResponse, ServeError> {
        let metrics = self.tracer.metrics();
        let t0 = self.tracer.now_nanos();
        let plan_fp = Fingerprint::of(plan);
        let _permit = match self.admission.acquire(tenant) {
            Ok(p) => p,
            Err(r) => {
                metrics.inc("serve.rejected");
                let now = self.tracer.now_nanos();
                self.observe(
                    now,
                    plan,
                    QueryRecord {
                        tenant: TenantTag::new(tenant),
                        plan_fp: plan_fp.0,
                        view_fp: 0,
                        epoch: self.cell.epoch(),
                        status: RecordStatus::Shed,
                        route_hits: 0,
                        cache_shard: 0,
                        cache_hit: false,
                        admit_wait_nanos: now.saturating_sub(t0),
                        exec_nanos: 0,
                        rows: 0,
                        bytes: 0,
                        est_cost: f64::NAN,
                        meas_cost: 0.0,
                    },
                );
                return Err(ServeError::Rejected(r));
            }
        };
        let t_adm = self.tracer.now_nanos();
        let deployment = self.cell.load();
        // Elastic degree of parallelism: split the pool's workers across
        // the queries currently inflight. Read *after* admission so this
        // request counts itself (the hint is always >= 1).
        let dop = if self.config.elastic_dop {
            let cores = self
                .config
                .exec_threads
                .unwrap_or_else(av_engine::par::default_threads);
            let hint = elastic_dop(cores, self.admission.total_inflight());
            metrics.observe("serve.dop", hint as f64);
            Some(hint)
        } else {
            None
        };
        let tracer = self.tracer.clone();
        let outcome = tracer.time("serve.request", || {
            let (routed, hits, routed_fp) = deployment.route_memo(plan_fp, plan);
            self.cache
                .run_keyed_hit_dop(routed_fp, deployment.catalog(), &routed, dop)
                .map(|(result, cache_hit)| (result, cache_hit, hits, routed_fp))
        });
        let t1 = self.tracer.now_nanos();
        let admit_wait_nanos = t_adm.saturating_sub(t0);
        let exec_nanos = t1.saturating_sub(t_adm);

        let mut record = QueryRecord {
            tenant: TenantTag::new(tenant),
            plan_fp: plan_fp.0,
            view_fp: 0,
            epoch: deployment.epoch(),
            status: RecordStatus::Error,
            route_hits: 0,
            cache_shard: 0,
            cache_hit: false,
            admit_wait_nanos,
            exec_nanos,
            rows: 0,
            bytes: 0,
            est_cost: f64::NAN,
            meas_cost: 0.0,
        };
        let (result, cache_hit, hits, routed_fp) = match outcome {
            Ok(parts) => parts,
            Err(e) => {
                metrics.inc("serve.errors");
                self.observe(t1, plan, record);
                return Err(ServeError::Engine(e));
            }
        };
        record.status = RecordStatus::Ok;
        record.route_hits = hits as u32;
        record.cache_shard = self.cache.shard_of(routed_fp) as u32;
        record.cache_hit = cache_hit;
        record.rows = result.report.output_rows as u64;
        record.bytes = result.report.output_bytes as u64;
        record.meas_cost = result.report.cost_dollars;
        if hits > 0 {
            if let Some((est, view_fp)) = deployment.estimate_of(plan_fp) {
                record.est_cost = est;
                record.view_fp = view_fp.0;
            }
        }
        self.observe(t1, plan, record);

        let response = ServeResponse {
            batch: result.batch,
            cost_dollars: result.report.cost_dollars,
            rewrite_hits: hits,
            epoch: deployment.epoch(),
        };
        metrics.inc("serve.requests");
        if response.rewrite_hits > 0 {
            metrics.inc("serve.requests_rewritten");
            metrics.add("serve.rewrite_hits", response.rewrite_hits as u64);
        }
        metrics.observe("serve.query_cost", response.cost_dollars);
        metrics.observe(
            "serve.latency_us",
            ((admit_wait_nanos + exec_nanos) / 1_000) as f64,
        );
        Ok(response)
    }

    /// Route one finished request through the telemetry layer and bump the
    /// trigger counters for anything it fired.
    fn observe(&self, now_nanos: u64, plan: &PlanRef, record: QueryRecord) {
        let ObsOutcome {
            alerts, anomalies, ..
        } = self.obs.observe_query(now_nanos, &record, plan.op_keyword());
        if !alerts.is_empty() {
            self.tracer
                .metrics()
                .add("serve.slo_alerts", alerts.len() as u64);
        }
        if !anomalies.is_empty() {
            self.tracer
                .metrics()
                .add("serve.anomaly_dumps", anomalies.len() as u64);
        }
    }

    /// Re-optimize against a workload window and publish the next epoch.
    ///
    /// Selection and view materialization run entirely on the planner side
    /// — concurrent [`ViewServer::execute`] calls keep reading the old
    /// snapshot. Views admitted here are charged to `owner`'s byte share
    /// (see [`LifecycleConfig::tenant_byte_budget`]). The candidate
    /// deployment must pass the `av-analyze` preflight (every view's
    /// defining plan verifies, every routed window query's rewrite
    /// preserves its schema) before the swap; on failure the old epoch
    /// stays published and an [`ServeError::InvalidDeployment`] is
    /// returned.
    pub fn reoptimize(
        &self,
        window: &[PlanRef],
        owner: Option<&str>,
    ) -> Result<ReoptSummary, ServeError> {
        let tracer = self.tracer.clone();
        let metrics = tracer.metrics();
        let mut guard = self.planner.lock().expect("planner poisoned");
        let planner = &mut *guard;
        tracer.time("serve.reopt", || -> Result<ReoptSummary, ServeError> {
            let mut analyzer = av_equiv::Analyzer::new();
            analyzer.min_query_frequency = self.config.min_query_frequency;
            let analysis = analyzer.analyze(window);

            let mut costs = Vec::with_capacity(window.len());
            for p in window {
                costs.push(planner.dryrun.cost(&planner.catalog, p)?);
            }
            let plan = reoptimize(
                &planner.catalog,
                &analysis,
                WindowSnapshot::new(window, &costs),
                planner.estimator.as_ref(),
                &self.config.selector,
                &planner.lifecycle.live_fingerprints(),
                &planner.dryrun,
            )?;
            metrics.inc("serve.reopt_runs");

            let mut summary = ReoptSummary {
                estimated_utility: plan.estimated_utility,
                ..ReoptSummary::default()
            };
            for fp in &plan.drop {
                if planner.lifecycle.evict(&mut planner.catalog, *fp).is_some() {
                    summary.dropped += 1;
                }
            }
            self.admit_all(planner, &plan.create, owner, &mut summary)?;
            self.swap_in_current(planner, window, &mut summary)?;
            Ok(summary)
        })
    }

    /// Publish an externally selected view set (e.g. the batch pipeline's
    /// final selection from `av-core`): admit each candidate into the
    /// lifecycle, charge it to `owner`, preflight the resulting snapshot
    /// against `sample`, and swap it in. Same gate, same swap semantics as
    /// [`ViewServer::reoptimize`] — only the selection step is skipped.
    pub fn publish(
        &self,
        candidates: &[CandidateView],
        owner: Option<&str>,
        sample: &[PlanRef],
    ) -> Result<ReoptSummary, ServeError> {
        let mut guard = self.planner.lock().expect("planner poisoned");
        let planner = &mut *guard;
        let mut summary = ReoptSummary::default();
        self.admit_all(planner, candidates, owner, &mut summary)?;
        self.swap_in_current(planner, sample, &mut summary)?;
        Ok(summary)
    }

    /// Admit a batch of candidates through the tenant-aware lifecycle.
    fn admit_all(
        &self,
        planner: &mut Planner,
        candidates: &[CandidateView],
        owner: Option<&str>,
        summary: &mut ReoptSummary,
    ) -> Result<(), ServeError> {
        for cand in candidates {
            let outcome = planner.lifecycle.admit_owned(
                &mut planner.catalog,
                cand.plan.clone(),
                cand.canonical_fp,
                cand.expected_benefit,
                self.config.pricing,
                owner,
            )?;
            match outcome {
                AdmitOutcome::Admitted { evicted, .. } => {
                    summary.admitted += 1;
                    summary.dropped += evicted.len();
                }
                AdmitOutcome::RejectedScore { .. }
                | AdmitOutcome::RejectedBudget { .. }
                | AdmitOutcome::RejectedTenantBudget { .. } => summary.rejected += 1,
            }
        }
        Ok(())
    }

    /// Freeze the planner's current state into a candidate deployment,
    /// preflight it, and publish it as the next epoch. The catalog clone is
    /// copy-on-write (table data is shared behind `Arc`); a preflight
    /// failure leaves the previous epoch published.
    fn swap_in_current(
        &self,
        planner: &mut Planner,
        sample: &[PlanRef],
        summary: &mut ReoptSummary,
    ) -> Result<(), ServeError> {
        let metrics = self.tracer.metrics();
        let views: Vec<(Fingerprint, MaterializedView)> = planner
            .lifecycle
            .live()
            .iter()
            .filter_map(|l| {
                planner
                    .lifecycle
                    .view(l.id)
                    .map(|v| (l.canonical_fp, v.clone()))
            })
            .collect();
        let next = Deployment::new(
            self.cell.epoch() + 1,
            Arc::new(planner.catalog.clone()),
            views,
        );

        // Freeze per-query cost estimates for the residual-telemetry
        // stream: route each window query through the candidate snapshot
        // and, where a view fires, price the pair with the planner's cost
        // model. The table is immutable once published, so the read path
        // looks estimates up without touching the estimator (which lives
        // behind this planner lock).
        let mut estimates: Vec<(Fingerprint, f64, Fingerprint)> = Vec::new();
        for plan in sample {
            let (routed, hits) = next.route(plan);
            if hits == 0 {
                continue;
            }
            let routed_tables = routed.base_tables();
            let fired = next
                .views()
                .iter()
                .find(|(_, v)| routed_tables.contains(&v.table_name));
            if let Some((view_fp, view)) = fired {
                let input = FeatureInput {
                    query: plan.clone(),
                    view: view.plan.clone(),
                    tables: tables_meta(&planner.catalog, plan, &view.plan),
                };
                let est = planner.estimator.estimate(&input);
                estimates.push((Fingerprint::of(plan), est, *view_fp));
            }
        }
        metrics.set_gauge("serve.frozen_estimates", estimates.len() as f64);
        let next = next.with_estimates(estimates);

        // Preflight gate: a snapshot that cannot prove itself never
        // reaches the swap.
        match next.validate_with(sample) {
            Ok(stats) => {
                metrics.add("serve.preflight.proved", stats.proved as u64);
                metrics.add("serve.preflight.unknown", stats.unknown as u64);
            }
            Err(msg) => {
                metrics.inc("serve.preflight_failures");
                return Err(ServeError::InvalidDeployment(msg));
            }
        }

        summary.epoch = next.epoch();
        summary.live_views = next.views().len();
        self.cell.swap(Arc::new(next));
        metrics.inc("serve.swaps");
        metrics.set_gauge("serve.live_views", summary.live_views as f64);
        metrics.set_gauge("serve.epoch", summary.epoch as f64);
        Ok(())
    }

    /// The currently published snapshot.
    pub fn current(&self) -> Arc<Deployment> {
        self.cell.load()
    }

    /// Epoch of the published snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn metrics(&self) -> &av_trace::Metrics {
        self.tracer.metrics()
    }

    /// Aggregate hit/miss/evict counters of the sharded result cache.
    pub fn cache_stats(&self) -> av_engine::CacheStats {
        self.cache.stats()
    }

    /// Per-shard counters (index = shard).
    pub fn shard_stats(&self) -> Vec<av_engine::CacheStats> {
        self.cache.shard_stats()
    }

    /// Admission counters for one tenant.
    pub fn tenant_load(&self, tenant: &str) -> crate::admission::TenantLoad {
        self.admission.load_of(tenant)
    }

    /// The telemetry layer: flight recorder, SLO monitor, residual store.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Snapshot of the whole telemetry layer (the `serve stats` payload).
    pub fn stats_snapshot(&self) -> av_obs::ObsStats {
        self.publish_pool_metrics();
        self.obs.stats()
    }

    /// The shared morsel pool's scheduler counters.
    pub fn pool_stats(&self) -> av_sched::PoolStats {
        av_sched::global().stats()
    }

    /// Fold the scheduler's counters (queue depth, steals, active workers,
    /// drain latency) and the current deployment's route-memo counters into
    /// the metrics registry as `sched.*` / `serve.route_memo_*` gauges, so
    /// they ride every Prometheus scrape and stats snapshot.
    pub fn publish_pool_metrics(&self) {
        let metrics = self.tracer.metrics();
        let s = self.pool_stats();
        metrics.set_gauge("sched.workers", s.workers as f64);
        metrics.set_gauge("sched.queue_depth", s.queue_depth as f64);
        metrics.set_gauge("sched.active_workers", s.active_workers as f64);
        metrics.set_gauge("sched.steals", s.steals as f64);
        metrics.set_gauge("sched.jobs", s.jobs as f64);
        metrics.set_gauge("sched.tasks", s.tasks as f64);
        metrics.set_gauge("sched.busy_nanos", s.busy_nanos as f64);
        metrics.set_gauge("sched.drain_nanos_p50", s.drain_nanos_p50 as f64);
        metrics.set_gauge("sched.drain_nanos_p95", s.drain_nanos_p95 as f64);
        let (memo_hits, memo_misses) = self.cell.load().route_memo_stats();
        metrics.set_gauge("serve.route_memo_hits", memo_hits as f64);
        metrics.set_gauge("serve.route_memo_misses", memo_misses as f64);
    }

    /// Prometheus text exposition: metrics registry + SLO + residual series,
    /// including the scheduler's `sched.*` gauges.
    pub fn prometheus_text(&self) -> String {
        self.publish_pool_metrics();
        self.obs.prometheus(&self.tracer.metrics().snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_cost::OptimizerEstimator;
    use av_workload::cloud::mini;

    fn server_for(w: &av_workload::Workload) -> ViewServer {
        ViewServer::new(
            w.catalog.clone(),
            Box::new(OptimizerEstimator::default()),
            ServeConfig {
                lifecycle: LifecycleConfig {
                    byte_budget: usize::MAX,
                    min_benefit_per_byte: 0.0,
                    tenant_byte_budget: usize::MAX,
                },
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn serves_queries_and_swaps_epochs() {
        let w = mini(71);
        let plans = w.plans();
        let server = server_for(&w);
        assert_eq!(server.epoch(), 0);

        // Epoch 0 serves with no views.
        let baseline: Vec<RecordBatch> = plans
            .iter()
            .map(|p| server.execute("t0", p).expect("serves").batch)
            .collect();

        // Reoptimize on the window: views admitted, epoch bumped.
        let summary = server.reoptimize(&plans, None).expect("reoptimizes");
        assert_eq!(summary.epoch, 1);
        assert!(summary.admitted > 0, "mini workload selects views");
        assert_eq!(server.epoch(), 1);

        // Epoch 1 serves identical results, now routed through views.
        let mut hits = 0;
        for (p, before) in plans.iter().zip(&baseline) {
            let resp = server.execute("t0", p).expect("serves");
            assert_eq!(resp.epoch, 1);
            assert_eq!(&resp.batch, before, "swap must not change results");
            hits += resp.rewrite_hits;
        }
        assert!(hits > 0, "views must route repeat queries");
        assert_eq!(
            server.metrics().counter("serve.requests"),
            2 * plans.len() as u64
        );
        assert_eq!(server.metrics().counter("serve.swaps"), 1);
    }

    #[test]
    fn elastic_dop_policy_shares_the_pool() {
        // One query owns the machine; at saturation everyone runs serial.
        assert_eq!(elastic_dop(8, 1), 8);
        assert_eq!(elastic_dop(8, 2), 4);
        assert_eq!(elastic_dop(8, 3), 2);
        assert_eq!(elastic_dop(8, 8), 1);
        assert_eq!(elastic_dop(8, 64), 1);
        // Degenerate inputs never return 0.
        assert_eq!(elastic_dop(1, 64), 1);
        assert_eq!(elastic_dop(0, 0), 1);
    }

    #[test]
    fn pool_metrics_ride_the_prometheus_export() {
        let w = mini(75);
        let plans = w.plans();
        let server = server_for(&w);
        for p in &plans {
            server.execute("t", p).expect("serves");
        }
        let text = server.prometheus_text();
        for gauge in [
            "sched_workers",
            "sched_queue_depth",
            "sched_active_workers",
            "sched_steals",
            "serve_route_memo_hits",
        ] {
            assert!(text.contains(gauge), "missing {gauge} in:\n{text}");
        }
        // Elastic DOP is on by default and the route memo absorbed the
        // repeat routing work.
        let (hits, misses) = server.current().route_memo_stats();
        assert_eq!(hits + misses, plans.len() as u64);
    }

    #[test]
    fn old_snapshot_handles_survive_swap() {
        let w = mini(72);
        let plans = w.plans();
        let server = server_for(&w);
        let old = server.current();
        server.reoptimize(&plans, None).expect("reoptimizes");
        // The pre-swap handle still routes nothing and still executes.
        assert_eq!(old.epoch(), 0);
        let (routed, hits) = old.route(&plans[0]);
        assert_eq!(hits, 0);
        assert_eq!(Fingerprint::of(&routed), Fingerprint::of(&plans[0]));
    }

    #[test]
    fn tenant_owned_views_are_accounted() {
        let w = mini(73);
        let plans = w.plans();
        let server = server_for(&w);
        let summary = server.reoptimize(&plans, Some("acme")).expect("reoptimizes");
        assert!(summary.admitted > 0);
        let planner = server.planner.lock().expect("planner");
        assert!(
            planner.lifecycle.live_bytes_of(Some("acme")) > 0,
            "admitted views are charged to the owner"
        );
        assert_eq!(planner.lifecycle.live_bytes_of(None), 0);
    }

    #[test]
    fn per_shard_metrics_flow_through_registry() {
        let w = mini(74);
        let plans = w.plans();
        let server = server_for(&w);
        for p in &plans {
            server.execute("t", p).expect("serves");
            server.execute("t", p).expect("repeat hits cache");
        }
        let agg = server.cache_stats();
        assert!(agg.hits > 0, "repeats must hit");
        let m = server.metrics();
        let (mut hit_sum, mut miss_sum) = (0, 0);
        for (i, s) in server.shard_stats().iter().enumerate() {
            assert_eq!(m.counter(&format!("engine.cache.shard{i}.hit")), s.hits);
            hit_sum += s.hits;
            miss_sum += s.misses;
        }
        assert_eq!(hit_sum, agg.hits);
        assert_eq!(miss_sum, agg.misses);
    }
}
