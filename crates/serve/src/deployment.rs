//! Immutable view deployments and the epoch-swap cell that publishes them.
//!
//! A [`Deployment`] is a frozen snapshot of everything a query needs to
//! execute: an `Arc<Catalog>` (cheap to clone — the catalog shares table
//! data behind `Arc`, see `av_engine::catalog`) plus the set of live
//! materialized views frozen at publication time. Sessions route and run
//! against a deployment without taking any lock that a re-optimizer could
//! hold: the [`DeploymentCell`] hands out `Arc<Deployment>` handles, and a
//! swap only replaces the pointer — every in-flight request keeps the epoch
//! it started on until it finishes.

use av_analyze::Verdict;
use av_engine::{Catalog, MaterializedView};
use av_online::route_through_views;
use av_plan::{Fingerprint, PlanRef};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Independent locks for the route-memo table. Routing is read-mostly and
/// fingerprint-keyed, so a handful of shards removes lock contention the
/// same way `ShardedExecCache` does for results.
const ROUTE_MEMO_SHARDS: usize = 8;

/// Memoized routes per shard; a deployment serves a bounded working set of
/// distinct plans, so overflow simply stops memoizing (correctness is
/// unaffected — `route` recomputes).
const ROUTE_MEMO_CAP_PER_SHARD: usize = 4096;

/// What the preflight gate actually did, per verdict: how many sample
/// queries routed through a view, how many rewrites the static prover
/// discharged outright, and how many fell back to the sampled
/// `verify_rewrite` execution check. Surfaced as `serve.preflight.*`
/// metrics by the server's swap path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PreflightStats {
    /// Sample queries inspected.
    pub sampled: usize,
    /// Sample queries where at least one view fired.
    pub routed: usize,
    /// Rewrites statically proved contained — no execution needed.
    pub proved: usize,
    /// Rewrites the prover could not decide; checked by `verify_rewrite`.
    pub unknown: usize,
}

/// A frozen, immutable serving snapshot: catalog + live views at one epoch.
#[derive(Debug)]
pub struct Deployment {
    /// Monotonic publication counter (0 = the initial, view-free snapshot).
    epoch: u64,
    catalog: Arc<Catalog>,
    /// Live views with their canonical defining fingerprints, frozen at
    /// publication. Routing matches against these, never a shared mutable
    /// lifecycle manager.
    views: Vec<(Fingerprint, MaterializedView)>,
    /// Cost estimates for known routed queries, frozen at publication:
    /// `(original-plan fingerprint, estimated cost, view fingerprint)`,
    /// sorted by the first element for lock-free binary-search lookup on
    /// the read path. Feeds the estimator-residual telemetry stream.
    estimates: Vec<(Fingerprint, f64, Fingerprint)>,
    /// Memoized `route` results (routed plan, subtree hits, routed
    /// fingerprint) keyed by the *original* plan's fingerprint. Sound
    /// because the deployment is immutable: the catalog and view set are
    /// frozen, so a plan's rewrite can never change within one epoch — a
    /// swap publishes a fresh deployment with an empty memo. Turns the
    /// per-request tree rewrite + rehash into a hash lookup on the warm
    /// path.
    route_memo: Vec<Mutex<HashMap<u64, (PlanRef, usize, Fingerprint)>>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
}

impl Deployment {
    /// Freeze a snapshot. `views` pairs each view's *canonical* defining
    /// fingerprint with its materialized record; every view's stored table
    /// must be present in `catalog` (checked by [`Deployment::validate`]).
    pub fn new(
        epoch: u64,
        catalog: Arc<Catalog>,
        views: Vec<(Fingerprint, MaterializedView)>,
    ) -> Deployment {
        Deployment {
            epoch,
            catalog,
            views,
            estimates: Vec::new(),
            route_memo: (0..ROUTE_MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }

    /// Attach per-query cost estimates (built by the planner at publication
    /// time from the reopt window). Keys are fingerprints of *original*
    /// plans as clients submit them, so [`Deployment::estimate_of`] lookups
    /// need no routing.
    pub fn with_estimates(
        mut self,
        mut estimates: Vec<(Fingerprint, f64, Fingerprint)>,
    ) -> Deployment {
        estimates.sort_by_key(|(fp, _, _)| fp.0);
        estimates.dedup_by_key(|(fp, _, _)| fp.0);
        self.estimates = estimates;
        self
    }

    /// The estimated cost and routing view recorded for a submitted plan's
    /// fingerprint, if the planner saw this query in its window. O(log n),
    /// no locks — safe on the hot read path.
    pub fn estimate_of(&self, plan_fp: Fingerprint) -> Option<(f64, Fingerprint)> {
        self.estimates
            .binary_search_by_key(&plan_fp.0, |(fp, _, _)| fp.0)
            .ok()
            .map(|i| {
                let (_, est, view_fp) = self.estimates[i];
                (est, view_fp)
            })
    }

    /// Number of frozen estimates (diagnostics).
    pub fn estimate_count(&self) -> usize {
        self.estimates.len()
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Shared handle to the snapshot's catalog.
    pub fn catalog_arc(&self) -> Arc<Catalog> {
        self.catalog.clone()
    }

    /// The frozen live-view set.
    pub fn views(&self) -> &[(Fingerprint, MaterializedView)] {
        &self.views
    }

    /// Rewrite `plan` through the frozen views (larger views first, matched
    /// on canonical fingerprints). Returns the routed plan and the number
    /// of subtree replacements.
    pub fn route(&self, plan: &PlanRef) -> (PlanRef, usize) {
        let refs: Vec<(Fingerprint, &MaterializedView)> =
            self.views.iter().map(|(fp, v)| (*fp, v)).collect();
        route_through_views(&self.catalog, &refs, plan)
    }

    /// [`Deployment::route`] memoized on the submitted plan's fingerprint,
    /// also caching the routed plan's own fingerprint (the result-cache
    /// key). The snapshot is frozen, so a memoized rewrite is exact for
    /// the life of this deployment; the serving hot path uses this to
    /// avoid re-walking and re-hashing the plan tree on every request for
    /// the same query.
    pub fn route_memo(&self, plan_fp: Fingerprint, plan: &PlanRef) -> (PlanRef, usize, Fingerprint) {
        let shard = &self.route_memo[(plan_fp.0 % ROUTE_MEMO_SHARDS as u64) as usize];
        if let Some((routed, hits, routed_fp)) =
            shard.lock().expect("route memo poisoned").get(&plan_fp.0)
        {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return (routed.clone(), *hits, *routed_fp);
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let (routed, hits) = self.route(plan);
        let routed_fp = if hits == 0 {
            plan_fp
        } else {
            Fingerprint::of(&routed)
        };
        let mut memo = shard.lock().expect("route memo poisoned");
        if memo.len() < ROUTE_MEMO_CAP_PER_SHARD {
            memo.insert(plan_fp.0, (routed.clone(), hits, routed_fp));
        }
        (routed, hits, routed_fp)
    }

    /// `(hits, misses)` of the route memo since this deployment was
    /// published — serving telemetry for the warm-path rewrite saving.
    pub fn route_memo_stats(&self) -> (u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    /// Preflight the snapshot before it may be published: every view's
    /// stored table must exist in the catalog, and every defining plan must
    /// pass the `av-analyze` verifier against it. Returns the first problem
    /// found, so a bad re-optimization can never reach the swap.
    pub fn validate(&self) -> Result<(), String> {
        for (fp, view) in &self.views {
            let table = self.catalog.table(&view.table_name).ok_or_else(|| {
                format!(
                    "view {:?} (fp {fp:?}): stored table `{}` missing from catalog",
                    view.id, view.table_name
                )
            })?;
            av_analyze::verify_plan(&self.catalog, &view.plan).map_err(|e| {
                format!("view {:?} (fp {fp:?}): defining plan fails verification: {e}", view.id)
            })?;
            if table.column_names.len() != view.plan.output_columns(&|t| self.catalog.table_columns(t)).len()
            {
                return Err(format!(
                    "view {:?} (fp {fp:?}): stored table `{}` arity differs from defining plan",
                    view.id, view.table_name
                ));
            }
        }
        Ok(())
    }

    /// [`Deployment::validate`], plus an end-to-end routing check over a
    /// sample of queries. Each sample is routed through this snapshot and,
    /// when any view fired, the rewrite goes through the semantic prover
    /// first: `Proved` needs no further checking, `Refuted` fails the whole
    /// preflight (the witness row names the divergence — a refuted rewrite
    /// must never reach the swap), and only `Unknown` falls back to the
    /// schema-level `verify_rewrite` check. This is the full preflight gate
    /// a re-optimizer runs before swapping the snapshot in.
    pub fn validate_with(&self, sample: &[PlanRef]) -> Result<PreflightStats, String> {
        self.validate()?;
        let resolve = |t: &str| {
            self.views
                .iter()
                .find(|(_, v)| v.table_name == t)
                .map(|(_, v)| v.plan.clone())
        };
        let mut stats = PreflightStats {
            sampled: sample.len(),
            ..PreflightStats::default()
        };
        for (i, plan) in sample.iter().enumerate() {
            let (routed, hits) = self.route(plan);
            if hits == 0 {
                continue;
            }
            stats.routed += 1;
            match av_analyze::prove_rewrite(&self.catalog, plan, &routed, &resolve) {
                Verdict::Proved => stats.proved += 1,
                Verdict::Refuted { witness } => {
                    return Err(format!(
                        "sample query {i}: routed plan refuted by the semantic prover: {witness}"
                    ));
                }
                Verdict::Unknown { .. } => {
                    stats.unknown += 1;
                    av_analyze::verify_rewrite(&self.catalog, plan, &routed).map_err(|e| {
                        format!("sample query {i}: routed plan fails verification: {e}")
                    })?;
                }
            }
        }
        Ok(stats)
    }
}

/// The publication point: a single atomic slot holding the current
/// [`Deployment`]. Readers [`DeploymentCell::load`] an `Arc` and keep using
/// it for as long as they like; [`DeploymentCell::swap`] replaces the slot
/// without ever blocking on readers (the write lock is held only for the
/// pointer exchange — loads that raced ahead hold their own `Arc`).
#[derive(Debug)]
pub struct DeploymentCell {
    current: RwLock<Arc<Deployment>>,
}

impl DeploymentCell {
    pub fn new(initial: Deployment) -> DeploymentCell {
        DeploymentCell {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. The returned handle stays valid (and its epoch
    /// fixed) across any number of concurrent swaps.
    pub fn load(&self) -> Arc<Deployment> {
        self.current.read().expect("deployment cell poisoned").clone()
    }

    /// Publish a new snapshot, returning the one it replaced.
    pub fn swap(&self, next: Arc<Deployment>) -> Arc<Deployment> {
        let mut slot = self.current.write().expect("deployment cell poisoned");
        std::mem::replace(&mut *slot, next)
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_engine::{Column, Pricing, Table, ViewStore};
    use av_equiv::canonicalize;
    use av_plan::{Expr, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            Table::new(
                "t",
                vec![
                    ("k", Column::Int((0..60).map(|i| i % 6).collect())),
                    ("v", Column::Int((0..60).collect())),
                ],
            )
            .expect("valid"),
        )
        .expect("ok");
        c
    }

    fn deployment_with_view() -> (Deployment, PlanRef) {
        let mut cat = catalog();
        let mut store = ViewStore::new();
        let sub = PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.k").eq(Expr::int(2)))
            .project(&[("a.v", "a.v")])
            .build();
        let id = store
            .materialize(&mut cat, sub.clone(), Pricing::paper_defaults())
            .expect("materializes");
        let view = store.view(id).expect("exists").clone();
        let fp = Fingerprint::of(&canonicalize(&sub));
        (Deployment::new(1, Arc::new(cat), vec![(fp, view)]), sub)
    }

    #[test]
    fn routing_fires_on_matching_subtree() {
        let (dep, sub) = deployment_with_view();
        let query = PlanBuilder::from_plan(sub).count_star(&[], "c").build();
        let (routed, hits) = dep.route(&query);
        assert_eq!(hits, 1);
        assert_ne!(Fingerprint::of(&routed), Fingerprint::of(&query));
        dep.validate_with(&[query]).expect("validates");
    }

    #[test]
    fn route_memo_matches_route_and_counts_hits() {
        let (dep, sub) = deployment_with_view();
        let query = PlanBuilder::from_plan(sub).count_star(&[], "c").build();
        let fp = Fingerprint::of(&query);
        let (direct, direct_hits) = dep.route(&query);
        let (cold, cold_hits, cold_fp) = dep.route_memo(fp, &query);
        let (warm, warm_hits, warm_fp) = dep.route_memo(fp, &query);
        assert_eq!(Fingerprint::of(&direct), Fingerprint::of(&cold));
        assert_eq!(Fingerprint::of(&direct), Fingerprint::of(&warm));
        assert_eq!(cold_fp, Fingerprint::of(&direct), "memoized routed fp");
        assert_eq!(warm_fp, cold_fp);
        assert_eq!(direct_hits, cold_hits);
        assert_eq!(direct_hits, warm_hits);
        assert_eq!(dep.route_memo_stats(), (1, 1), "one miss then one hit");
        // An unrouted plan memoizes its own fingerprint as the cache key.
        let (_, none_hits, none_fp) = dep.route_memo(cold_fp, &cold);
        assert_eq!(none_hits, 0);
        assert_eq!(none_fp, cold_fp);
    }

    #[test]
    fn validate_rejects_missing_view_table() {
        let (dep, _) = deployment_with_view();
        // Rebuild the deployment against a catalog that lacks the stored
        // view table.
        let bare = Arc::new(catalog());
        let broken = Deployment::new(2, bare, dep.views().to_vec());
        let err = broken.validate().expect_err("must reject");
        assert!(err.contains("missing from catalog"), "{err}");
    }

    #[test]
    fn estimate_lookup_is_sorted_deduped_and_exact() {
        let (dep, _) = deployment_with_view();
        let view_fp = dep.views()[0].0;
        let dep = Deployment::new(3, dep.catalog_arc(), dep.views().to_vec()).with_estimates(vec![
            (Fingerprint(30), 3.0, view_fp),
            (Fingerprint(10), 1.0, view_fp),
            (Fingerprint(20), 2.0, view_fp),
            (Fingerprint(10), 99.0, view_fp), // duplicate key: first after sort wins
        ]);
        assert_eq!(dep.estimate_count(), 3);
        assert_eq!(dep.estimate_of(Fingerprint(10)), Some((1.0, view_fp)));
        assert_eq!(dep.estimate_of(Fingerprint(20)), Some((2.0, view_fp)));
        assert_eq!(dep.estimate_of(Fingerprint(30)), Some((3.0, view_fp)));
        assert_eq!(dep.estimate_of(Fingerprint(15)), None);
        let bare = Deployment::new(0, dep.catalog_arc(), Vec::new());
        assert_eq!(bare.estimate_of(Fingerprint(10)), None);
    }

    #[test]
    fn swap_leaves_prior_handles_untouched() {
        let (dep, _) = deployment_with_view();
        let views = dep.views().to_vec();
        let cat = dep.catalog_arc();
        let cell = DeploymentCell::new(dep);
        let held = cell.load();
        assert_eq!(held.epoch(), 1);
        let old = cell.swap(Arc::new(Deployment::new(2, cat, views)));
        assert_eq!(old.epoch(), 1);
        assert_eq!(cell.epoch(), 2);
        // The handle loaded before the swap still serves its old epoch.
        assert_eq!(held.epoch(), 1);
        assert_eq!(held.views().len(), 1);
    }
}
