//! # av-serve — concurrent multi-tenant query serving over view deployments
//!
//! The paper's system faces "millions of users": view selection is only
//! useful if the selected views can be *served* — many sessions executing
//! against a shared snapshot while re-optimization retunes the view set in
//! the background. This crate is that serving layer:
//!
//! - [`Deployment`] / [`DeploymentCell`]: immutable copy-on-write
//!   snapshots (an `Arc<Catalog>` sharing table data plus a frozen live
//!   view set) published through an epoch-swapped cell. Readers never
//!   block on re-optimization; a swap replaces one pointer and in-flight
//!   requests finish on the epoch they started with.
//! - [`AdmissionController`]: per-tenant inflight caps with a bounded wait
//!   queue — backpressure first, load shedding second, so one hot tenant
//!   cannot monopolize the worker pool.
//! - [`ViewServer`]: the façade. `execute` is the lock-light read path
//!   (admission → snapshot → route → sharded cache); `reoptimize` is the
//!   serialized write path (selection → tenant-accounted admission → a
//!   candidate deployment preflighted through `av-analyze` → atomic swap).
//! - [`loadgen`]: closed- and open-loop workload replay with exact
//!   latency percentiles, feeding `BENCH_serve.json`.
//!
//! ```
//! use av_serve::{ServeConfig, ViewServer};
//! use av_cost::OptimizerEstimator;
//! use av_workload::cloud::mini;
//!
//! let w = mini(7);
//! let plans = w.plans();
//! let server = ViewServer::new(
//!     w.catalog.clone(),
//!     Box::new(OptimizerEstimator::default()),
//!     ServeConfig::default(),
//! );
//! let before = server.execute("tenant0", &plans[0]).unwrap();
//! server.reoptimize(&plans, Some("tenant0")).unwrap();   // epoch 0 → 1
//! let after = server.execute("tenant0", &plans[0]).unwrap();
//! assert_eq!(before.batch, after.batch);                 // swap is invisible
//! ```

#![forbid(unsafe_code)]

pub mod admission;
pub mod deployment;
pub mod loadgen;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, Permit, Rejection, TenantLoad};
pub use deployment::{Deployment, DeploymentCell, PreflightStats};
pub use loadgen::{
    run_closed_loop, run_open_loop, ClosedLoopConfig, LoadReport, OpenLoopConfig,
};
pub use server::{ReoptSummary, ServeConfig, ServeError, ServeResponse, ViewServer};

// Telemetry types consumers need to configure the server or consume its
// snapshots without depending on `av-obs` directly.
pub use av_obs::{ErrorAggregate, FlightDump, ObsConfig, ObsStats, SloAlert, TenantSloStats};
