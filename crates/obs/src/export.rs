//! Prometheus text-format exposition (version 0.0.4) for an
//! [`av_trace::MetricsSnapshot`] plus the obs layer's own SLO and residual
//! state.
//!
//! Internal metric names are dotted (`engine.cache_hit`); Prometheus names
//! must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so dots and any other stray
//! characters become underscores. Histograms render as the standard
//! cumulative-`le` bucket series with `_sum`/`_count`, timings as
//! `_seconds_total`/`_count` counter pairs, and SLO state as labeled
//! per-tenant gauges.

use crate::residual::ResidualSummary;
use crate::slo::TenantSloStats;
use av_trace::MetricsSnapshot;
use std::fmt::Write as _;

/// Sanitize one metric name into the Prometheus alphabet.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render a metrics snapshot as Prometheus exposition text.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_f64(*value));
    }
    for (name, h) in &snapshot.histograms {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for b in &h.buckets {
            // The snapshot's overflow bucket carries `f64::MAX` (JSON has no
            // +Inf literal); it folds into the terminal `+Inf` series below.
            if b.upper >= f64::MAX {
                continue;
            }
            cum += b.count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", fmt_f64(b.upper));
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", fmt_f64(h.sum));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    for (name, t) in &snapshot.timings {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n}_seconds_total counter");
        let _ = writeln!(out, "{n}_seconds_total {}", fmt_f64(t.total_seconds));
        let _ = writeln!(out, "# TYPE {n}_count counter");
        let _ = writeln!(out, "{n}_count {}", t.count);
    }
    out
}

/// Render per-tenant SLO state as labeled gauges.
pub fn slo_text(stats: &[TenantSloStats]) -> String {
    let mut out = String::new();
    if stats.is_empty() {
        return out;
    }
    type Series = (&'static str, fn(&TenantSloStats) -> String);
    let series: [Series; 8] = [
        ("slo_requests_total", |s| s.requests.to_string()),
        ("slo_shed_or_failed_total", |s| s.shed_or_failed.to_string()),
        ("slo_latency_p50_us", |s| s.p50_us.to_string()),
        ("slo_latency_p99_us", |s| s.p99_us.to_string()),
        ("slo_latency_fast_burn", |s| fmt_f64(s.latency_fast_burn)),
        ("slo_latency_slow_burn", |s| fmt_f64(s.latency_slow_burn)),
        ("slo_availability_slow_burn", |s| {
            fmt_f64(s.availability_slow_burn)
        }),
        ("slo_alerts_fired_total", |s| s.alerts_fired.to_string()),
    ];
    for (name, get) in series {
        let kind = if name.ends_with("_total") {
            "counter"
        } else {
            "gauge"
        };
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for s in stats {
            let _ = writeln!(
                out,
                "{name}{{tenant=\"{}\"}} {}",
                escape_label(&s.tenant),
                get(s)
            );
        }
    }
    out
}

/// Render residual-store aggregates as labeled gauges.
pub fn residual_text(summary: &ResidualSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE residuals_recorded_total counter");
    let _ = writeln!(out, "residuals_recorded_total {}", summary.recorded);
    if !summary.per_view.is_empty() {
        let _ = writeln!(out, "# TYPE residual_q_error_mean gauge");
        for (view, agg) in &summary.per_view {
            let _ = writeln!(
                out,
                "residual_q_error_mean{{view=\"{view:#018x}\"}} {}",
                fmt_f64(agg.q_mean())
            );
        }
    }
    if !summary.per_op.is_empty() {
        let _ = writeln!(out, "# TYPE residual_q_error_max gauge");
        for (op, agg) in &summary.per_op {
            let _ = writeln!(
                out,
                "residual_q_error_max{{op=\"{}\"}} {}",
                escape_label(op),
                fmt_f64(agg.q_max)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residual::{Residual, ResidualStore};
    use av_trace::Metrics;

    #[test]
    fn names_are_sanitized_into_the_prometheus_alphabet() {
        assert_eq!(sanitize("engine.cache_hit"), "engine_cache_hit");
        assert_eq!(sanitize("serve.latency-us"), "serve_latency_us");
        assert_eq!(sanitize("9lives"), "_lives", "leading digit is illegal");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn counters_gauges_and_histograms_render() {
        let m = Metrics::new();
        m.add("engine.cache_hit", 7);
        m.set_gauge("serve.inflight", 3.5);
        m.observe("serve.latency_us", 100.0);
        m.observe("serve.latency_us", 5000.0);
        let text = prometheus_text(&m.snapshot());
        assert!(text.contains("# TYPE engine_cache_hit counter"));
        assert!(text.contains("engine_cache_hit 7"));
        assert!(text.contains("serve_inflight 3.5"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
        assert!(text.contains("serve_latency_us_count 2"));
        assert!(
            text.contains("_bucket{le=\"+Inf\"} 2"),
            "terminal +Inf bucket must equal the count:\n{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe("h", 0.5);
        m.observe("h", 2.0);
        m.observe("h", 2.0);
        let text = prometheus_text(&m.snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("h_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotone: {counts:?}");
        assert_eq!(*counts.last().unwrap(), 3);
    }

    #[test]
    fn slo_series_are_labeled_per_tenant() {
        let stats = vec![TenantSloStats {
            tenant: "acme\"corp".to_string(),
            requests: 10,
            shed_or_failed: 1,
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            latency_fast_burn: 0.5,
            latency_slow_burn: 0.25,
            availability_fast_burn: 0.0,
            availability_slow_burn: 0.0,
            alerts_fired: 0,
        }];
        let text = slo_text(&stats);
        assert!(text.contains("slo_requests_total{tenant=\"acme\\\"corp\"} 10"));
        assert!(text.contains("slo_latency_p99_us{tenant=\"acme\\\"corp\"} 300"));
        assert_eq!(slo_text(&[]), "");
    }

    #[test]
    fn residual_series_render_per_view_and_per_op() {
        let store = ResidualStore::new(8);
        store.record(Residual {
            plan_fp: 1,
            view_fp: 0xabc,
            root_op: "Join",
            estimated: 4.0,
            measured: 2.0,
        });
        let text = residual_text(&store.summary());
        assert!(text.contains("residuals_recorded_total 1"));
        assert!(text.contains("residual_q_error_mean{view=\"0x0000000000000abc\"} 2"));
        assert!(text.contains("residual_q_error_max{op=\"Join\"} 2"));
    }
}
