//! Per-tenant SLO monitoring: mergeable deterministic quantile sketches
//! over sliding windows, and multi-window error-budget burn-rate alerting.
//!
//! Two objectives per tenant, in the classic SRE formulation:
//!
//! - **Latency**: a request is *bad* when its latency exceeds
//!   [`SloConfig::latency_threshold_us`]. The target
//!   ([`SloConfig::latency_target`], e.g. 0.99 for "p99 under threshold")
//!   leaves an error budget of `1 - target`.
//! - **Availability**: a request is *bad* when it was shed by admission
//!   control or failed ([`SloConfig::availability_target`]).
//!
//! The *burn rate* of a window is `bad_fraction / (1 - target)` — 1.0 means
//! the error budget is being spent exactly as provisioned; `N` means `N`×
//! too fast. An alert fires only when **both** a short window (reacting in
//! seconds) and the long window (filtering blips) burn above their
//! thresholds — the standard multi-window guard against both slow leaks
//! and one-interval spikes.
//!
//! Latency distributions are kept as [`QuantileSketch`]es: log2 buckets
//! with [`SUB_BUCKET_BITS`] linear sub-buckets each (HDR-histogram style),
//! so any quantile is deterministic, mergeable by counter addition, and
//! within ~3% relative error. Each window interval owns one sketch;
//! whole-window quantiles merge the interval sketches.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::recorder::TenantTag;
use std::sync::Mutex;

/// Linear sub-buckets per log2 bucket: 2^5 = 32, bounding the relative
/// error of any reported quantile by 1/32 ≈ 3.1%.
pub const SUB_BUCKET_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BUCKET_BITS;
/// Values clamp at 2^30 µs (~18 minutes) — far beyond any latency this
/// system can produce, and it keeps the sketch at a fixed 832 counters.
const MAX_VALUE: u64 = (1 << 30) - 1;
const BUCKETS: usize = (30 - SUB_BUCKET_BITS as usize + 1) * SUB;

fn index_of(value: u64) -> usize {
    let v = value.min(MAX_VALUE);
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    let top = ((v >> shift) as usize) & (SUB - 1);
    ((msb - SUB_BUCKET_BITS) as usize + 1) * SUB + top
}

/// Lower edge of bucket `index` — the deterministic representative value.
fn value_of(index: usize) -> u64 {
    let bucket = index / SUB;
    let sub = (index % SUB) as u64;
    if bucket == 0 {
        sub
    } else {
        (sub + SUB as u64) << (bucket - 1)
    }
}

/// A deterministic, mergeable quantile sketch over `u64` values
/// (microseconds, by convention, but any unit works).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn observe(&mut self, value: u64) {
        self.counts[index_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`): the bucket representative at rank
    /// `ceil(q·count)`, clamped to the observed `[min, max]`. Deterministic
    /// — the same counters always yield the same value — so merged sketches
    /// agree with a sketch built from the concatenated stream. Returns
    /// `None` on an empty sketch or out-of-range/NaN `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || q.is_nan() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(value_of(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold `other` in: counter addition, so merge order is irrelevant and
    /// the result equals a sketch of the concatenated observations.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

/// SLO objectives and alerting thresholds.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// A request slower than this (total latency, µs) is a latency-budget
    /// violation.
    pub latency_threshold_us: u64,
    /// Fraction of requests that must meet the latency threshold (0.99 =
    /// "p99 under threshold").
    pub latency_target: f64,
    /// Fraction of requests that must not be shed or fail.
    pub availability_target: f64,
    /// Width of one window interval, in clock nanoseconds.
    pub interval_nanos: u64,
    /// Intervals in the (long) sliding window.
    pub intervals: usize,
    /// Intervals in the short window (must be ≤ `intervals`).
    pub fast_intervals: usize,
    /// Short-window burn rate that, together with `slow_burn`, fires an
    /// alert. The defaults follow the SRE-workbook "page" tuning.
    pub fast_burn: f64,
    /// Long-window burn rate required to fire.
    pub slow_burn: f64,
    /// Minimum events in the long window before alerting (an empty window
    /// never pages).
    pub min_events: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_threshold_us: 10_000,
            latency_target: 0.99,
            availability_target: 0.999,
            interval_nanos: 1_000_000_000,
            intervals: 12,
            fast_intervals: 2,
            fast_burn: 6.0,
            slow_burn: 3.0,
            min_events: 64,
        }
    }
}

/// Which objective an alert is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    LatencyP99,
    Availability,
}

/// One burn-rate alert, fired on the transition into breach.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloAlert {
    pub tenant: String,
    pub objective: Objective,
    /// Short-window burn rate at fire time.
    pub fast_burn: f64,
    /// Long-window burn rate at fire time.
    pub slow_burn: f64,
    /// Clock timestamp of the observation that fired the alert.
    pub at_nanos: u64,
}

/// How one request ended, from the SLO's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    Served,
    Shed,
    Failed,
}

#[derive(Debug, Clone)]
struct Interval {
    sketch: QuantileSketch,
    total: u64,
    lat_bad: u64,
    avail_bad: u64,
}

impl Interval {
    fn new() -> Interval {
        Interval {
            sketch: QuantileSketch::new(),
            total: 0,
            lat_bad: 0,
            avail_bad: 0,
        }
    }

    fn clear(&mut self) {
        self.sketch.clear();
        self.total = 0;
        self.lat_bad = 0;
        self.avail_bad = 0;
    }
}

/// Sliding window of per-interval sketches/counters for one tenant.
#[derive(Debug)]
struct TenantWindow {
    intervals: Vec<Interval>,
    /// Absolute interval number currently being written.
    head: u64,
    /// Whether each objective is currently in the alerting state (dedup:
    /// re-fire only after recovery below burn 1.0).
    breached: [bool; 2],
    alerts_fired: u64,
}

impl TenantWindow {
    fn new(n: usize) -> TenantWindow {
        TenantWindow {
            intervals: (0..n.max(1)).map(|_| Interval::new()).collect(),
            head: 0,
            breached: [false; 2],
            alerts_fired: 0,
        }
    }

    fn rotate_to(&mut self, abs: u64) {
        if abs <= self.head {
            return; // same interval (clocks are monotone; never rotate back)
        }
        let n = self.intervals.len() as u64;
        let steps = (abs - self.head).min(n);
        for s in 1..=steps {
            let idx = ((self.head + s) % n) as usize;
            self.intervals[idx].clear();
        }
        self.head = abs;
    }

    /// Sum of (total, bad) over the newest `k` intervals.
    fn window_counts(&self, k: usize, lat: bool) -> (u64, u64) {
        let n = self.intervals.len() as u64;
        let k = (k as u64).min(n);
        let mut total = 0;
        let mut bad = 0;
        for back in 0..k {
            if back > self.head {
                break;
            }
            let iv = &self.intervals[((self.head - back) % n) as usize];
            total += iv.total;
            bad += if lat { iv.lat_bad } else { iv.avail_bad };
        }
        (total, bad)
    }

    fn merged_sketch(&self) -> QuantileSketch {
        let mut out = QuantileSketch::new();
        for iv in &self.intervals {
            out.merge(&iv.sketch);
        }
        out
    }
}

fn burn_rate(total: u64, bad: u64, target: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let budget = (1.0 - target).max(1e-9);
    (bad as f64 / total as f64) / budget
}

/// Point-in-time SLO state of one tenant, for dashboards and exposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSloStats {
    pub tenant: String,
    pub requests: u64,
    pub shed_or_failed: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub latency_fast_burn: f64,
    pub latency_slow_burn: f64,
    pub availability_fast_burn: f64,
    pub availability_slow_burn: f64,
    pub alerts_fired: u64,
}

/// Unsynchronized SLO state: per-tenant sliding windows plus the config.
/// Observation is O(1) (a sketch increment plus counter bumps) and
/// allocation-free — windows are keyed by the fixed-width [`TenantTag`],
/// and burn rates are only evaluated when an observation can change the
/// alert decision (a budget-burning event, or a window already in breach
/// that may recover).
///
/// [`SloMonitor`] wraps this in its own mutex for standalone use; the
/// [`crate::Obs`] façade instead embeds it in a single hot-path lock
/// shared with the anomaly detector, so the request path pays one lock
/// acquisition, not two.
#[derive(Debug, Default)]
pub struct SloState {
    config: SloConfig,
    tenants: BTreeMap<TenantTag, TenantWindow>,
}

impl SloState {
    pub fn new(config: SloConfig) -> SloState {
        SloState {
            config,
            tenants: BTreeMap::new(),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Feed one request. `now_nanos` comes from the caller's injected
    /// clock; `latency_us` is the total latency charged to the tenant
    /// (admission wait included). Returns the alerts that fired *at this
    /// observation* (usually none — the vector is empty and unallocated).
    pub fn observe(
        &mut self,
        tenant: TenantTag,
        now_nanos: u64,
        latency_us: u64,
        outcome: RequestOutcome,
    ) -> Vec<SloAlert> {
        let cfg = &self.config;
        let win = self
            .tenants
            .entry(tenant)
            .or_insert_with(|| TenantWindow::new(cfg.intervals));
        win.rotate_to(now_nanos / cfg.interval_nanos.max(1));

        let n = win.intervals.len() as u64;
        let head = (win.head % n) as usize;
        let iv = &mut win.intervals[head];
        iv.total += 1;
        let mut bad = false;
        match outcome {
            RequestOutcome::Served => {
                iv.sketch.observe(latency_us);
                if latency_us > cfg.latency_threshold_us {
                    iv.lat_bad += 1;
                    bad = true;
                }
            }
            RequestOutcome::Shed | RequestOutcome::Failed => {
                // Shed/failed requests have no meaningful latency sample but
                // do burn both budgets: the tenant saw no result.
                iv.lat_bad += 1;
                iv.avail_bad += 1;
                bad = true;
            }
        }

        // A good observation can only lower burn rates, so it cannot fire
        // an alert — the full evaluation is needed only when budget was
        // burned, or while a breach is latched and may need to recover.
        // Healthy traffic pays one branch here, nothing more.
        if !bad && !win.breached[0] && !win.breached[1] {
            return Vec::new();
        }

        let mut alerts = Vec::new();
        for (slot, (objective, lat)) in [(0, (Objective::LatencyP99, true)), (1, (Objective::Availability, false))]
        {
            let target = if lat {
                cfg.latency_target
            } else {
                cfg.availability_target
            };
            let (slow_total, slow_bad) = win.window_counts(cfg.intervals, lat);
            let (fast_total, fast_bad) = win.window_counts(cfg.fast_intervals, lat);
            let slow = burn_rate(slow_total, slow_bad, target);
            let fast = burn_rate(fast_total, fast_bad, target);
            let firing =
                slow_total >= cfg.min_events && fast >= cfg.fast_burn && slow >= cfg.slow_burn;
            if firing && !win.breached[slot] {
                win.breached[slot] = true;
                win.alerts_fired += 1;
                alerts.push(SloAlert {
                    tenant: tenant.decode(),
                    objective,
                    fast_burn: fast,
                    slow_burn: slow,
                    at_nanos: now_nanos,
                });
            } else if !firing && fast < 1.0 && slow < 1.0 {
                // Recovered: both windows back under budget-neutral burn.
                win.breached[slot] = false;
            }
        }
        alerts
    }

    /// Snapshot of every tenant's window.
    pub fn stats(&self) -> Vec<TenantSloStats> {
        let cfg = &self.config;
        self.tenants
            .iter()
            .map(|(tag, win)| {
                let merged = win.merged_sketch();
                let (lt, lb) = win.window_counts(cfg.intervals, true);
                let (ltf, lbf) = win.window_counts(cfg.fast_intervals, true);
                let (at, ab) = win.window_counts(cfg.intervals, false);
                let (atf, abf) = win.window_counts(cfg.fast_intervals, false);
                TenantSloStats {
                    tenant: tag.decode(),
                    requests: lt,
                    shed_or_failed: ab,
                    p50_us: merged.quantile(0.50).unwrap_or(0),
                    p95_us: merged.quantile(0.95).unwrap_or(0),
                    p99_us: merged.quantile(0.99).unwrap_or(0),
                    latency_fast_burn: burn_rate(ltf, lbf, cfg.latency_target),
                    latency_slow_burn: burn_rate(lt, lb, cfg.latency_target),
                    availability_fast_burn: burn_rate(atf, abf, cfg.availability_target),
                    availability_slow_burn: burn_rate(at, ab, cfg.availability_target),
                    alerts_fired: win.alerts_fired,
                }
            })
            .collect()
    }
}

/// The standalone monitor: [`SloState`] behind one mutex. Library users
/// who want burn-rate alerting without the rest of the telemetry stack
/// use this; `Obs` embeds the state in its own hot-path lock instead.
#[derive(Debug, Default)]
pub struct SloMonitor {
    config: SloConfig,
    inner: Mutex<SloState>,
}

impl SloMonitor {
    pub fn new(config: SloConfig) -> SloMonitor {
        SloMonitor {
            config: config.clone(),
            inner: Mutex::new(SloState::new(config)),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// See [`SloState::observe`].
    pub fn observe(
        &self,
        tenant: TenantTag,
        now_nanos: u64,
        latency_us: u64,
        outcome: RequestOutcome,
    ) -> Vec<SloAlert> {
        self.inner
            .lock()
            .expect("slo monitor poisoned")
            .observe(tenant, now_nanos, latency_us, outcome)
    }

    /// Snapshot of every tenant's window.
    pub fn stats(&self) -> Vec<TenantSloStats> {
        self.inner.lock().expect("slo monitor poisoned").stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_quantiles_are_tight_and_deterministic() {
        let mut s = QuantileSketch::new();
        for v in 1..=1000u64 {
            s.observe(v);
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.quantile(0.0), Some(1), "q=0 clamps to min");
        assert_eq!(s.quantile(1.0), Some(s.max), "q=1 clamps to max");
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = s.quantile(q).expect("some") as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 1.0 / SUB as f64 + 1e-9, "q={q}: {got} vs {exact}");
        }
        assert_eq!(s.quantile(0.5), s.quantile(0.5), "deterministic");
        assert_eq!(s.quantile(f64::NAN), None);
        assert_eq!(s.quantile(1.5), None);
        assert_eq!(QuantileSketch::new().quantile(0.5), None);
    }

    #[test]
    fn sketch_merge_equals_concatenated_stream() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut both = QuantileSketch::new();
        for v in 0..500u64 {
            a.observe(v * 3 + 1);
            both.observe(v * 3 + 1);
        }
        for v in 0..500u64 {
            b.observe(v * 7 + 2);
            both.observe(v * 7 + 2);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    fn sketch_clamps_outliers_at_the_top_bucket() {
        let mut s = QuantileSketch::new();
        s.observe(u64::MAX);
        s.observe(5);
        assert_eq!(s.count(), 2);
        let p99 = s.quantile(0.99).expect("some");
        assert!(p99 >= MAX_VALUE.next_power_of_two() / 2, "outlier lands at the top: {p99}");
    }

    fn cfg() -> SloConfig {
        SloConfig {
            latency_threshold_us: 100,
            latency_target: 0.99,
            availability_target: 0.99,
            interval_nanos: 1_000,
            intervals: 4,
            fast_intervals: 1,
            fast_burn: 6.0,
            slow_burn: 3.0,
            min_events: 10,
        }
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let m = SloMonitor::new(cfg());
        for i in 0..1000u64 {
            let alerts = m.observe(TenantTag::new("t0"), i * 10, 50, RequestOutcome::Served);
            assert!(alerts.is_empty(), "healthy request {i} alerted");
        }
        let stats = m.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].alerts_fired, 0);
        assert!(stats[0].latency_slow_burn < 1e-12);
        assert!(stats[0].p99_us <= 50);
    }

    #[test]
    fn sustained_breach_fires_once_until_recovery() {
        let m = SloMonitor::new(cfg());
        // Healthy base load in interval 0.
        for i in 0..50u64 {
            m.observe(TenantTag::new("t0"), i, 10, RequestOutcome::Served);
        }
        // Regression: every request blows the threshold.
        let mut fired = 0;
        for i in 0..200u64 {
            fired += m.observe(TenantTag::new("t0"), 500 + i, 5_000, RequestOutcome::Served).len();
        }
        assert_eq!(fired, 1, "breach fires exactly once while it persists");
        let stats = m.stats();
        assert_eq!(stats[0].alerts_fired, 1);
        assert!(stats[0].latency_fast_burn >= 6.0);

        // Recovery: healthy traffic long enough to clear every window (the
        // rotation clears old intervals), then a second breach re-fires.
        for i in 0..400u64 {
            m.observe(TenantTag::new("t0"), 10_000 + i * 20, 10, RequestOutcome::Served);
        }
        let mut refired = 0;
        for i in 0..200u64 {
            refired += m.observe(TenantTag::new("t0"), 30_000 + i, 5_000, RequestOutcome::Served).len();
        }
        assert_eq!(refired, 1, "a fresh breach after recovery re-fires");
    }

    #[test]
    fn shed_requests_burn_the_availability_budget() {
        let m = SloMonitor::new(cfg());
        let mut objectives = Vec::new();
        for i in 0..100u64 {
            for a in m.observe(TenantTag::new("t0"), i, 10, RequestOutcome::Shed) {
                objectives.push(a.objective);
            }
        }
        assert!(
            objectives.contains(&Objective::Availability),
            "shedding must page availability: {objectives:?}"
        );
    }

    #[test]
    fn tenants_are_isolated() {
        let m = SloMonitor::new(cfg());
        for i in 0..200u64 {
            m.observe(TenantTag::new("bad"), i, 5_000, RequestOutcome::Served);
            let alerts = m.observe(TenantTag::new("good"), i, 10, RequestOutcome::Served);
            assert!(alerts.is_empty(), "healthy tenant paged by a noisy one");
        }
        let stats = m.stats();
        let bad = stats.iter().find(|s| s.tenant == "bad").expect("bad");
        let good = stats.iter().find(|s| s.tenant == "good").expect("good");
        assert!(bad.alerts_fired >= 1);
        assert_eq!(good.alerts_fired, 0);
    }

    #[test]
    fn window_rotation_forgets_old_intervals() {
        let m = SloMonitor::new(cfg());
        for i in 0..100u64 {
            m.observe(TenantTag::new("t0"), i, 5_000, RequestOutcome::Served);
        }
        // Jump far ahead: all four intervals rotate out.
        m.observe(TenantTag::new("t0"), 1_000_000, 10, RequestOutcome::Served);
        let stats = m.stats();
        assert_eq!(stats[0].requests, 1, "old intervals cleared");
        assert!(stats[0].latency_slow_burn < 1e-12);
    }
}
