//! Bounded lock-free flight recorder.
//!
//! A fixed-size ring of per-query event records, written on the serving hot
//! path and dumped on demand or when an anomaly detector fires. The design
//! constraints, in order:
//!
//! 1. **The record path allocates nothing and reads no clock.** Timestamps
//!    and durations arrive as fields of the caller-built [`QueryRecord`]
//!    (taken from an injected `av_trace::Clock`); tenant names are
//!    truncated into a fixed-width [`TenantTag`] before the call. The
//!    `hot-path-alloc` lint rule in `av-analyze` enforces this over the
//!    marked region below.
//! 2. **No locks, no `unsafe`.** Every slot is a bank of `AtomicU64` words
//!    guarded by a per-slot sequence word (a safe-Rust seqlock). All
//!    accesses use `SeqCst`, so the torn-read argument is a statement
//!    about one total order of operations — see [`FlightRecorder::dump`].
//! 3. **Readers never block writers.** A dump walks the ring, re-checking
//!    each slot's sequence word around the copy and skipping slots that a
//!    writer touched mid-read.
//!
//! Slot protocol: a writer claims a global sequence number `seq` from
//! `next` and owns slot `seq % capacity`. It waits for the slot's previous
//! lap to finish (state == `done(seq - capacity)`), publishes
//! `state = writing(seq)` (odd), stores the record words, then publishes
//! `state = done(seq)` (even). Writers of *different* slots never interact;
//! writers of the same slot are serialized by the lap handoff, which only
//! contends when a full ring lap completes while a record is mid-write.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{
    AtomicU64, Ordering::Acquire, Ordering::Relaxed, Ordering::Release, Ordering::SeqCst,
};

/// Bytes of tenant name preserved per record (longer names truncate).
pub const TENANT_TAG_BYTES: usize = 16;

/// Fixed-width tenant label: the first [`TENANT_TAG_BYTES`] bytes of the
/// tenant name, zero-padded. Building one copies bytes and never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TenantTag([u8; TENANT_TAG_BYTES]);

impl TenantTag {
    pub fn new(tenant: &str) -> TenantTag {
        let mut tag = [0u8; TENANT_TAG_BYTES];
        let src = tenant.as_bytes();
        let n = src.len().min(TENANT_TAG_BYTES);
        tag[..n].copy_from_slice(&src[..n]);
        TenantTag(tag)
    }

    /// The stored prefix, decoded (invalid UTF-8 from a truncated
    /// multi-byte character is dropped).
    pub fn decode(&self) -> String {
        let end = self.0.iter().position(|&b| b == 0).unwrap_or(TENANT_TAG_BYTES);
        String::from_utf8_lossy(&self.0[..end])
            .trim_end_matches('\u{FFFD}')
            .to_string()
    }

    fn to_words(self) -> [u64; 2] {
        let mut lo = [0u8; 8];
        let mut hi = [0u8; 8];
        lo.copy_from_slice(&self.0[..8]);
        hi.copy_from_slice(&self.0[8..]);
        [u64::from_le_bytes(lo), u64::from_le_bytes(hi)]
    }

    fn from_words(w: [u64; 2]) -> TenantTag {
        let mut tag = [0u8; TENANT_TAG_BYTES];
        tag[..8].copy_from_slice(&w[0].to_le_bytes());
        tag[8..].copy_from_slice(&w[1].to_le_bytes());
        TenantTag(tag)
    }
}

/// How one served request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordStatus {
    /// Executed and returned a result.
    Ok,
    /// Turned away by admission control (queue full).
    Shed,
    /// Execution failed.
    Error,
}

impl RecordStatus {
    fn to_code(self) -> u64 {
        match self {
            RecordStatus::Ok => 0,
            RecordStatus::Shed => 1,
            RecordStatus::Error => 2,
        }
    }

    fn from_code(code: u64) -> RecordStatus {
        match code {
            1 => RecordStatus::Shed,
            2 => RecordStatus::Error,
            _ => RecordStatus::Ok,
        }
    }
}

/// One served query's structured event record. `Copy`, fixed width, built
/// entirely from values the serving path already holds — constructing and
/// recording one performs no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    pub tenant: TenantTag,
    /// Fingerprint of the query as submitted (pre-routing).
    pub plan_fp: u64,
    /// Canonical fingerprint of the view the query routed through
    /// (0 when no view fired).
    pub view_fp: u64,
    /// Deployment epoch the request executed against.
    pub epoch: u64,
    pub status: RecordStatus,
    /// Subtree replacements made by view routing (the route decision).
    pub route_hits: u32,
    /// Result-cache shard that served the lookup.
    pub cache_shard: u32,
    pub cache_hit: bool,
    /// Time spent waiting in admission control.
    pub admit_wait_nanos: u64,
    /// Route + execute time (excludes admission wait).
    pub exec_nanos: u64,
    pub rows: u64,
    pub bytes: u64,
    /// Estimator-predicted cost of the routed plan (NaN when the published
    /// deployment carries no estimate for this query).
    pub est_cost: f64,
    /// Measured cost actually paid.
    pub meas_cost: f64,
}

impl QueryRecord {
    /// True when the deployment carried an estimate for this query.
    pub fn has_estimate(&self) -> bool {
        !self.est_cost.is_nan()
    }
}

/// Words per slot: the packed [`QueryRecord`] plus its global sequence.
const WORDS: usize = 13;

// hot-path: begin — packing runs once per recorded query, inside the
// writer's critical window; it must stay allocation-free.

fn pack(seq: u64, r: &QueryRecord) -> [u64; WORDS] {
    let tenant = r.tenant.to_words();
    let flags = r.status.to_code()
        | ((r.cache_hit as u64) << 8)
        | ((r.route_hits as u64) << 16)
        | ((r.cache_shard as u64) << 40);
    [
        seq,
        tenant[0],
        tenant[1],
        r.plan_fp,
        r.view_fp,
        r.epoch,
        flags,
        r.admit_wait_nanos,
        r.exec_nanos,
        r.rows,
        r.bytes,
        r.est_cost.to_bits(),
        r.meas_cost.to_bits(),
    ]
}

// hot-path: end

fn unpack(w: &[u64; WORDS]) -> (u64, QueryRecord) {
    let flags = w[6];
    (
        w[0],
        QueryRecord {
            tenant: TenantTag::from_words([w[1], w[2]]),
            plan_fp: w[3],
            view_fp: w[4],
            epoch: w[5],
            status: RecordStatus::from_code(flags & 0xFF),
            cache_hit: (flags >> 8) & 1 == 1,
            route_hits: ((flags >> 16) & 0xFF_FFFF) as u32,
            cache_shard: (flags >> 40) as u32,
            admit_wait_nanos: w[7],
            exec_nanos: w[8],
            rows: w[9],
            bytes: w[10],
            est_cost: f64::from_bits(w[11]),
            meas_cost: f64::from_bits(w[12]),
        },
    )
}

/// Per-slot state encoding. 0 = never written; `writing(seq)` (odd) while a
/// record is being stored; `done(seq)` (even, nonzero) once stable.
fn writing(seq: u64) -> u64 {
    seq * 2 + 1
}

fn done(seq: u64) -> u64 {
    seq * 2 + 2
}

struct Slot {
    state: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One decoded flight-recorder entry, as exported by a dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Global sequence number (record order across all threads).
    pub seq: u64,
    pub tenant: String,
    pub plan_fp: u64,
    pub view_fp: u64,
    pub epoch: u64,
    pub status: RecordStatus,
    pub route_hits: u32,
    pub cache_shard: u32,
    pub cache_hit: bool,
    pub admit_wait_nanos: u64,
    pub exec_nanos: u64,
    pub rows: u64,
    pub bytes: u64,
    /// `None` when the deployment carried no estimate (NaN in the record).
    pub est_cost: Option<f64>,
    pub meas_cost: f64,
}

/// A captured ring snapshot: why it was taken and the records, in global
/// sequence order (oldest surviving record first).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightDump {
    /// What triggered the dump (`"on-demand"`, an anomaly kind, …).
    pub reason: String,
    /// Global sequence counter at capture time.
    pub seq_at: u64,
    pub records: Vec<FlightRecord>,
}

/// The bounded lock-free ring. Construction and dumping allocate; the
/// record path does not.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` records (minimum 2).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(2);
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            next: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Global sequence counter: total records ever claimed.
    pub fn sequence(&self) -> u64 {
        self.next.load(SeqCst)
    }

    /// Records currently resident (capacity once the ring has wrapped).
    pub fn len(&self) -> usize {
        (self.sequence() as usize).min(self.capacity())
    }

    pub fn is_empty(&self) -> bool {
        self.sequence() == 0
    }

    // hot-path: begin — the record path must stay allocation-free,
    // lock-free and wall-clock-free (enforced by av-analyze's
    // `hot-path-alloc` rule; timestamps arrive inside `rec`).

    /// Record one query. Returns the record's global sequence number.
    /// Wait-free against readers; a writer only spins when a full ring lap
    /// completed while the slot's previous writer was still mid-record.
    pub fn record(&self, rec: &QueryRecord) -> u64 {
        let seq = self.next.fetch_add(1, SeqCst);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(seq % cap) as usize];
        let prev = if seq >= cap { done(seq - cap) } else { 0 };
        // Lap handoff: sequence numbers are unique, so this writer is the
        // *only* thread waiting for `prev` and the only one that will ever
        // transition the state away from it — an acquire-load spin plus a
        // plain store claims the slot without an atomic RMW. The wait is
        // bounded by one in-flight record, but that record's writer may be
        // *descheduled* mid-record on an oversubscribed host; spinning
        // through its absence burns whole timeslices the stalled writer
        // needs, so after a short spin the wait yields the CPU instead.
        let mut spins = 0u32;
        while slot.state.load(Acquire) != prev {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        slot.state.store(writing(seq), Relaxed);
        let words = pack(seq, rec);
        // Release suffices for the payload *and* the `done` store: the
        // acquire spin above orders them after the previous lap, each
        // payload release-store keeps the odd `writing` store ahead of it,
        // and the `done` release-store synchronizes with any reader whose
        // acquire load of the state observes it, carrying the payload
        // along. On x86 every store here is a plain mov — the record
        // path's only RMW is the sequence claim.
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Release);
        }
        slot.state.store(done(seq), Release);
        seq
    }

    // hot-path: end

    /// Copy every stable record out of the ring, oldest first.
    ///
    /// Torn-read freedom: the copy is accepted only if the slot's state word
    /// reads the same *even* value before and after it. The writer's odd
    /// `writing(seq)` store precedes its payload release-stores, which
    /// keep it ahead of them in visibility; the `done(seq)` release-store
    /// then synchronizes with any reader whose (acquire-or-stronger) state
    /// load observes it, carrying the payload. The reader's payload loads
    /// are themselves `SeqCst`, so if one observes a value released by a
    /// newer writer, that writer's odd store happens-before the reader's
    /// second state load — which then cannot re-read the old even value,
    /// and the copy is rejected. Same-slot writers are serialized by the
    /// lap handoff, so two accepted even reads of one value bracket no
    /// writer activity.
    pub fn dump(&self, reason: &str) -> FlightDump {
        let seq_at = self.sequence();
        let mut records: Vec<FlightRecord> = Vec::with_capacity(self.len());
        let mut words = [0u64; WORDS];
        for slot in &self.slots {
            // A handful of retries rides out a concurrent writer; a slot
            // overwritten faster than we can read it is simply skipped —
            // dumps are best-effort snapshots, not barriers.
            for _ in 0..8 {
                let before = slot.state.load(SeqCst);
                if before == 0 {
                    break; // never written
                }
                if before % 2 == 1 {
                    std::hint::spin_loop();
                    continue; // mid-write; retry
                }
                for (out, w) in words.iter_mut().zip(&slot.words) {
                    *out = w.load(SeqCst);
                }
                if slot.state.load(SeqCst) == before {
                    let (seq, rec) = unpack(&words);
                    records.push(FlightRecord {
                        seq,
                        tenant: rec.tenant.decode(),
                        plan_fp: rec.plan_fp,
                        view_fp: rec.view_fp,
                        epoch: rec.epoch,
                        status: rec.status,
                        route_hits: rec.route_hits,
                        cache_shard: rec.cache_shard,
                        cache_hit: rec.cache_hit,
                        admit_wait_nanos: rec.admit_wait_nanos,
                        exec_nanos: rec.exec_nanos,
                        rows: rec.rows,
                        bytes: rec.bytes,
                        est_cost: if rec.est_cost.is_nan() {
                            None
                        } else {
                            Some(rec.est_cost)
                        },
                        meas_cost: rec.meas_cost,
                    });
                    break;
                }
            }
        }
        records.sort_by_key(|r| r.seq);
        FlightDump {
            reason: reason.to_string(),
            seq_at,
            records,
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("sequence", &self.sequence())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> QueryRecord {
        QueryRecord {
            tenant: TenantTag::new("tenant0"),
            plan_fp: i,
            view_fp: !i,
            epoch: 3,
            status: RecordStatus::Ok,
            route_hits: 1,
            cache_shard: (i % 16) as u32,
            cache_hit: i.is_multiple_of(2),
            admit_wait_nanos: 10 * i,
            exec_nanos: 1000 + i,
            rows: 7 * i,
            bytes: 31 * i,
            est_cost: i as f64 * 0.5,
            meas_cost: i as f64 * 0.75,
        }
    }

    #[test]
    fn empty_ring_dumps_nothing() {
        let r = FlightRecorder::new(8);
        assert!(r.is_empty());
        let d = r.dump("on-demand");
        assert_eq!(d.seq_at, 0);
        assert!(d.records.is_empty());
    }

    #[test]
    fn records_roundtrip_through_pack() {
        let r = FlightRecorder::new(8);
        for i in 0..5 {
            assert_eq!(r.record(&rec(i)), i);
        }
        let d = r.dump("on-demand");
        assert_eq!(d.records.len(), 5);
        for (i, fr) in d.records.iter().enumerate() {
            let want = rec(i as u64);
            assert_eq!(fr.seq, i as u64);
            assert_eq!(fr.tenant, "tenant0");
            assert_eq!(fr.plan_fp, want.plan_fp);
            assert_eq!(fr.view_fp, want.view_fp);
            assert_eq!(fr.epoch, want.epoch);
            assert_eq!(fr.status, want.status);
            assert_eq!(fr.route_hits, want.route_hits);
            assert_eq!(fr.cache_shard, want.cache_shard);
            assert_eq!(fr.cache_hit, want.cache_hit);
            assert_eq!(fr.admit_wait_nanos, want.admit_wait_nanos);
            assert_eq!(fr.exec_nanos, want.exec_nanos);
            assert_eq!(fr.rows, want.rows);
            assert_eq!(fr.bytes, want.bytes);
            assert_eq!(fr.est_cost, Some(want.est_cost));
            assert_eq!(fr.meas_cost, want.meas_cost);
        }
    }

    #[test]
    fn wraparound_keeps_the_newest_records_in_order() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(&rec(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.sequence(), 10);
        let d = r.dump("on-demand");
        let seqs: Vec<u64> = d.records.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "last lap survives, oldest first");
        for fr in &d.records {
            assert_eq!(fr.plan_fp, fr.seq, "slot holds its latest lap's record");
        }
    }

    #[test]
    fn missing_estimate_is_nan_in_and_none_out() {
        let r = FlightRecorder::new(4);
        let mut q = rec(1);
        q.est_cost = f64::NAN;
        assert!(!q.has_estimate());
        r.record(&q);
        let d = r.dump("on-demand");
        assert_eq!(d.records[0].est_cost, None);
    }

    #[test]
    fn tenant_tags_truncate_and_decode() {
        assert_eq!(TenantTag::new("acme").decode(), "acme");
        assert_eq!(TenantTag::new("").decode(), "");
        let long = "tenant-with-a-very-long-name";
        assert_eq!(TenantTag::new(long).decode(), &long[..TENANT_TAG_BYTES]);
        let tag = TenantTag::new("round-trip");
        assert_eq!(TenantTag::from_words(tag.to_words()), tag);
    }

    #[test]
    fn dump_is_serializable() {
        let r = FlightRecorder::new(4);
        r.record(&rec(2));
        let text = serde_json::to_string_pretty(&r.dump("unit-test")).expect("serializes");
        assert!(text.contains("\"reason\""), "{text}");
        assert!(text.contains("unit-test"), "{text}");
    }
}
