//! # av-obs — production telemetry for the serving layer
//!
//! Always-on observability wired through `av-serve`, `av-online` and
//! `av-engine`, built from four pieces (DESIGN.md §Observability):
//!
//! - [`FlightRecorder`]: a bounded, lock-free ring of per-query structured
//!   event records (tenant, plan fingerprint, deployment epoch, route
//!   decision, cache shard and hit/miss, admission wait, exec time,
//!   rows/bytes, cost estimate vs. measurement). Dump-on-demand and
//!   dump-on-anomaly.
//! - [`SloMonitor`]: per-tenant mergeable quantile sketches over sliding
//!   windows plus multi-window error-budget burn-rate alerting.
//! - [`ResidualStore`]: the estimator-residual stream — every routed query
//!   appends (estimated, measured, plan fingerprint, view id), with
//!   per-view and per-operator q-error aggregates.
//! - [`export`]: Prometheus text exposition for all of the above plus the
//!   shared `av_trace::Metrics` registry.
//!
//! The [`Obs`] façade ties them together: `av-serve` calls
//! [`Obs::observe_query`] once per request, and deterministic anomaly
//! detectors ([`AnomalyDetector`]) turn latency regressions, cache-hit
//! collapses and admission saturation into stored flight-recorder dumps.
//!
//! Everything here is fed time exclusively through values the caller read
//! from its injected [`av_trace::Clock`] — this crate never touches the
//! wall clock, so replayed workloads reproduce alerts and dumps exactly.

#![forbid(unsafe_code)]

pub mod anomaly;
pub mod export;
pub mod recorder;
pub mod residual;
pub mod slo;

pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalyKind};
pub use recorder::{
    FlightDump, FlightRecord, FlightRecorder, QueryRecord, RecordStatus, TenantTag,
};
pub use residual::{ErrorAggregate, Residual, ResidualStore, ResidualSummary};
pub use slo::{
    Objective, QuantileSketch, RequestOutcome, SloAlert, SloConfig, SloMonitor, SloState,
    TenantSloStats,
};

use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Configuration for the whole telemetry layer.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch. When off, [`Obs::observe_query`] is a no-op — the
    /// baseline the recorder-overhead benchmark compares against.
    pub enabled: bool,
    /// Flight-recorder ring capacity (records).
    pub recorder_capacity: usize,
    pub slo: SloConfig,
    /// Raw residual ring capacity (aggregates are unaffected).
    pub residual_capacity: usize,
    pub anomaly: AnomalyConfig,
    /// Stored triggered dumps. First-capture semantics: the store keeps at
    /// most one dump per distinct trigger reason and at most `max_dumps`
    /// overall; further triggers are *suppressed* (counted, but the
    /// expensive ring capture is skipped entirely) until an operator
    /// drains the store with [`Obs::take_dumps`]. The first capture of an
    /// incident is the forensically interesting one, and a detector that
    /// keeps re-firing through a sustained incident must not be allowed
    /// to tax every serving thread with ring copies.
    pub max_dumps: usize,
    /// SLO alert history bound.
    pub max_alerts: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            recorder_capacity: 4096,
            slo: SloConfig::default(),
            residual_capacity: 4096,
            anomaly: AnomalyConfig::default(),
            max_dumps: 8,
            max_alerts: 256,
        }
    }
}

impl ObsConfig {
    /// A configuration with telemetry fully off (benchmark baseline).
    pub fn disabled() -> ObsConfig {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }
}

/// What one [`Obs::observe_query`] call produced.
#[derive(Debug, Clone, Default)]
pub struct ObsOutcome {
    /// Flight-recorder sequence number assigned to this query.
    pub seq: u64,
    /// Burn-rate alerts that fired on this observation.
    pub alerts: Vec<SloAlert>,
    /// Anomaly detectors that fired on this observation (each also stored
    /// a flight-recorder dump).
    pub anomalies: Vec<AnomalyKind>,
}

/// Point-in-time snapshot of the entire telemetry layer, for the
/// `serve stats` command and JSON artifacts.
#[derive(Debug, Clone, Serialize)]
pub struct ObsStats {
    pub enabled: bool,
    /// Total queries recorded since startup.
    pub recorded: u64,
    pub slo: Vec<TenantSloStats>,
    pub residuals: ResidualSummary,
    pub alerts: Vec<SloAlert>,
    /// Reasons and sizes of stored triggered dumps (newest last).
    pub dumps: Vec<DumpInfo>,
    /// Triggers whose capture was skipped — the store was full, or it
    /// already held a dump for the same reason (drain with `take_dumps`
    /// to re-arm).
    pub dumps_suppressed: u64,
}

/// Summary line for one stored dump.
#[derive(Debug, Clone, Serialize)]
pub struct DumpInfo {
    pub reason: String,
    pub seq_at: u64,
    pub records: usize,
}

/// SLO windows and anomaly detector behind one shared lock: the request
/// path pays a single mutex acquisition for both.
#[derive(Debug)]
struct HotState {
    slo: SloState,
    anomaly: AnomalyDetector,
}

/// The telemetry façade owned by a server.
#[derive(Debug)]
pub struct Obs {
    config: ObsConfig,
    recorder: FlightRecorder,
    hot: Mutex<HotState>,
    residuals: ResidualStore,
    dumps: Mutex<VecDeque<FlightDump>>,
    dumps_suppressed: std::sync::atomic::AtomicU64,
    alerts: Mutex<VecDeque<SloAlert>>,
}

impl Obs {
    pub fn new(config: ObsConfig) -> Obs {
        Obs {
            recorder: FlightRecorder::new(config.recorder_capacity),
            hot: Mutex::new(HotState {
                slo: SloState::new(config.slo.clone()),
                anomaly: AnomalyDetector::new(config.anomaly.clone()),
            }),
            residuals: ResidualStore::new(config.residual_capacity),
            dumps: Mutex::new(VecDeque::new()),
            dumps_suppressed: std::sync::atomic::AtomicU64::new(0),
            alerts: Mutex::new(VecDeque::new()),
            config,
        }
    }

    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Snapshot of every tenant's SLO window.
    pub fn slo_stats(&self) -> Vec<TenantSloStats> {
        self.hot.lock().expect("obs hot state poisoned").slo.stats()
    }

    pub fn residuals(&self) -> &ResidualStore {
        &self.residuals
    }

    /// Feed one finished (or shed/failed) request through every component:
    /// flight recorder, SLO windows, residual stream, anomaly detectors.
    /// `now_nanos` is the caller's injected-clock reading at completion;
    /// `root_op` is the plan's root operator name for residual aggregation.
    pub fn observe_query(&self, now_nanos: u64, rec: &QueryRecord, root_op: &'static str) -> ObsOutcome {
        if !self.config.enabled {
            return ObsOutcome::default();
        }
        let seq = self.recorder.record(rec);

        let outcome = match rec.status {
            RecordStatus::Ok => RequestOutcome::Served,
            RecordStatus::Shed => RequestOutcome::Shed,
            RecordStatus::Error => RequestOutcome::Failed,
        };
        let latency_us = (rec.admit_wait_nanos + rec.exec_nanos) / 1_000;
        let (alerts, anomalies) = {
            let mut hot = self.hot.lock().expect("obs hot state poisoned");
            let alerts = hot.slo.observe(rec.tenant, now_nanos, latency_us, outcome);
            let anomalies = if outcome == RequestOutcome::Served {
                hot.anomaly
                    .observe(rec.exec_nanos, rec.admit_wait_nanos, rec.cache_hit)
            } else {
                Vec::new()
            };
            (alerts, anomalies)
        };
        if !alerts.is_empty() {
            let mut history = self.alerts.lock().expect("obs alerts poisoned");
            for a in &alerts {
                if history.len() == self.config.max_alerts {
                    history.pop_front();
                }
                history.push_back(a.clone());
            }
        }

        if rec.status == RecordStatus::Ok && rec.has_estimate() {
            self.residuals.record(Residual {
                plan_fp: rec.plan_fp,
                view_fp: rec.view_fp,
                root_op,
                estimated: rec.est_cost,
                measured: rec.meas_cost,
            });
        }

        // Every trigger — burn-rate alert or anomaly — freezes the ring as
        // a stored dump so the offending queries are preserved even after
        // the ring wraps.
        for a in &alerts {
            let reason = match a.objective {
                Objective::LatencyP99 => "slo_latency_burn",
                Objective::Availability => "slo_availability_burn",
            };
            self.store_dump(reason);
        }
        for k in &anomalies {
            self.store_dump(k.as_str());
        }

        ObsOutcome {
            seq,
            alerts,
            anomalies,
        }
    }

    /// Dump-on-demand: snapshot the ring without storing the dump.
    pub fn dump_now(&self, reason: &str) -> FlightDump {
        self.recorder.dump(reason)
    }

    /// First capture per distinct reason, first-K overall: the checks run
    /// *before* the ring copy, so a detector that keeps re-firing through
    /// one sustained incident costs one atomic increment per suppressed
    /// fire instead of a full ring capture on the serving thread. Eight
    /// near-identical snapshots of the same incident are forensically
    /// redundant; the first one is the interesting one.
    fn store_dump(&self, reason: &str) {
        let full = |dumps: &VecDeque<FlightDump>| {
            dumps.len() >= self.config.max_dumps || dumps.iter().any(|d| d.reason == reason)
        };
        {
            let dumps = self.dumps.lock().expect("obs dumps poisoned");
            if full(&dumps) {
                drop(dumps);
                self.dumps_suppressed
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return;
            }
        }
        let dump = self.recorder.dump(reason);
        let mut dumps = self.dumps.lock().expect("obs dumps poisoned");
        if !full(&dumps) {
            dumps.push_back(dump);
        } else {
            self.dumps_suppressed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Stored (triggered) dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps
            .lock()
            .expect("obs dumps poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Drain the stored dumps (oldest first), re-arming dump-on-anomaly:
    /// after a drain the next `max_dumps` triggers capture again.
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        self.dumps
            .lock()
            .expect("obs dumps poisoned")
            .drain(..)
            .collect()
    }

    /// Triggers suppressed because the dump store was full.
    pub fn dumps_suppressed(&self) -> u64 {
        self.dumps_suppressed
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Alert history, oldest first.
    pub fn alerts(&self) -> Vec<SloAlert> {
        self.alerts
            .lock()
            .expect("obs alerts poisoned")
            .iter()
            .cloned()
            .collect()
    }

    pub fn stats(&self) -> ObsStats {
        let dumps = self.dumps.lock().expect("obs dumps poisoned");
        ObsStats {
            enabled: self.config.enabled,
            recorded: self.recorder.sequence(),
            slo: self.slo_stats(),
            residuals: self.residuals.summary(),
            alerts: self.alerts(),
            dumps: dumps
                .iter()
                .map(|d| DumpInfo {
                    reason: d.reason.clone(),
                    seq_at: d.seq_at,
                    records: d.records.len(),
                })
                .collect(),
            dumps_suppressed: self.dumps_suppressed(),
        }
    }

    /// Full Prometheus exposition: the shared metrics registry plus SLO
    /// and residual series.
    pub fn prometheus(&self, snapshot: &av_trace::MetricsSnapshot) -> String {
        let mut out = export::prometheus_text(snapshot);
        out.push_str(&export::slo_text(&self.slo_stats()));
        out.push_str(&export::residual_text(&self.residuals.summary()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tenant: &str, exec_nanos: u64, status: RecordStatus) -> QueryRecord {
        QueryRecord {
            tenant: TenantTag::new(tenant),
            plan_fp: 0xfeed,
            view_fp: 0xbeef,
            epoch: 1,
            status,
            route_hits: 1,
            cache_shard: 0,
            cache_hit: true,
            admit_wait_nanos: 0,
            exec_nanos,
            rows: 10,
            bytes: 100,
            est_cost: 2.0,
            meas_cost: 1.0,
        }
    }

    #[test]
    fn disabled_obs_is_a_no_op() {
        let obs = Obs::new(ObsConfig::disabled());
        let out = obs.observe_query(0, &record("t", 1_000, RecordStatus::Ok), "Join");
        assert_eq!(out.seq, 0);
        assert!(out.alerts.is_empty() && out.anomalies.is_empty());
        let stats = obs.stats();
        assert!(!stats.enabled);
        assert_eq!(stats.recorded, 0);
        assert_eq!(stats.residuals.recorded, 0);
        assert!(stats.slo.is_empty());
    }

    #[test]
    fn observe_query_feeds_every_component() {
        let obs = Obs::new(ObsConfig::default());
        for i in 0..10u64 {
            obs.observe_query(i * 1_000, &record("acme", 5_000, RecordStatus::Ok), "Join");
        }
        let stats = obs.stats();
        assert_eq!(stats.recorded, 10);
        assert_eq!(stats.residuals.recorded, 10);
        assert_eq!(stats.slo.len(), 1);
        assert_eq!(stats.slo[0].tenant, "acme");
        assert_eq!(stats.slo[0].requests, 10);
        let dump = obs.dump_now("manual");
        assert_eq!(dump.records.len(), 10);
        assert!(obs.dumps().is_empty(), "on-demand dumps are not stored");
    }

    #[test]
    fn latency_regression_stores_a_dump() {
        let mut config = ObsConfig::default();
        config.anomaly.recent = 8;
        config.anomaly.window = 32;
        config.anomaly.min_samples = 8;
        let obs = Obs::new(config);
        for i in 0..100u64 {
            obs.observe_query(i, &record("t", 1_000, RecordStatus::Ok), "Scan");
        }
        let mut fired = Vec::new();
        for i in 0..40u64 {
            let out = obs.observe_query(100 + i, &record("t", 60_000, RecordStatus::Ok), "Scan");
            fired.extend(out.anomalies);
        }
        assert!(fired.contains(&AnomalyKind::LatencyRegression), "{fired:?}");
        let dumps = obs.dumps();
        assert!(!dumps.is_empty());
        assert_eq!(dumps[0].reason, "latency_regression");
        assert!(dumps[0].records.iter().any(|r| r.exec_nanos == 60_000));
        let stats = obs.stats();
        assert_eq!(stats.dumps.len(), dumps.len());
    }

    #[test]
    fn stored_dumps_keep_the_first_k_and_drain_to_rearm() {
        let config = ObsConfig {
            max_dumps: 2,
            ..ObsConfig::default()
        };
        let obs = Obs::new(config);
        obs.observe_query(0, &record("t", 1, RecordStatus::Ok), "Scan");
        for reason in ["a", "b", "c"] {
            obs.store_dump(reason);
        }
        // First-K: the earliest captures of an incident survive; the
        // overflow trigger is counted, not captured.
        let dumps = obs.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].reason, "a");
        assert_eq!(dumps[1].reason, "b");
        assert_eq!(obs.dumps_suppressed(), 1);
        assert_eq!(obs.stats().dumps_suppressed, 1);
        // Draining re-arms capture.
        let taken = obs.take_dumps();
        assert_eq!(taken.len(), 2);
        assert!(obs.dumps().is_empty());
        obs.store_dump("d");
        let dumps = obs.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "d");
        // A re-fire of an already-captured reason is suppressed even with
        // capacity to spare: one incident, one snapshot.
        obs.store_dump("d");
        assert_eq!(obs.dumps().len(), 1);
        assert_eq!(obs.dumps_suppressed(), 2);
    }

    #[test]
    fn shed_queries_skip_residuals_and_anomalies_but_hit_slo() {
        let obs = Obs::new(ObsConfig::default());
        for i in 0..20u64 {
            let out = obs.observe_query(i, &record("t", 0, RecordStatus::Shed), "Join");
            assert!(out.anomalies.is_empty());
        }
        let stats = obs.stats();
        assert_eq!(stats.residuals.recorded, 0, "shed queries have no residual");
        assert_eq!(stats.slo[0].shed_or_failed, 20);
        assert_eq!(stats.recorded, 20, "but they are flight-recorded");
    }

    #[test]
    fn stats_serialize_to_json() {
        let obs = Obs::new(ObsConfig::default());
        obs.observe_query(0, &record("t", 1_000, RecordStatus::Ok), "Join");
        let text = serde_json::to_string(&obs.stats()).expect("serialize");
        assert!(text.contains("\"recorded\""));
        assert!(text.contains("\"tenant\""));
    }
}
