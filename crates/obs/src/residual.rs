//! Estimator-residual telemetry: every routed query appends
//! `(estimated cost, measured cost, plan fingerprint, view id)` to a
//! bounded store, and per-view / per-operator error histograms accumulate
//! the estimator's **q-error** — `max(est/meas, meas/est)`, the standard
//! multiplicative accuracy measure for cost and cardinality models
//! (q = 1 is a perfect estimate; q = 2 means off by 2× in either
//! direction).
//!
//! The raw ring keeps the newest `capacity` residuals for offline
//! retraining dumps; the aggregates are unbounded in time but bounded in
//! cardinality (one entry per view / per root operator) and survive ring
//! eviction, so long-run drift is visible even when the raw samples have
//! rotated out.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// One (estimate, measurement) pair from a routed query.
///
/// Serialize-only: `root_op` is a `&'static str` borrowed from the plan
/// node's operator table, which keeps recording allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Residual {
    /// Fingerprint of the *original* (pre-rewrite) plan.
    pub plan_fp: u64,
    /// Fingerprint of the materialized view the query was routed through.
    pub view_fp: u64,
    /// Root operator of the plan, e.g. `"Aggregate"` or `"Join"`.
    pub root_op: &'static str,
    /// Model-estimated execution cost.
    pub estimated: f64,
    /// Measured execution cost (same unit as the estimate).
    pub measured: f64,
}

impl Residual {
    /// q-error of this pair; `None` when either side is non-positive or
    /// non-finite (the ratio is meaningless there — tracked separately as
    /// `degenerate` in the aggregates).
    pub fn q_error(&self) -> Option<f64> {
        if !(self.estimated.is_finite() && self.measured.is_finite()) {
            return None;
        }
        if self.estimated <= 0.0 || self.measured <= 0.0 {
            return None;
        }
        Some((self.estimated / self.measured).max(self.measured / self.estimated))
    }
}

/// Streaming q-error aggregate for one key (a view or an operator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorAggregate {
    pub samples: u64,
    /// Pairs whose q-error was undefined (zero/negative/non-finite cost).
    pub degenerate: u64,
    pub q_sum: f64,
    pub q_max: f64,
    /// Estimates that exceeded the measurement (the rest undershot).
    pub overestimates: u64,
    /// Log2 histogram of q-error: bucket `i` counts `q ∈ [2^i, 2^(i+1))`,
    /// the last bucket is open-ended. Bucket 0 is `[1, 2)` — near-perfect.
    pub q_log2: Vec<u64>,
}

/// Number of log2 q-error buckets: `[1,2) [2,4) ... [2^7, ∞)`.
pub const Q_LOG2_BUCKETS: usize = 8;

impl Default for ErrorAggregate {
    fn default() -> Self {
        ErrorAggregate {
            samples: 0,
            degenerate: 0,
            q_sum: 0.0,
            q_max: 0.0,
            overestimates: 0,
            q_log2: vec![0; Q_LOG2_BUCKETS],
        }
    }
}

impl ErrorAggregate {
    fn fold(&mut self, r: &Residual) {
        match r.q_error() {
            Some(q) => {
                self.samples += 1;
                self.q_sum += q;
                self.q_max = self.q_max.max(q);
                if r.estimated > r.measured {
                    self.overestimates += 1;
                }
                let bucket = (q.log2().floor() as usize).min(Q_LOG2_BUCKETS - 1);
                self.q_log2[bucket] += 1;
            }
            None => self.degenerate += 1,
        }
    }

    pub fn q_mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.q_sum / self.samples as f64
        }
    }
}

/// Serializable snapshot of the whole store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualSummary {
    /// Total residuals ever recorded (including ones rotated out).
    pub recorded: u64,
    /// Residuals currently held in the raw ring.
    pub retained: usize,
    pub per_view: Vec<(u64, ErrorAggregate)>,
    pub per_op: Vec<(String, ErrorAggregate)>,
}

#[derive(Debug, Default)]
struct Inner {
    ring: VecDeque<Residual>,
    recorded: u64,
    per_view: BTreeMap<u64, ErrorAggregate>,
    per_op: BTreeMap<&'static str, ErrorAggregate>,
}

/// Bounded residual store. One mutex; record is O(1) amortized.
#[derive(Debug)]
pub struct ResidualStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResidualStore {
    pub fn new(capacity: usize) -> ResidualStore {
        ResidualStore {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn record(&self, r: Residual) {
        let mut inner = self.inner.lock().expect("residual store poisoned");
        inner.recorded += 1;
        inner.per_view.entry(r.view_fp).or_default().fold(&r);
        inner.per_op.entry(r.root_op).or_default().fold(&r);
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(r);
    }

    /// Newest-first copy of the raw ring (for retraining dumps).
    pub fn recent(&self, n: usize) -> Vec<Residual> {
        let inner = self.inner.lock().expect("residual store poisoned");
        inner.ring.iter().rev().take(n).copied().collect()
    }

    pub fn summary(&self) -> ResidualSummary {
        let inner = self.inner.lock().expect("residual store poisoned");
        ResidualSummary {
            recorded: inner.recorded,
            retained: inner.ring.len(),
            per_view: inner
                .per_view
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            per_op: inner
                .per_op
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(plan: u64, view: u64, op: &'static str, est: f64, meas: f64) -> Residual {
        Residual {
            plan_fp: plan,
            view_fp: view,
            root_op: op,
            estimated: est,
            measured: meas,
        }
    }

    #[test]
    fn q_error_is_symmetric_and_guards_degenerates() {
        assert_eq!(res(1, 1, "Join", 10.0, 5.0).q_error(), Some(2.0));
        assert_eq!(res(1, 1, "Join", 5.0, 10.0).q_error(), Some(2.0));
        assert_eq!(res(1, 1, "Join", 7.0, 7.0).q_error(), Some(1.0));
        assert_eq!(res(1, 1, "Join", 0.0, 7.0).q_error(), None);
        assert_eq!(res(1, 1, "Join", f64::NAN, 7.0).q_error(), None);
        assert_eq!(res(1, 1, "Join", 7.0, -1.0).q_error(), None);
    }

    #[test]
    fn ring_is_bounded_but_aggregates_survive_eviction() {
        let store = ResidualStore::new(4);
        for i in 0..10u64 {
            store.record(res(i, 42, "Aggregate", 2.0, 1.0));
        }
        let s = store.summary();
        assert_eq!(s.recorded, 10);
        assert_eq!(s.retained, 4);
        let recent = store.recent(100);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].plan_fp, 9, "newest first");
        let (_, agg) = &s.per_view[0];
        assert_eq!(agg.samples, 10, "aggregate counts evicted samples too");
        assert_eq!(agg.q_mean(), 2.0);
        assert_eq!(agg.overestimates, 10);
        assert_eq!(agg.q_log2[1], 10, "q=2 lands in the [2,4) bucket");
    }

    #[test]
    fn per_view_and_per_op_keys_partition_the_stream() {
        let store = ResidualStore::new(16);
        store.record(res(1, 100, "Join", 3.0, 1.0));
        store.record(res(2, 100, "Aggregate", 1.0, 1.0));
        store.record(res(3, 200, "Join", 1.0, 8.0));
        let s = store.summary();
        assert_eq!(s.per_view.len(), 2);
        assert_eq!(s.per_op.len(), 2);
        let v100 = &s.per_view.iter().find(|(k, _)| *k == 100).expect("v100").1;
        assert_eq!(v100.samples, 2);
        let join = &s.per_op.iter().find(|(k, _)| k == "Join").expect("join").1;
        assert_eq!(join.samples, 2);
        assert_eq!(join.q_max, 8.0);
        assert_eq!(join.overestimates, 1);
        assert_eq!(join.q_log2[1], 1);
        assert_eq!(join.q_log2[3], 1, "q=8 lands in [8,16)");
    }

    #[test]
    fn summary_round_trips_through_json() {
        let store = ResidualStore::new(8);
        store.record(res(7, 9, "Scan", 1.5, 1.0));
        let s = store.summary();
        let text = serde_json::to_string(&s).expect("serialize");
        let back: ResidualSummary = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back.recorded, 1);
        assert_eq!(back.per_op[0].0, "Scan");
        assert_eq!(back.per_view[0].1, s.per_view[0].1);
    }
}
