//! Deterministic anomaly detectors over rolling baselines.
//!
//! Three production failure signatures, each compared against a rolling
//! baseline built from the queries *before* the recent window — so the
//! detectors adapt to gradual workload drift but still catch step changes:
//!
//! - **Latency regression**: mean exec time of the recent window exceeds
//!   `latency_factor ×` the baseline mean.
//! - **Cache-hit collapse**: recent hit rate falls below
//!   `hit_rate_drop ×` the baseline hit rate (only when the baseline was
//!   actually warm).
//! - **Admission saturation**: recent mean admission wait exceeds both an
//!   absolute floor and `admission_wait_factor ×` the baseline wait.
//!
//! Detection is pure arithmetic over two bounded deques with running sums
//! — no clocks, no randomness — so a replayed query stream produces the
//! same triggers at the same sequence numbers. Each detector has a
//! per-kind cooldown (in observations) so one sustained incident produces
//! one flight-recorder dump, not thousands.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    LatencyRegression,
    CacheHitCollapse,
    AdmissionSaturation,
}

impl AnomalyKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            AnomalyKind::LatencyRegression => "latency_regression",
            AnomalyKind::CacheHitCollapse => "cache_hit_collapse",
            AnomalyKind::AdmissionSaturation => "admission_saturation",
        }
    }
}

/// Detector thresholds. Defaults are deliberately loose: anomaly dumps
/// should mark incidents, not routine jitter.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Queries in the recent (foreground) window.
    pub recent: usize,
    /// Queries in the rolling baseline window.
    pub window: usize,
    /// Minimum observations in both windows before any detector arms.
    pub min_samples: usize,
    /// Recent mean exec must exceed `latency_factor × baseline mean`.
    pub latency_factor: f64,
    /// Recent hit rate below `hit_rate_drop × baseline hit rate` triggers;
    /// the baseline must itself be ≥ 0.1 to count as warm.
    pub hit_rate_drop: f64,
    /// Recent mean admission wait must exceed this many nanoseconds…
    pub admission_wait_floor_nanos: f64,
    /// …and `admission_wait_factor × baseline mean wait`.
    pub admission_wait_factor: f64,
    /// Observations a detector stays quiet after firing.
    pub cooldown: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            recent: 32,
            window: 256,
            min_samples: 16,
            latency_factor: 3.0,
            hit_rate_drop: 0.5,
            admission_wait_floor_nanos: 1_000_000.0,
            admission_wait_factor: 4.0,
            cooldown: 256,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    exec_nanos: u64,
    admit_wait_nanos: u64,
    cache_hit: bool,
}

/// Bounded deque with running sums, so window means are O(1).
#[derive(Debug)]
struct Window {
    cap: usize,
    items: VecDeque<Sample>,
    exec_sum: u64,
    wait_sum: u64,
    hits: u64,
}

impl Window {
    fn new(cap: usize) -> Window {
        Window {
            cap: cap.max(1),
            items: VecDeque::with_capacity(cap.max(1)),
            exec_sum: 0,
            wait_sum: 0,
            hits: 0,
        }
    }

    /// Push a sample; returns the sample displaced when full.
    fn push(&mut self, s: Sample) -> Option<Sample> {
        let evicted = if self.items.len() == self.cap {
            let old = self.items.pop_front().expect("non-empty at cap");
            self.exec_sum -= old.exec_nanos;
            self.wait_sum -= old.admit_wait_nanos;
            self.hits -= old.cache_hit as u64;
            Some(old)
        } else {
            None
        };
        self.exec_sum += s.exec_nanos;
        self.wait_sum += s.admit_wait_nanos;
        self.hits += s.cache_hit as u64;
        self.items.push_back(s);
        evicted
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// The detector. Not internally synchronized: callers (the [`crate::Obs`]
/// façade) own the locking.
#[derive(Debug)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    recent: Window,
    baseline: Window,
    seen: u64,
    /// `seen` count at which each detector may fire again, indexed by kind.
    armed_at: [u64; 3],
}

impl AnomalyDetector {
    pub fn new(config: AnomalyConfig) -> AnomalyDetector {
        let recent = Window::new(config.recent);
        let baseline = Window::new(config.window);
        AnomalyDetector {
            config,
            recent,
            baseline,
            seen: 0,
            armed_at: [0; 3],
        }
    }

    /// Feed one served query; returns every detector that fired on it.
    /// The common case returns an empty `Vec`, which does not allocate.
    pub fn observe(
        &mut self,
        exec_nanos: u64,
        admit_wait_nanos: u64,
        cache_hit: bool,
    ) -> Vec<AnomalyKind> {
        self.seen += 1;
        if let Some(old) = self.recent.push(Sample {
            exec_nanos,
            admit_wait_nanos,
            cache_hit,
        }) {
            self.baseline.push(old);
        }

        // Copy the scalar thresholds out so `try_fire` can borrow `self`
        // mutably below — no per-call config clone.
        let min_samples = self.config.min_samples;
        let latency_factor = self.config.latency_factor;
        let hit_rate_drop = self.config.hit_rate_drop;
        let wait_floor = self.config.admission_wait_floor_nanos;
        let wait_factor = self.config.admission_wait_factor;
        if self.recent.len() < min_samples || self.baseline.len() < min_samples {
            return Vec::new();
        }

        // Every comparison below is the cross-multiplied form of a
        // mean/rate inequality (`a/n > f·b/m` ⟺ `a·m > f·b·n`): the window
        // means are never materialized, so the healthy path runs on
        // multiplies alone — no f64 divisions.
        let rn = self.recent.len() as f64;
        let bn = self.baseline.len() as f64;
        let mut fired = Vec::new();
        let base_exec = self.baseline.exec_sum as f64;
        if base_exec > 0.0 && self.recent.exec_sum as f64 * bn > latency_factor * base_exec * rn {
            self.try_fire(AnomalyKind::LatencyRegression, &mut fired);
        }
        // Baseline warm ⟺ hit rate ≥ 0.1 ⟺ 10·hits ≥ len.
        let base_hits = self.baseline.hits as f64;
        if self.baseline.hits * 10 >= self.baseline.len() as u64
            && (self.recent.hits as f64) * bn < hit_rate_drop * base_hits * rn
        {
            self.try_fire(AnomalyKind::CacheHitCollapse, &mut fired);
        }
        // `mean.max(1.0) · len` is `max(sum, len)`, keeping the baseline
        // floor intact without dividing.
        let wait = self.recent.wait_sum as f64;
        if wait > wait_floor * rn
            && wait * bn > wait_factor * (self.baseline.wait_sum.max(self.baseline.len() as u64) as f64) * rn
        {
            self.try_fire(AnomalyKind::AdmissionSaturation, &mut fired);
        }
        fired
    }

    fn try_fire(&mut self, kind: AnomalyKind, out: &mut Vec<AnomalyKind>) {
        let slot = kind as usize;
        if self.seen >= self.armed_at[slot] {
            self.armed_at[slot] = self.seen + self.config.cooldown;
            out.push(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnomalyConfig {
        AnomalyConfig {
            recent: 8,
            window: 32,
            min_samples: 8,
            cooldown: 64,
            ..AnomalyConfig::default()
        }
    }

    fn warm(det: &mut AnomalyDetector, n: usize) {
        for _ in 0..n {
            let fired = det.observe(1_000, 0, true);
            assert!(fired.is_empty(), "steady traffic fired {fired:?}");
        }
    }

    #[test]
    fn steady_traffic_is_quiet() {
        let mut det = AnomalyDetector::new(cfg());
        warm(&mut det, 500);
    }

    #[test]
    fn latency_step_fires_once_per_cooldown() {
        let mut det = AnomalyDetector::new(cfg());
        warm(&mut det, 100);
        let mut fired = Vec::new();
        for _ in 0..40 {
            fired.extend(det.observe(50_000, 0, true));
        }
        let hits = fired
            .iter()
            .filter(|k| **k == AnomalyKind::LatencyRegression)
            .count();
        assert_eq!(hits, 1, "cooldown collapses a sustained step to one dump");
        // Return to normal long enough for the rolling baseline to adapt
        // back down and the cooldown to lapse; a second step re-fires.
        for _ in 0..150 {
            det.observe(1_000, 0, true);
        }
        for _ in 0..40 {
            fired.extend(det.observe(50_000, 0, true));
        }
        let hits = fired
            .iter()
            .filter(|k| **k == AnomalyKind::LatencyRegression)
            .count();
        assert_eq!(hits, 2, "a fresh step after recovery re-fires: {fired:?}");
    }

    #[test]
    fn cache_collapse_requires_a_warm_baseline() {
        // All-miss from the start: baseline hit rate 0 → never fires.
        let mut det = AnomalyDetector::new(cfg());
        for _ in 0..200 {
            let fired = det.observe(1_000, 0, false);
            assert!(
                !fired.contains(&AnomalyKind::CacheHitCollapse),
                "cold baseline must not page"
            );
        }
        // Warm baseline, then hits vanish.
        let mut det = AnomalyDetector::new(cfg());
        warm(&mut det, 100);
        let mut fired = Vec::new();
        for _ in 0..40 {
            fired.extend(det.observe(1_000, 0, false));
        }
        assert!(
            fired.contains(&AnomalyKind::CacheHitCollapse),
            "hit collapse after warm baseline: {fired:?}"
        );
    }

    #[test]
    fn admission_saturation_needs_the_absolute_floor() {
        let mut det = AnomalyDetector::new(cfg());
        warm(&mut det, 100);
        // 100× relative growth but under the 1ms floor: noise, not paging.
        let mut fired = Vec::new();
        for _ in 0..40 {
            fired.extend(det.observe(1_000, 500_000, true));
        }
        assert!(
            !fired.contains(&AnomalyKind::AdmissionSaturation),
            "sub-floor wait fired: {fired:?}"
        );
        for _ in 0..40 {
            fired.extend(det.observe(1_000, 20_000_000, true));
        }
        assert!(
            fired.contains(&AnomalyKind::AdmissionSaturation),
            "sustained 20ms waits must page: {fired:?}"
        );
    }

    #[test]
    fn detection_is_deterministic_across_replays() {
        let stream: Vec<(u64, u64, bool)> = (0..300)
            .map(|i| {
                if i > 200 {
                    (40_000, 5_000_000, false)
                } else {
                    (1_000 + (i % 7) * 100, 0, i % 3 != 0)
                }
            })
            .collect();
        let run = |s: &[(u64, u64, bool)]| {
            let mut det = AnomalyDetector::new(cfg());
            let mut log = Vec::new();
            for (i, (e, w, h)) in s.iter().enumerate() {
                for k in det.observe(*e, *w, *h) {
                    log.push((i, k));
                }
            }
            log
        };
        let a = run(&stream);
        let b = run(&stream);
        assert_eq!(a, b, "same stream, same triggers");
        assert!(!a.is_empty(), "the phase shift must trigger something");
    }
}
