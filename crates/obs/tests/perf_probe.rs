//! Manual perf probe: `cargo test -p av-obs --release --test perf_probe -- --ignored --nocapture`

use av_obs::{FlightRecorder, Obs, ObsConfig, QueryRecord, RecordStatus, SloConfig, SloMonitor, TenantTag};

fn probe_rec(tid: usize) -> QueryRecord {
    QueryRecord {
        tenant: TenantTag::new(&format!("tenant{}", tid % 4)),
        plan_fp: 42,
        view_fp: 7,
        epoch: 1,
        status: RecordStatus::Ok,
        route_hits: 1,
        cache_shard: 3,
        cache_hit: true,
        admit_wait_nanos: 1_000,
        exec_nanos: 9_000,
        rows: 10,
        bytes: 100,
        est_cost: 1.5,
        meas_cost: 1.4,
    }
}

#[test]
#[ignore]
fn observe_query_with_think_concurrent() {
    let obs = std::sync::Arc::new(Obs::new(ObsConfig::default()));
    let threads = 64;
    let n = 1_000u64;
    let t = std::time::Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let obs = obs.clone();
            s.spawn(move || {
                let rec = probe_rec(tid);
                for i in 0..n {
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    obs.observe_query(i * 10_000, &rec, "Scan");
                }
            });
        }
    });
    let wall = t.elapsed().as_nanos() as u64 / (n * threads as u64);
    println!("observe_query+think x{threads}: {wall} ns/op wall incl think (think=500000ns/op baseline)");
}

#[test]
#[ignore]
fn recorder_only_concurrent() {
    let ring = std::sync::Arc::new(FlightRecorder::new(4096));
    let threads = 64;
    let n = 20_000u64;
    let t = std::time::Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let ring = ring.clone();
            s.spawn(move || {
                let rec = probe_rec(tid);
                for _ in 0..n {
                    ring.record(&rec);
                }
            });
        }
    });
    let per = t.elapsed().as_nanos() as u64 / (n * threads as u64);
    println!("recorder x{threads}: {per} ns/op");
}

#[test]
#[ignore]
fn slo_only_concurrent() {
    let slo = std::sync::Arc::new(SloMonitor::new(SloConfig::default()));
    let threads = 64;
    let n = 20_000u64;
    let t = std::time::Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let slo = slo.clone();
            s.spawn(move || {
                let tenant = TenantTag::new(&format!("tenant{}", tid % 4));
                for i in 0..n {
                    slo.observe(tenant, i * 10_000, 10, av_obs::RequestOutcome::Served);
                }
            });
        }
    });
    let per = t.elapsed().as_nanos() as u64 / (n * threads as u64);
    println!("slo x{threads}: {per} ns/op");
}

#[test]
#[ignore]
fn component_costs_single_thread() {
    let n = 200_000u64;
    let rec = probe_rec(0);

    let ring = FlightRecorder::new(4096);
    let t = std::time::Instant::now();
    for _ in 0..n {
        ring.record(&rec);
    }
    println!("recorder 1T: {} ns/op", t.elapsed().as_nanos() as u64 / n);

    let slo = SloMonitor::new(SloConfig::default());
    let tenant = TenantTag::new("tenant0");
    let t = std::time::Instant::now();
    for i in 0..n {
        slo.observe(tenant, i * 10_000, 10, av_obs::RequestOutcome::Served);
    }
    println!("slo 1T: {} ns/op", t.elapsed().as_nanos() as u64 / n);

    let mut det = av_obs::AnomalyDetector::new(av_obs::AnomalyConfig::default());
    let t = std::time::Instant::now();
    for _ in 0..n {
        det.observe(9_000, 1_000, true);
    }
    println!("anomaly 1T (unlocked): {} ns/op", t.elapsed().as_nanos() as u64 / n);

    let det = std::sync::Mutex::new(av_obs::AnomalyDetector::new(av_obs::AnomalyConfig::default()));
    let t = std::time::Instant::now();
    for _ in 0..n {
        det.lock().unwrap().observe(9_000, 1_000, true);
    }
    println!("anomaly 1T (mutexed): {} ns/op", t.elapsed().as_nanos() as u64 / n);
}

#[test]
#[ignore]
fn observe_query_cost() {
    let obs = Obs::new(ObsConfig::default());
    let rec = QueryRecord {
        tenant: TenantTag::new("tenant0"),
        plan_fp: 42,
        view_fp: 7,
        epoch: 1,
        status: RecordStatus::Ok,
        route_hits: 1,
        cache_shard: 3,
        cache_hit: true,
        admit_wait_nanos: 1_000,
        exec_nanos: 9_000,
        rows: 10,
        bytes: 100,
        est_cost: 1.5,
        meas_cost: 1.4,
    };
    let n = 200_000u64;
    let t = std::time::Instant::now();
    for i in 0..n {
        obs.observe_query(i * 10_000, &rec, "Scan");
    }
    let per = t.elapsed().as_nanos() as u64 / n;
    println!("observe_query: {per} ns/op");

    // The serve-bench warm ladder carries no cost estimate pre-swap, so
    // its measured path skips the residual store entirely.
    let mut rec = rec;
    rec.est_cost = f64::NAN;
    let obs = Obs::new(ObsConfig::default());
    let t = std::time::Instant::now();
    for i in 0..n {
        obs.observe_query(i * 10_000, &rec, "Scan");
    }
    let per = t.elapsed().as_nanos() as u64 / n;
    println!("observe_query (no estimate): {per} ns/op");
}

#[test]
#[ignore]
fn observe_query_cost_concurrent() {
    let obs = std::sync::Arc::new(Obs::new(ObsConfig::default()));
    let threads = 64;
    let n = 20_000u64;
    let t = std::time::Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let obs = obs.clone();
            s.spawn(move || {
                let rec = QueryRecord {
                    tenant: TenantTag::new(&format!("tenant{}", tid % 4)),
                    plan_fp: 42,
                    view_fp: 7,
                    epoch: 1,
                    status: RecordStatus::Ok,
                    route_hits: 1,
                    cache_shard: 3,
                    cache_hit: true,
                    admit_wait_nanos: 1_000,
                    exec_nanos: 9_000,
                    rows: 10,
                    bytes: 100,
                    est_cost: 1.5,
                    meas_cost: 1.4,
                };
                for i in 0..n {
                    obs.observe_query(i * 10_000, &rec, "Scan");
                }
            });
        }
    });
    let per = t.elapsed().as_nanos() as u64 / (n * threads as u64);
    println!("observe_query x{threads}: {per} ns/op (wall-amortized)");
}
