//! Concurrency hammer for the flight recorder (ISSUE 9 satellite 3):
//! N writer threads push records through ≥4 ring wraps while a dumper
//! thread snapshots continuously. Every record a dump returns must be
//! internally consistent (no torn records — all fields derive from one
//! `(thread, iteration)` pair by fixed formulas), and per-thread sequence
//! numbers must be strictly increasing in record-iteration order.

use av_obs::{FlightRecord, FlightRecorder, QueryRecord, RecordStatus, TenantTag};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const THREADS: u64 = 8;
const PER_THREAD: u64 = 1_000;
const CAPACITY: usize = 128;
// 8 * 1000 / 128 = 62.5 ring wraps — far past the required 4.

/// Every field is a fixed function of the `(tid, i)` pair, so a dumper can
/// recompute the whole record from `plan_fp` alone and detect any torn
/// mix of two writes.
fn make_record(tid: u64, i: u64) -> QueryRecord {
    let fp = (tid << 32) | i;
    QueryRecord {
        tenant: TenantTag::new(tenant_name(tid).as_str()),
        plan_fp: fp,
        view_fp: fp ^ 0xdead_beef_cafe_f00d,
        epoch: tid + 1,
        status: RecordStatus::Ok,
        route_hits: (i % 7) as u32,
        cache_shard: (tid % 4) as u32,
        cache_hit: i.is_multiple_of(3),
        admit_wait_nanos: fp.wrapping_mul(3),
        exec_nanos: fp.wrapping_mul(31),
        rows: fp.wrapping_add(17),
        bytes: fp.wrapping_mul(5),
        est_cost: (fp % 1_000) as f64 + 0.5,
        meas_cost: (fp % 997) as f64 + 0.25,
    }
}

fn tenant_name(tid: u64) -> String {
    format!("tenant-{tid}")
}

/// Panic with context unless `rec` matches the formulas for its `plan_fp`.
fn check_consistency(rec: &FlightRecord) {
    let fp = rec.plan_fp;
    let tid = fp >> 32;
    let i = fp & 0xffff_ffff;
    assert!(tid < THREADS, "impossible thread id in {rec:?}");
    assert!(i < PER_THREAD, "impossible iteration in {rec:?}");
    let want = make_record(tid, i);
    assert_eq!(rec.tenant, tenant_name(tid), "torn tenant: {rec:?}");
    assert_eq!(rec.view_fp, want.view_fp, "torn view_fp: {rec:?}");
    assert_eq!(rec.epoch, want.epoch, "torn epoch: {rec:?}");
    assert_eq!(rec.status, want.status, "torn status: {rec:?}");
    assert_eq!(rec.route_hits, want.route_hits, "torn route_hits: {rec:?}");
    assert_eq!(rec.cache_shard, want.cache_shard, "torn cache_shard: {rec:?}");
    assert_eq!(rec.cache_hit, want.cache_hit, "torn cache_hit: {rec:?}");
    assert_eq!(
        rec.admit_wait_nanos, want.admit_wait_nanos,
        "torn admit_wait: {rec:?}"
    );
    assert_eq!(rec.exec_nanos, want.exec_nanos, "torn exec_nanos: {rec:?}");
    assert_eq!(rec.rows, want.rows, "torn rows: {rec:?}");
    assert_eq!(rec.bytes, want.bytes, "torn bytes: {rec:?}");
    assert_eq!(rec.est_cost, Some(want.est_cost), "torn est_cost: {rec:?}");
    assert_eq!(rec.meas_cost, want.meas_cost, "torn meas_cost: {rec:?}");
}

#[test]
fn hammer_no_torn_records_across_ring_wraps() {
    let recorder = Arc::new(FlightRecorder::new(CAPACITY));
    let done = Arc::new(AtomicBool::new(false));
    // (tid, i) -> global seq, reported by each writer for the monotonicity
    // check after the fact.
    let seqs: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(Vec::new()));

    let dumper = {
        let recorder = Arc::clone(&recorder);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut dumps = 0u64;
            let mut records_seen = 0u64;
            let mut take = |recorder: &FlightRecorder| {
                let dump = recorder.dump("hammer");
                assert!(dump.records.len() <= CAPACITY);
                let mut last_seq = None;
                for rec in &dump.records {
                    check_consistency(rec);
                    if let Some(prev) = last_seq {
                        assert!(rec.seq > prev, "dump not in sequence order");
                    }
                    last_seq = Some(rec.seq);
                    records_seen += 1;
                }
                dumps += 1;
            };
            while !done.load(Ordering::SeqCst) {
                take(&recorder);
            }
            // One more capture after the writers finish: on a single core
            // the loop above can spend its whole timeslice dumping an
            // empty ring before any writer runs, so only this dump is
            // guaranteed to overlap committed records.
            take(&recorder);
            (dumps, records_seen)
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|tid| {
            let recorder = Arc::clone(&recorder);
            let seqs = Arc::clone(&seqs);
            thread::spawn(move || {
                let mut mine = Vec::with_capacity(PER_THREAD as usize);
                for i in 0..PER_THREAD {
                    mine.push(recorder.record(&make_record(tid, i)));
                }
                seqs.lock().unwrap().push(mine);
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked");
    }
    done.store(true, Ordering::SeqCst);
    let (dumps, records_seen) = dumper.join().expect("dumper panicked");
    assert!(dumps > 0, "dumper never ran");
    assert!(records_seen > 0, "dumper never saw a committed record");

    // Global counter saw every claim exactly once.
    assert_eq!(recorder.sequence(), THREADS * PER_THREAD);

    // Per-thread sequence numbers are strictly increasing in issue order,
    // and no two records anywhere share a sequence number.
    let seqs = seqs.lock().unwrap();
    assert_eq!(seqs.len(), THREADS as usize);
    let mut all: Vec<u64> = Vec::with_capacity((THREADS * PER_THREAD) as usize);
    for mine in seqs.iter() {
        assert_eq!(mine.len(), PER_THREAD as usize);
        for pair in mine.windows(2) {
            assert!(pair[0] < pair[1], "per-thread seqs must be monotone");
        }
        all.extend_from_slice(mine);
    }
    all.sort_unstable();
    for (expect, got) in all.iter().enumerate() {
        assert_eq!(*got, expect as u64, "sequence numbers must be dense");
    }

    // The final quiescent dump holds exactly the newest CAPACITY records.
    let final_dump = recorder.dump("final");
    assert_eq!(final_dump.records.len(), CAPACITY);
    assert_eq!(final_dump.seq_at, THREADS * PER_THREAD);
    for rec in &final_dump.records {
        assert!(
            rec.seq >= THREADS * PER_THREAD - CAPACITY as u64,
            "stale record survived: seq {}",
            rec.seq
        );
        check_consistency(rec);
    }
}

#[test]
fn hammer_concurrent_writers_on_a_tiny_ring() {
    // Capacity 2 maximizes same-slot contention: every record contends for
    // one of two slots, stressing the lap-handoff CAS.
    let recorder = Arc::new(FlightRecorder::new(2));
    let writers: Vec<_> = (0..4u64)
        .map(|tid| {
            let recorder = Arc::clone(&recorder);
            thread::spawn(move || {
                for i in 0..500 {
                    recorder.record(&make_record(tid, i));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer panicked");
    }
    assert_eq!(recorder.sequence(), 2_000);
    let dump = recorder.dump("tiny");
    assert_eq!(dump.records.len(), 2);
    for rec in &dump.records {
        check_consistency(rec);
        assert!(rec.seq >= 1_998);
    }
}
