//! # av-ilp — 0-1 integer linear programming
//!
//! The paper casts Materialized View Selection as an ILP (Section V-A) and
//! calls an off-the-shelf solver (PuLP/Gurobi) for the per-query `Y-Opt`
//! subproblems and for the exact `OPT` reference on JOB. This crate plays
//! that role: a small binary-ILP model with an exact depth-first
//! branch-and-bound solver, plus the MVS-specific problem builder.
//!
//! ```
//! use av_ilp::IlpProblem;
//!
//! // maximize 3a + 2b + 2c  s.t.  a + b ≤ 1, b + c ≤ 1
//! let mut p = IlpProblem::new(3);
//! p.set_objective(vec![3.0, 2.0, 2.0]);
//! p.add_le_constraint(vec![(0, 1.0), (1, 1.0)], 1.0);
//! p.add_le_constraint(vec![(1, 1.0), (2, 1.0)], 1.0);
//! let sol = p.solve();
//! assert_eq!(sol.assignment, vec![true, false, true]);
//! assert!((sol.objective - 5.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod model;
pub mod mvs;

pub use model::{IlpProblem, IlpSolution};
pub use mvs::{MvsInstance, MvsSolution};
