//! The Materialized View Selection ILP (paper Definition 7 / Section V-A).
//!
//! Variables: `z_j` — materialize candidate subquery `j`; `y_ij` — query `i`
//! uses view `j`. Maximize `Σ y_ij·B_ij − Σ z_j·O_j` subject to
//! `y_ij ≤ z_j` and, for overlapping candidates `j,k`,
//! `y_ij + y_ik ≤ 1` per query.

use crate::model::max_weight_independent_set;

/// A concrete MVS instance: the benefit matrix, overheads and conflicts.
#[derive(Debug, Clone)]
pub struct MvsInstance {
    /// `benefits[i][j]` — benefit `B_{q_i, v_j}` of using view `j` for query
    /// `i`; 0 when the view is not applicable.
    pub benefits: Vec<Vec<f64>>,
    /// `overheads[j]` — total overhead `O_{v_j}` of materializing candidate `j`.
    pub overheads: Vec<f64>,
    /// Overlapping candidate pairs `(j, k)`, j < k.
    pub overlaps: Vec<(usize, usize)>,
}

/// A solution: which candidates to materialize and which views each query
/// uses.
#[derive(Debug, Clone, PartialEq)]
pub struct MvsSolution {
    pub z: Vec<bool>,
    /// `y[i][j]`.
    pub y: Vec<Vec<bool>>,
    pub utility: f64,
}

impl MvsInstance {
    /// Number of queries.
    pub fn num_queries(&self) -> usize {
        self.benefits.len()
    }

    /// Number of candidate subqueries (`|Z|`).
    pub fn num_candidates(&self) -> usize {
        self.overheads.len()
    }

    /// Conflict pairs among a query's usable views, restricted to `items`.
    fn conflicts_within(&self, items: &[usize]) -> Vec<(usize, usize)> {
        let mut pos = vec![usize::MAX; self.num_candidates()];
        for (idx, &j) in items.iter().enumerate() {
            pos[j] = idx;
        }
        self.overlaps
            .iter()
            .filter_map(|&(a, b)| {
                let (pa, pb) = (pos[a], pos[b]);
                (pa != usize::MAX && pb != usize::MAX).then_some((pa, pb))
            })
            .collect()
    }

    /// Exact `Y-Opt` for one query given a fixed `z` (the per-query local
    /// ILP of the paper's Function Y-Opt): choose a non-overlapping subset
    /// of the materialized, beneficial views maximizing total benefit.
    pub fn solve_y_for_query(&self, i: usize, z: &[bool]) -> Vec<bool> {
        let items: Vec<usize> = (0..self.num_candidates())
            .filter(|&j| z[j] && self.benefits[i][j] > 0.0)
            .collect();
        let weights: Vec<f64> = items.iter().map(|&j| self.benefits[i][j]).collect();
        let conflicts = self.conflicts_within(&items);
        let picks = max_weight_independent_set(&weights, &conflicts);
        let mut y = vec![false; self.num_candidates()];
        for (idx, &j) in items.iter().enumerate() {
            y[j] = picks[idx];
        }
        y
    }

    /// Exact `Y` for all queries given `z`.
    pub fn solve_y(&self, z: &[bool]) -> Vec<Vec<bool>> {
        (0..self.num_queries())
            .map(|i| self.solve_y_for_query(i, z))
            .collect()
    }

    /// Total benefit of a `Y` assignment.
    pub fn total_benefit(&self, y: &[Vec<bool>]) -> f64 {
        y.iter()
            .enumerate()
            .map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .map(|(j, &used)| if used { self.benefits[i][j] } else { 0.0 })
                    .sum::<f64>()
            })
            .sum()
    }

    /// Total overhead of a `z` assignment.
    pub fn total_overhead(&self, z: &[bool]) -> f64 {
        z.iter()
            .zip(&self.overheads)
            .map(|(&zj, &o)| if zj { o } else { 0.0 })
            .sum()
    }

    /// Utility `U = Σ y·B − Σ z·O` (paper Definition 6).
    pub fn utility(&self, z: &[bool], y: &[Vec<bool>]) -> f64 {
        self.total_benefit(y) - self.total_overhead(z)
    }

    /// Utility of a `z` assignment under its optimal `Y`.
    pub fn utility_of_z(&self, z: &[bool]) -> f64 {
        let y = self.solve_y(z);
        self.utility(z, &y)
    }

    /// Maximum potential benefit of candidate `j` (`B_max[j]` in IterView):
    /// the benefit if every applicable query used it, conflicts ignored.
    pub fn max_benefit(&self, j: usize) -> f64 {
        self.benefits.iter().map(|row| row[j].max(0.0)).sum()
    }

    /// Exact optimum (the paper's `OPT` column, computed for JOB only —
    /// WK-scale instances are intractable, matching the paper's report that
    /// ILP solvers "fail for WK1 and WK2").
    ///
    /// Depth-first branch and bound over `z` with exact inner `Y`:
    /// the bound at a node is the utility of the incumbent-feasible part
    /// plus `Σ max(0, B_max[j] − O_j)` over undecided candidates, which
    /// dominates any completion because conflicts only remove benefit.
    /// `node_budget` caps the search (returns the incumbent, flagged
    /// non-optimal, when exhausted).
    pub fn solve_exact(&self, node_budget: usize) -> (MvsSolution, bool) {
        self.solve_exact_from(node_budget, None)
    }

    /// [`MvsInstance::solve_exact`] with a warm-start incumbent: the search
    /// starts from `z0`'s utility, so a budget-capped run always returns a
    /// solution at least as good as the warm start (used by the Table IV
    /// harness to keep `OPT(budget)` an upper bound on the heuristics).
    pub fn solve_exact_from(
        &self,
        node_budget: usize,
        warm_start: Option<&[bool]>,
    ) -> (MvsSolution, bool) {
        let n = self.num_candidates();
        // Candidate order: descending net potential.
        let mut order: Vec<usize> = (0..n).collect();
        let net: Vec<f64> = (0..n)
            .map(|j| self.max_benefit(j) - self.overheads[j])
            .collect();
        order.sort_by(|&a, &b| net[b].total_cmp(&net[a]));

        let mut suffix_potential = vec![0.0; n + 1];
        for d in (0..n).rev() {
            suffix_potential[d] = suffix_potential[d + 1] + net[order[d]].max(0.0);
        }

        let mut best: Option<MvsSolution> = warm_start.map(|z0| {
            let y = self.solve_y(z0);
            let utility = self.utility(z0, &y);
            MvsSolution {
                z: z0.to_vec(),
                y,
                utility,
            }
        });
        let mut z = vec![false; n];
        let mut nodes_left = node_budget;
        self.exact_dfs(
            0,
            &order,
            &suffix_potential,
            &mut z,
            &mut best,
            &mut nodes_left,
        );
        let optimal = nodes_left > 0;
        let sol = best.unwrap_or_else(|| {
            let z = vec![false; n];
            let y = self.solve_y(&z);
            let utility = self.utility(&z, &y);
            MvsSolution { z, y, utility }
        });
        (sol, optimal)
    }

    fn exact_dfs(
        &self,
        depth: usize,
        order: &[usize],
        suffix_potential: &[f64],
        z: &mut Vec<bool>,
        best: &mut Option<MvsSolution>,
        nodes_left: &mut usize,
    ) {
        if *nodes_left == 0 {
            return;
        }
        *nodes_left -= 1;

        // Evaluate the partial assignment completed with all-false: an
        // anytime incumbent and the basis of the bound.
        let y = self.solve_y(z);
        let u = self.utility(z, &y);
        if best.as_ref().map(|b| u > b.utility).unwrap_or(true) {
            *best = Some(MvsSolution {
                z: z.clone(),
                y,
                utility: u,
            });
        }
        if depth == order.len() {
            return;
        }
        // Bound: u already counts fixed candidates; undecided ones add at
        // most their net potential.
        if u + suffix_potential[depth]
            <= best.as_ref().map(|b| b.utility).unwrap_or(f64::NEG_INFINITY) + 1e-12
        {
            return;
        }
        let j = order[depth];
        z[j] = true;
        self.exact_dfs(depth + 1, order, suffix_potential, z, best, nodes_left);
        z[j] = false;
        self.exact_dfs(depth + 1, order, suffix_potential, z, best, nodes_left);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two queries, two candidates; candidate 0 benefits both queries.
    fn small() -> MvsInstance {
        MvsInstance {
            benefits: vec![vec![5.0, 0.0], vec![4.0, 3.0]],
            overheads: vec![2.0, 10.0],
            overlaps: vec![],
        }
    }

    #[test]
    fn y_opt_respects_z() {
        let m = small();
        let y = m.solve_y_for_query(1, &[false, true]);
        assert_eq!(y, vec![false, true]);
        let y = m.solve_y_for_query(1, &[false, false]);
        assert_eq!(y, vec![false, false]);
    }

    #[test]
    fn y_opt_respects_overlap() {
        let mut m = small();
        m.overlaps = vec![(0, 1)];
        // Query 1 can use both but they conflict → picks the better (4 > 3).
        let y = m.solve_y_for_query(1, &[true, true]);
        assert_eq!(y, vec![true, false]);
    }

    #[test]
    fn utility_accounting() {
        let m = small();
        let z = vec![true, false];
        let y = m.solve_y(&z);
        // benefit 5 + 4 = 9, overhead 2 → utility 7
        assert!((m.utility(&z, &y) - 7.0).abs() < 1e-12);
        assert!((m.utility_of_z(&z) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn exact_solver_picks_profitable_candidate_only() {
        let m = small();
        let (sol, optimal) = m.solve_exact(100_000);
        assert!(optimal);
        // candidate 1 costs 10 for benefit 3 → never; candidate 0 nets +7.
        assert_eq!(sol.z, vec![true, false]);
        assert!((sol.utility - 7.0).abs() < 1e-12);
    }

    #[test]
    fn exact_solver_handles_overlap_tradeoff() {
        // One query; two conflicting views. Separately profitable, but only
        // one can be used — the solver must not pay both overheads.
        let m = MvsInstance {
            benefits: vec![vec![10.0, 9.0]],
            overheads: vec![1.0, 1.0],
            overlaps: vec![(0, 1)],
        };
        let (sol, _) = m.solve_exact(100_000);
        assert_eq!(sol.z, vec![true, false]);
        assert!((sol.utility - 9.0).abs() < 1e-12);
    }

    #[test]
    fn max_benefit_sums_positive_rows() {
        let m = small();
        assert!((m.max_benefit(0) - 9.0).abs() < 1e-12);
        assert!((m.max_benefit(1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let m = small();
        let (_, optimal) = m.solve_exact(1);
        assert!(!optimal);
    }

    #[test]
    fn exact_matches_brute_force_on_random_instances() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for _ in 0..20 {
            let nq = rng.gen_range(1..4usize);
            let nc = rng.gen_range(1..6usize);
            let benefits: Vec<Vec<f64>> = (0..nq)
                .map(|_| {
                    (0..nc)
                        .map(|_| {
                            if rng.gen_bool(0.5) {
                                rng.gen_range(0.0..10.0)
                            } else {
                                0.0
                            }
                        })
                        .collect()
                })
                .collect();
            let overheads: Vec<f64> = (0..nc).map(|_| rng.gen_range(0.0..8.0)).collect();
            let mut overlaps = Vec::new();
            for j in 0..nc {
                for k in j + 1..nc {
                    if rng.gen_bool(0.3) {
                        overlaps.push((j, k));
                    }
                }
            }
            let m = MvsInstance {
                benefits,
                overheads,
                overlaps,
            };
            let (sol, optimal) = m.solve_exact(1_000_000);
            assert!(optimal);
            // Brute force over z.
            let mut best = f64::NEG_INFINITY;
            for mask in 0..(1usize << nc) {
                let z: Vec<bool> = (0..nc).map(|j| mask >> j & 1 == 1).collect();
                best = best.max(m.utility_of_z(&z));
            }
            assert!(
                (sol.utility - best).abs() < 1e-9,
                "B&B {} != brute force {}",
                sol.utility,
                best
            );
        }
    }
}
