//! Binary ILP model and exact branch-and-bound solver.

/// A 0-1 ILP: maximize `c·x` subject to sparse `≤` constraints over binary
/// variables.
#[derive(Debug, Clone)]
pub struct IlpProblem {
    n: usize,
    objective: Vec<f64>,
    /// Each constraint: sparse terms `(var, coeff)` and bound, `Σ coeff·x ≤ b`.
    constraints: Vec<(Vec<(usize, f64)>, f64)>,
}

/// A solution: assignment plus achieved objective.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    pub assignment: Vec<bool>,
    pub objective: f64,
    /// True when the solver proved optimality (always true for `solve`;
    /// kept for future budgeted variants).
    pub optimal: bool,
}

impl IlpProblem {
    /// Problem over `n` binary variables with a zero objective.
    pub fn new(n: usize) -> IlpProblem {
        IlpProblem {
            n,
            objective: vec![0.0; n],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Set the full objective vector (maximized).
    ///
    /// # Panics
    /// Panics if the length differs from the variable count.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.n, "objective length mismatch");
        self.objective = c;
    }

    /// Add `Σ coeff·x ≤ bound`. Duplicate variables are coalesced (their
    /// coefficients summed) so the solver's per-variable feasibility
    /// propagation sees each variable's total contribution.
    pub fn add_le_constraint(&mut self, terms: Vec<(usize, f64)>, bound: f64) {
        debug_assert!(terms.iter().all(|&(v, _)| v < self.n));
        let mut coalesced: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match coalesced.iter_mut().find(|(w, _)| *w == v) {
                Some((_, acc)) => *acc += c,
                None => coalesced.push((v, c)),
            }
        }
        coalesced.retain(|&(_, c)| c != 0.0);
        self.constraints.push((coalesced, bound));
    }

    /// Check whether a full assignment is feasible.
    pub fn is_feasible(&self, x: &[bool]) -> bool {
        self.constraints.iter().all(|(terms, b)| {
            let lhs: f64 = terms
                .iter()
                .map(|&(v, c)| if x[v] { c } else { 0.0 })
                .sum();
            lhs <= *b + 1e-9
        })
    }

    /// Objective value of an assignment.
    pub fn objective_of(&self, x: &[bool]) -> f64 {
        x.iter()
            .zip(&self.objective)
            .map(|(&xi, &c)| if xi { c } else { 0.0 })
            .sum()
    }

    /// Exact solve by depth-first branch and bound.
    ///
    /// Branching order: variables sorted by `|c|` descending, so the bound
    /// tightens early. Upper bound at a node: objective of fixed variables
    /// plus every positive coefficient of free variables that could still be
    /// set without *individually* violating a constraint (a relaxation that
    /// ignores constraint interaction — sound, and cheap to maintain).
    pub fn solve(&self) -> IlpSolution {
        // Variable order: by |objective| descending.
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by(|&a, &b| {
            self.objective[b]
                .abs()
                .total_cmp(&self.objective[a].abs())
        });

        // Residual capacity per constraint given currently-fixed-true vars.
        let mut residual: Vec<f64> = self.constraints.iter().map(|&(_, b)| b).collect();
        // Per-constraint sum of negative coefficients over still-free vars:
        // the minimum possible contribution of the unfixed remainder. A
        // partial assignment is viable iff `neg_free ≤ residual` everywhere.
        let mut neg_free: Vec<f64> = self
            .constraints
            .iter()
            .map(|(terms, _)| terms.iter().map(|&(_, c)| c.min(0.0)).sum())
            .collect();
        // Per-variable constraint membership for fast updates.
        let mut memberships: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for (ci, (terms, _)) in self.constraints.iter().enumerate() {
            for &(v, c) in terms {
                memberships[v].push((ci, c));
            }
        }

        let mut best = IlpSolution {
            assignment: vec![false; self.n],
            objective: f64::NEG_INFINITY,
            optimal: true,
        };
        // All-false must be feasible for ≤ constraints with non-negative
        // bounds; if some bound is negative, search will discover whether
        // any assignment is feasible.
        let mut x = vec![false; self.n];

        // Suffix sums of positive objective mass for quick optimistic bounds.
        let mut pos_suffix = vec![0.0; self.n + 1];
        for i in (0..self.n).rev() {
            pos_suffix[i] = pos_suffix[i + 1] + self.objective[order[i]].max(0.0);
        }

        self.dfs(
            0,
            0.0,
            &order,
            &pos_suffix,
            &mut x,
            &mut residual,
            &mut neg_free,
            &memberships,
            &mut best,
        );
        if best.objective == f64::NEG_INFINITY {
            // No feasible assignment found (possible with negative bounds).
            best.objective = f64::NAN;
            best.optimal = false;
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        depth: usize,
        current: f64,
        order: &[usize],
        pos_suffix: &[f64],
        x: &mut Vec<bool>,
        residual: &mut Vec<f64>,
        neg_free: &mut Vec<f64>,
        memberships: &[Vec<(usize, f64)>],
        best: &mut IlpSolution,
    ) {
        if current + pos_suffix[depth] <= best.objective + 1e-12 {
            return; // bound: cannot beat the incumbent
        }
        if depth == order.len() {
            if residual.iter().all(|&r| r >= -1e-9) && current > best.objective {
                best.objective = current;
                best.assignment = x.clone();
            }
            return;
        }
        let v = order[depth];

        // Fixing v (either way) removes it from every constraint's free set.
        for &(ci, c) in &memberships[v] {
            neg_free[ci] -= c.min(0.0);
        }

        // Try x[v] = 1 first when it helps the objective.
        let try_order: [bool; 2] = if self.objective[v] > 0.0 {
            [true, false]
        } else {
            [false, true]
        };
        for &value in &try_order {
            if value {
                // Feasibility: after taking v, every touched constraint must
                // still admit a completion — the minimum possible remaining
                // contribution (`neg_free`) must fit in the residual.
                let violates = memberships[v]
                    .iter()
                    .any(|&(ci, c)| neg_free[ci] > residual[ci] - c + 1e-9);
                if violates {
                    continue;
                }
                for &(ci, c) in &memberships[v] {
                    residual[ci] -= c;
                }
                x[v] = true;
                self.dfs(
                    depth + 1,
                    current + self.objective[v],
                    order,
                    pos_suffix,
                    x,
                    residual,
                    neg_free,
                    memberships,
                    best,
                );
                x[v] = false;
                for &(ci, c) in &memberships[v] {
                    residual[ci] += c;
                }
            } else {
                // Leaving v unset can itself break a constraint that needed
                // v's negative coefficient; the viability check above
                // (neg_free vs residual) at deeper nodes and the final full
                // check keep this sound without extra pruning here.
                self.dfs(
                    depth + 1,
                    current,
                    order,
                    pos_suffix,
                    x,
                    residual,
                    neg_free,
                    memberships,
                    best,
                );
            }
        }

        for &(ci, c) in &memberships[v] {
            neg_free[ci] += c.min(0.0);
        }
    }
}

/// Maximum-weight independent set solved exactly as an ILP: pick items
/// maximizing `Σ w` such that no conflicting pair is picked together.
/// Items with non-positive weight are never picked.
pub fn max_weight_independent_set(weights: &[f64], conflicts: &[(usize, usize)]) -> Vec<bool> {
    let mut p = IlpProblem::new(weights.len());
    p.set_objective(weights.to_vec());
    for &(a, b) in conflicts {
        p.add_le_constraint(vec![(a, 1.0), (b, 1.0)], 1.0);
    }
    // Forbid non-positive-weight picks so ties break toward smaller sets.
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            p.add_le_constraint(vec![(i, 1.0)], 0.0);
        }
    }
    p.solve().assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_takes_all_positive() {
        let mut p = IlpProblem::new(4);
        p.set_objective(vec![1.0, -2.0, 3.0, 0.0]);
        let s = p.solve();
        assert_eq!(s.assignment, vec![true, false, true, false]);
        assert!((s.objective - 4.0).abs() < 1e-12);
    }

    #[test]
    fn knapsack_style_constraint() {
        // maximize 5a + 4b + 3c s.t. 2a + 3b + c ≤ 3 → a + c (obj 8)
        let mut p = IlpProblem::new(3);
        p.set_objective(vec![5.0, 4.0, 3.0]);
        p.add_le_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0)], 3.0);
        let s = p.solve();
        assert_eq!(s.assignment, vec![true, false, true]);
        assert!((s.objective - 8.0).abs() < 1e-12);
    }

    #[test]
    fn implication_constraint_y_le_z() {
        // maximize 10y − 3z s.t. y ≤ z → picks both (net 7)
        let mut p = IlpProblem::new(2);
        p.set_objective(vec![10.0, -3.0]);
        p.add_le_constraint(vec![(0, 1.0), (1, -1.0)], 0.0);
        let s = p.solve();
        assert_eq!(s.assignment, vec![true, true]);
        assert!((s.objective - 7.0).abs() < 1e-12);

        // If the carrier is too expensive, take neither.
        let mut p2 = IlpProblem::new(2);
        p2.set_objective(vec![2.0, -3.0]);
        p2.add_le_constraint(vec![(0, 1.0), (1, -1.0)], 0.0);
        let s2 = p2.solve();
        assert_eq!(s2.assignment, vec![false, false]);
    }

    #[test]
    fn mwis_chain() {
        // path graph a-b-c with weights 3,2,2 → {a, c}
        let picks = max_weight_independent_set(&[3.0, 2.0, 2.0], &[(0, 1), (1, 2)]);
        assert_eq!(picks, vec![true, false, true]);
    }

    #[test]
    fn mwis_skips_nonpositive_weights() {
        let picks = max_weight_independent_set(&[-1.0, 0.0, 5.0], &[]);
        assert_eq!(picks, vec![false, false, true]);
    }

    #[test]
    fn infeasible_negative_bound_reported() {
        let mut p = IlpProblem::new(1);
        p.set_objective(vec![1.0]);
        // x ≥ something impossible: −x ≤ −2 has no binary solution.
        p.add_le_constraint(vec![(0, -1.0)], -2.0);
        let s = p.solve();
        assert!(s.objective.is_nan());
        assert!(!s.optimal);
    }

    #[test]
    fn feasibility_check_matches_solver() {
        let mut p = IlpProblem::new(2);
        p.set_objective(vec![1.0, 1.0]);
        p.add_le_constraint(vec![(0, 1.0), (1, 1.0)], 1.0);
        let s = p.solve();
        assert!(p.is_feasible(&s.assignment));
        assert!(!p.is_feasible(&[true, true]));
    }
}
