//! Property tests: the branch-and-bound solver is exact on random binary
//! ILPs, verified against brute-force enumeration.

use av_ilp::IlpProblem;
use proptest::prelude::*;

fn brute_force(p: &IlpProblem) -> Option<f64> {
    let n = p.num_vars();
    let mut best: Option<f64> = None;
    for mask in 0..(1usize << n) {
        let x: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        if p.is_feasible(&x) {
            let obj = p.objective_of(&x);
            if best.map(|b| obj > b).unwrap_or(true) {
                best = Some(obj);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bnb_matches_brute_force(
        n in 1..7usize,
        objective in proptest::collection::vec(-5.0f64..5.0, 7),
        constraints in proptest::collection::vec(
            (proptest::collection::vec((0..7usize, -2.0f64..2.0), 1..4), -1.0f64..4.0),
            0..5,
        ),
    ) {
        let mut p = IlpProblem::new(n);
        p.set_objective(objective[..n].to_vec());
        for (terms, bound) in constraints {
            let terms: Vec<(usize, f64)> = terms
                .into_iter()
                .filter(|&(v, _)| v < n)
                .collect();
            if !terms.is_empty() {
                p.add_le_constraint(terms, bound);
            }
        }
        let solution = p.solve();
        match brute_force(&p) {
            Some(best) => {
                prop_assert!(solution.optimal);
                prop_assert!(p.is_feasible(&solution.assignment));
                prop_assert!(
                    (solution.objective - best).abs() < 1e-9,
                    "B&B {} != brute force {}", solution.objective, best
                );
            }
            None => {
                prop_assert!(solution.objective.is_nan(), "must report infeasibility");
            }
        }
    }

    #[test]
    fn mwis_never_picks_conflicting_pairs(
        weights in proptest::collection::vec(-3.0f64..6.0, 1..9),
        edges in proptest::collection::vec((0..9usize, 0..9usize), 0..10),
    ) {
        let n = weights.len();
        let conflicts: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(a, b)| a < n && b < n && a != b)
            .collect();
        let picks = av_ilp::model::max_weight_independent_set(&weights, &conflicts);
        for &(a, b) in &conflicts {
            prop_assert!(!(picks[a] && picks[b]), "conflict ({a},{b}) both picked");
        }
        for (i, &p) in picks.iter().enumerate() {
            if p {
                prop_assert!(weights[i] > 0.0, "non-positive weight picked");
            }
        }
    }
}
