//! Feature extraction (paper Section IV-A).
//!
//! Features come from two sources — query/view plans and the metadata of
//! their input tables — and split into *numerical* features (table
//! statistics, plan shape counters) and *non-numerical* features (the plan
//! token sequences of Fig. 4 and the schema keyword set).

use av_engine::Catalog;
use av_plan::{plan_feature_rows, PlanNode, PlanRef, Token};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Metadata of one input table (from the metadata database).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    pub name: String,
    pub rows: f64,
    pub columns: f64,
    pub bytes: f64,
    pub avg_distinct_ratio: f64,
    pub column_names: Vec<String>,
    pub column_types: Vec<String>,
}

/// One estimation input: the query, the candidate view's defining subquery,
/// and the metadata of every table either of them touches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureInput {
    pub query: PlanRef,
    pub view: PlanRef,
    pub tables: Vec<TableMeta>,
}

/// One labelled training pair, as collected in the metadata database: the
/// estimation input plus the measured costs the baselines need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairSample {
    pub input: FeatureInput,
    /// Ground truth `A_{β,γ}(q|v)` — the Wide-Deep target.
    pub cost_qv: f64,
    /// Measured `A_{β,γ}(q)` (raw query).
    pub cost_q: f64,
    /// Measured `A_{β,γ}(s)` (the view's defining subquery).
    pub cost_s: f64,
    /// Measured cost of scanning the materialized view.
    pub cost_vscan: f64,
}

/// Table metadata for every base table a (query, view) pair touches (the
/// paper's "associated tables" features), pulled live from the catalog.
pub fn tables_meta(catalog: &Catalog, query: &PlanRef, view: &PlanRef) -> Vec<TableMeta> {
    let mut names: BTreeSet<String> = query.base_tables().into_iter().collect();
    names.extend(view.base_tables());
    names
        .into_iter()
        .filter_map(|n| {
            let t = catalog.table(&n)?;
            Some(TableMeta {
                name: t.name.clone(),
                rows: t.stats.row_count as f64,
                columns: t.stats.column_count as f64,
                bytes: t.stats.total_bytes as f64,
                avg_distinct_ratio: t.stats.avg_distinct_ratio,
                column_names: t.column_names.clone(),
                column_types: t
                    .column_types
                    .iter()
                    .map(|c| c.keyword().to_string())
                    .collect(),
            })
        })
        .collect()
}

/// Number of numerical features (see [`numerical_features`]).
pub const NUM_FEATURES: usize = 18;

/// Shape counters of a plan: scans, filters, projects, joins, aggregates.
pub fn plan_shape(plan: &PlanNode) -> [f64; 5] {
    let mut c = [0.0; 5];
    plan.visit_preorder(&mut |n| {
        let i = match n {
            PlanNode::TableScan { .. } => 0,
            PlanNode::Filter { .. } => 1,
            PlanNode::Project { .. } => 2,
            PlanNode::Join { .. } => 3,
            PlanNode::Aggregate { .. } => 4,
        };
        c[i] += 1.0;
    });
    c
}

/// The fixed-length numerical feature vector of an input: plan shape
/// counters for query and view, plus aggregate table statistics. Raw
/// (unnormalized); the wide model z-normalizes with training-set statistics.
pub fn numerical_features(input: &FeatureInput) -> [f64; NUM_FEATURES] {
    let qs = plan_shape(&input.query);
    let vs = plan_shape(&input.view);
    let total_rows: f64 = input.tables.iter().map(|t| t.rows).sum();
    let total_bytes: f64 = input.tables.iter().map(|t| t.bytes).sum();
    let total_cols: f64 = input.tables.iter().map(|t| t.columns).sum();
    let n_tables = input.tables.len() as f64;
    let avg_distinct = if input.tables.is_empty() {
        0.0
    } else {
        input
            .tables
            .iter()
            .map(|t| t.avg_distinct_ratio)
            .sum::<f64>()
            / n_tables
    };
    let max_rows = input.tables.iter().map(|t| t.rows).fold(0.0, f64::max);
    // Log-scale the magnitudes: costs grow multiplicatively with data size,
    // and the wide model is linear.
    let log1p = |x: f64| (1.0 + x).ln();
    [
        qs[0], qs[1], qs[2], qs[3], qs[4],
        vs[0], vs[1], vs[2], vs[3], vs[4],
        input.query.node_count() as f64,
        input.view.node_count() as f64,
        n_tables,
        total_cols,
        log1p(total_rows),
        log1p(total_bytes),
        log1p(max_rows),
        avg_distinct,
    ]
}

/// The schema keyword set of an input (paper: table names, column names,
/// column types), deduplicated, order-stable.
pub fn schema_keywords(input: &FeatureInput) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |s: String| {
        if !out.contains(&s) {
            out.push(s);
        }
    };
    for t in &input.tables {
        push(t.name.clone());
        for c in &t.column_names {
            push(c.clone());
        }
        for ty in &t.column_types {
            push(ty.clone());
        }
    }
    out
}

/// The two plan token sequences (query first, then view), each a pre-order
/// list of per-operator token rows.
pub fn plan_tokens(input: &FeatureInput) -> (Vec<Vec<Token>>, Vec<Vec<Token>>) {
    (
        plan_feature_rows(&input.query),
        plan_feature_rows(&input.view),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::{Expr, PlanBuilder};

    fn sample_input() -> FeatureInput {
        let view = PlanBuilder::scan("user_memo", "t1")
            .filter(Expr::col("t1.dt").eq(Expr::str("1010")))
            .project(&[("t1.user_id", "t1.user_id")])
            .build();
        let query = PlanBuilder::from_plan(view.clone())
            .count_star(&["t1.user_id"], "cnt")
            .build();
        FeatureInput {
            query,
            view,
            tables: vec![TableMeta {
                name: "user_memo".into(),
                rows: 1000.0,
                columns: 3.0,
                bytes: 24000.0,
                avg_distinct_ratio: 0.5,
                column_names: vec!["user_id".into(), "memo".into(), "dt".into()],
                column_types: vec!["Int".into(), "String".into(), "String".into()],
            }],
        }
    }

    #[test]
    fn numerical_vector_has_fixed_length_and_plan_counts() {
        let f = numerical_features(&sample_input());
        assert_eq!(f.len(), NUM_FEATURES);
        // query shape: 1 scan, 1 filter, 1 project, 0 join, 1 aggregate
        assert_eq!(&f[0..5], &[1.0, 1.0, 1.0, 0.0, 1.0]);
        // view shape: 1 scan, 1 filter, 1 project
        assert_eq!(&f[5..10], &[1.0, 1.0, 1.0, 0.0, 0.0]);
        assert_eq!(f[10], 4.0); // query node count
        assert_eq!(f[11], 3.0); // view node count
    }

    #[test]
    fn magnitudes_are_log_scaled() {
        let f = numerical_features(&sample_input());
        assert!((f[14] - (1001.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn schema_keywords_dedupe_preserving_order() {
        let kws = schema_keywords(&sample_input());
        assert_eq!(
            kws,
            vec!["user_memo", "user_id", "memo", "dt", "Int", "String"]
        );
    }

    #[test]
    fn plan_tokens_cover_both_plans() {
        let (q, v) = plan_tokens(&sample_input());
        assert_eq!(q.len(), 4);
        assert_eq!(v.len(), 3);
        assert_eq!(q[0][0], Token::kw("Aggregate"));
        assert_eq!(v[0][0], Token::kw("Project"));
    }

    #[test]
    fn empty_tables_yield_zero_stats() {
        let mut input = sample_input();
        input.tables.clear();
        let f = numerical_features(&input);
        assert_eq!(f[12], 0.0);
        assert_eq!(f[17], 0.0);
    }
}
