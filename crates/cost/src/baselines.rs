//! Baseline cost estimators (paper Section VI-A): Optimizer, DeepLearn, LR.

use crate::features::{numerical_features, FeatureInput, PairSample, TableMeta};
use crate::linalg::{dot, ridge_fit};
use crate::CostEstimator;
use av_nn::{Adam, Graph, Linear, ParamStore, Tensor};
use av_plan::{CmpOp, Expr, PlanNode, PlanRef};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Optimizer: analytical cost algebra
// ---------------------------------------------------------------------------

/// The traditional baseline: estimate `A(q|v) = A(q) − A(s) + A(scan v)`
/// with an optimizer-style analytical cost model over table statistics and
/// heuristic selectivities. No training. Mirrors the paper's observation
/// that errors accumulate across the three independent estimates.
#[derive(Debug, Clone)]
pub struct OptimizerEstimator {
    /// Dollars per abstract CPU operation (β / ops-per-core-minute); the
    /// default matches the engine's pricing scale.
    pub dollars_per_op: f64,
}

impl Default for OptimizerEstimator {
    fn default() -> Self {
        // β = 0.1 $/core·min over 2e6 ops/min.
        OptimizerEstimator {
            dollars_per_op: 0.1 / 2.0e6,
        }
    }
}

/// Heuristic selectivity of a predicate: 0.1 per equality conjunct, 0.3 per
/// range conjunct — the classic System-R magic numbers.
fn selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Cmp { op, .. } => match op {
            CmpOp::Eq => 0.1,
            CmpOp::Ne => 0.9,
            _ => 0.3,
        },
        Expr::And(v) => v.iter().map(selectivity).product(),
        Expr::Or(v) => {
            let miss: f64 = v.iter().map(|e| 1.0 - selectivity(e)).product();
            1.0 - miss
        }
        Expr::Not(e) => 1.0 - selectivity(e),
        _ => 1.0,
    }
}

impl OptimizerEstimator {
    /// Estimated output cardinality and cumulative cost (abstract ops) of a
    /// plan under the analytical model.
    pub fn card_and_ops(&self, plan: &PlanNode, tables: &HashMap<&str, &TableMeta>) -> (f64, f64) {
        match plan {
            PlanNode::TableScan { table, .. } => {
                let t = tables.get(table.as_str());
                let rows = t.map(|t| t.rows).unwrap_or(1000.0);
                let cols = t.map(|t| t.columns).unwrap_or(4.0);
                (rows, rows * (cols + 1.0))
            }
            PlanNode::Filter { input, predicate } => {
                let (rows, ops) = self.card_and_ops(input, tables);
                let preds = predicate.referenced_columns().len().max(1) as f64;
                (rows * selectivity(predicate), ops + rows * 2.0 * preds)
            }
            PlanNode::Project { input, exprs } => {
                let (rows, ops) = self.card_and_ops(input, tables);
                (rows, ops + rows * exprs.len().max(1) as f64)
            }
            PlanNode::Join { left, right, on, .. } => {
                let (lr, lops) = self.card_and_ops(left, tables);
                let (rr, rops) = self.card_and_ops(right, tables);
                // Foreign-key-ish guess: |L⋈R| ≈ |L|·|R| / max(|L|,|R|).
                let out = (lr * rr / lr.max(rr).max(1.0)).max(1.0);
                let k = on.len().max(1) as f64;
                (out, lops + rops + 4.0 * k * (lr + rr) + out)
            }
            PlanNode::Aggregate {
                input, group_by, ..
            } => {
                let (rows, ops) = self.card_and_ops(input, tables);
                // Distinct-group guess: square-root rule per grouping column.
                let groups = if group_by.is_empty() {
                    1.0
                } else {
                    rows.sqrt().max(1.0)
                };
                (groups, ops + rows * 2.0)
            }
        }
    }

    /// Analytical `A_{β,γ}` estimate of a single plan, in dollars.
    pub fn plan_cost(&self, plan: &PlanRef, metas: &[TableMeta]) -> f64 {
        let map: HashMap<&str, &TableMeta> =
            metas.iter().map(|t| (t.name.as_str(), t)).collect();
        let (_, ops) = self.card_and_ops(plan, &map);
        ops * self.dollars_per_op
    }

    /// Analytical cost of scanning the materialized result of `view`.
    pub fn view_scan_cost(&self, view: &PlanRef, metas: &[TableMeta]) -> f64 {
        let map: HashMap<&str, &TableMeta> =
            metas.iter().map(|t| (t.name.as_str(), t)).collect();
        let (card, _) = self.card_and_ops(view, &map);
        let width = view.output_columns(&|t| {
            map.get(t).map(|m| m.column_names.clone()).unwrap_or_default()
        });
        card * (width.len().max(1) as f64 + 1.0) * self.dollars_per_op
    }
}

impl CostEstimator for OptimizerEstimator {
    fn estimate(&self, input: &FeatureInput) -> f64 {
        let q = self.plan_cost(&input.query, &input.tables);
        let s = self.plan_cost(&input.view, &input.tables);
        let scan = self.view_scan_cost(&input.view, &input.tables);
        (q - s + scan).max(0.0)
    }

    fn name(&self) -> &'static str {
        "Optimizer"
    }
}

// ---------------------------------------------------------------------------
// DeepLearn: learned single-plan cost model, combined like Optimizer
// ---------------------------------------------------------------------------

/// Single-plan numerical features: shape counters plus table statistics.
fn single_plan_features(plan: &PlanRef, tables: &[TableMeta]) -> Vec<f64> {
    let shape = crate::features::plan_shape(plan);
    let total_rows: f64 = tables.iter().map(|t| t.rows).sum();
    let total_bytes: f64 = tables.iter().map(|t| t.bytes).sum();
    let total_cols: f64 = tables.iter().map(|t| t.columns).sum();
    let log1p = |x: f64| (1.0 + x).ln();
    vec![
        shape[0],
        shape[1],
        shape[2],
        shape[3],
        shape[4],
        plan.node_count() as f64,
        tables.len() as f64,
        total_cols,
        log1p(total_rows),
        log1p(total_bytes),
    ]
}

/// The learned-estimator baseline ([36]-style): a small MLP predicts the
/// cost of a *single* plan; the rewritten cost is composed as
/// `NN(q) − NN(s) + ridge(scan of v)`. Like Optimizer, the three-way
/// composition accumulates error — but each component is learned, so it
/// lands between Optimizer and the pair-trained models, as in Table III.
pub struct DeepLearnEstimator {
    store: ParamStore,
    l1: Linear,
    l2: Linear,
    l3: Linear,
    scan_model: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
}

impl DeepLearnEstimator {
    /// Train on labelled pairs: the single-plan model sees `(q, cost_q)` and
    /// `(s, cost_s)`; the scan model regresses `cost_vscan` on `s` features.
    pub fn fit(samples: &[PairSample], epochs: usize, lr: f32, seed: u64) -> DeepLearnEstimator {
        // Assemble the single-plan training set.
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in samples {
            xs.push(single_plan_features(&s.input.query, &s.input.tables));
            ys.push(s.cost_q);
            xs.push(single_plan_features(&s.input.view, &s.input.tables));
            ys.push(s.cost_s);
        }
        let dim = xs.first().map(|x| x.len()).unwrap_or(10);
        let (x_mean, x_std) = normalization_stats(&xs, dim);
        let (y_mean, y_std) = scalar_stats(&ys);

        let mut store = ParamStore::with_seed(seed);
        let l1 = Linear::new(&mut store, dim, 32);
        let l2 = Linear::new(&mut store, 32, 32);
        let l3 = Linear::new(&mut store, 32, 1);
        let mut adam = Adam::new(lr);

        for _ in 0..epochs {
            store.zero_grads();
            if xs.is_empty() {
                break;
            }
            let rows: Vec<Vec<f32>> = xs
                .iter()
                .map(|x| normalize(x, &x_mean, &x_std))
                .collect();
            let row_refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            let targets: Vec<f32> = ys.iter().map(|&y| ((y - y_mean) / y_std) as f32).collect();
            let mut g = Graph::new();
            let x = g.input(Tensor::from_rows(&row_refs));
            let h = l1.forward_with(&mut g, &store, x);
            let h = g.relu(h);
            let h = l2.forward_with(&mut g, &store, h);
            let h = g.relu(h);
            let pred = l3.forward_with(&mut g, &store, h);
            let t = g.input(Tensor::from_vec(targets.len(), 1, targets));
            let loss = g.mse(pred, t);
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
            adam.step(&mut store);
        }

        // Ridge model for the view-scan cost from view features.
        let scan_rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| {
                let mut f = single_plan_features(&s.input.view, &s.input.tables);
                f.push(1.0);
                f
            })
            .collect();
        let scan_y: Vec<f64> = samples.iter().map(|s| s.cost_vscan).collect();
        let scan_model =
            ridge_fit(&scan_rows, &scan_y, 1e-6).unwrap_or_else(|| vec![0.0; dim + 1]);

        DeepLearnEstimator {
            store,
            l1,
            l2,
            l3,
            scan_model,
            y_mean,
            y_std,
            x_mean,
            x_std,
        }
    }

    fn predict_plan(&self, plan: &PlanRef, tables: &[TableMeta]) -> f64 {
        let x = single_plan_features(plan, tables);
        let row = normalize(&x, &self.x_mean, &self.x_std);
        let mut g = Graph::new();
        let xn = g.input(Tensor::from_rows(&[row.as_slice()]));
        let h = self.l1.forward_with(&mut g, &self.store, xn);
        let h = g.relu(h);
        let h = self.l2.forward_with(&mut g, &self.store, h);
        let h = g.relu(h);
        let pred = self.l3.forward_with(&mut g, &self.store, h);
        g.value(pred).get(0, 0) as f64 * self.y_std + self.y_mean
    }
}

impl CostEstimator for DeepLearnEstimator {
    fn estimate(&self, input: &FeatureInput) -> f64 {
        let q = self.predict_plan(&input.query, &input.tables);
        let s = self.predict_plan(&input.view, &input.tables);
        let mut f = single_plan_features(&input.view, &input.tables);
        f.push(1.0);
        let scan = dot(&f, &self.scan_model);
        (q - s + scan).max(0.0)
    }

    fn name(&self) -> &'static str {
        "DeepLearn"
    }
}

// ---------------------------------------------------------------------------
// LR: ridge regression on pair features
// ---------------------------------------------------------------------------

/// Linear-regression baseline: ridge fit of the pair's numerical features
/// (plus intercept) directly against `A(q|v)`.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    weights: Vec<f64>,
}

impl LinearRegression {
    /// Fit on labelled pairs.
    pub fn fit(samples: &[(FeatureInput, f64)]) -> LinearRegression {
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|(inp, _)| {
                let mut f = numerical_features(inp).to_vec();
                f.push(1.0);
                f
            })
            .collect();
        let y: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
        let weights = ridge_fit(&rows, &y, 1e-6)
            .unwrap_or_else(|| vec![0.0; crate::features::NUM_FEATURES + 1]);
        LinearRegression { weights }
    }
}

impl CostEstimator for LinearRegression {
    fn estimate(&self, input: &FeatureInput) -> f64 {
        let mut f = numerical_features(input).to_vec();
        f.push(1.0);
        dot(&f, &self.weights)
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

pub(crate) fn normalization_stats(xs: &[Vec<f64>], dim: usize) -> (Vec<f64>, Vec<f64>) {
    let n = xs.len().max(1) as f64;
    let mut mean = vec![0.0; dim];
    for x in xs {
        for (m, v) in mean.iter_mut().zip(x) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut std = vec![0.0; dim];
    for x in xs {
        for ((s, v), m) in std.iter_mut().zip(x).zip(&mean) {
            *s += (v - m).powi(2);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt().max(1e-9);
    }
    (mean, std)
}

pub(crate) fn scalar_stats(ys: &[f64]) -> (f64, f64) {
    let n = ys.len().max(1) as f64;
    let mean = ys.iter().sum::<f64>() / n;
    let var = ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt().max(1e-12))
}

pub(crate) fn normalize(x: &[f64], mean: &[f64], std: &[f64]) -> Vec<f32> {
    x.iter()
        .zip(mean)
        .zip(std)
        .map(|((v, m), s)| ((v - m) / s) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_plan::PlanBuilder;

    fn meta(rows: f64) -> TableMeta {
        TableMeta {
            name: "t".into(),
            rows,
            columns: 3.0,
            bytes: rows * 24.0,
            avg_distinct_ratio: 0.5,
            column_names: vec!["a".into(), "b".into(), "c".into()],
            column_types: vec!["Int".into(), "Int".into(), "Int".into()],
        }
    }

    fn input(rows: f64) -> FeatureInput {
        let view = PlanBuilder::scan("t", "x")
            .filter(Expr::col("x.a").eq(Expr::int(1)))
            .project(&[("x.b", "b")])
            .build();
        let query = PlanBuilder::from_plan(view.clone())
            .count_star(&["b"], "n")
            .build();
        FeatureInput {
            query,
            view,
            tables: vec![meta(rows)],
        }
    }

    #[test]
    fn optimizer_cost_grows_with_table_size() {
        let o = OptimizerEstimator::default();
        assert!(o.estimate(&input(100_000.0)) > o.estimate(&input(100.0)));
    }

    #[test]
    fn optimizer_estimate_is_nonnegative() {
        let o = OptimizerEstimator::default();
        assert!(o.estimate(&input(10.0)) >= 0.0);
    }

    #[test]
    fn selectivity_heuristics() {
        let eq = Expr::col("a").eq(Expr::int(1));
        assert!((selectivity(&eq) - 0.1).abs() < 1e-12);
        let both = eq.clone().and(Expr::col("b").cmp(CmpOp::Gt, Expr::int(2)));
        assert!((selectivity(&both) - 0.03).abs() < 1e-12);
        let either = Expr::Or(vec![eq.clone(), eq]);
        assert!((selectivity(&either) - 0.19).abs() < 1e-12);
    }

    #[test]
    fn lr_fits_linear_cost_surface() {
        // Synthetic: cost = 2 × (query node count) + 0.5 × n_tables.
        let samples: Vec<(FeatureInput, f64)> = (1..30)
            .map(|i| {
                let inp = input(100.0 * i as f64);
                let cost = 2.0 * inp.query.node_count() as f64 + 0.5;
                (inp, cost)
            })
            .collect();
        let lr = LinearRegression::fit(&samples);
        let pred = lr.estimate(&samples[0].0);
        assert!((pred - samples[0].1).abs() < 0.2, "pred {pred}");
    }

    #[test]
    fn deeplearn_learns_single_plan_costs() {
        // Cost proportional to log rows: learnable from the feature vector.
        let samples: Vec<PairSample> = (1..40)
            .map(|i| {
                let rows = 50.0 * i as f64;
                let inp = input(rows);
                let base = (1.0 + rows).ln();
                PairSample {
                    input: inp,
                    cost_qv: base * 0.5,
                    cost_q: base,
                    cost_s: base * 0.6,
                    cost_vscan: base * 0.1,
                }
            })
            .collect();
        let m = DeepLearnEstimator::fit(&samples, 400, 0.01, 3);
        let probe = &samples[20];
        let pred = m.estimate(&probe.input);
        let truth = probe.cost_q - probe.cost_s + probe.cost_vscan;
        assert!(
            (pred - truth).abs() < 0.5 * truth.abs().max(1.0),
            "pred {pred} truth {truth}"
        );
    }

    #[test]
    fn normalization_stats_are_sane() {
        let xs = vec![vec![0.0, 10.0], vec![2.0, 10.0]];
        let (mean, std) = normalization_stats(&xs, 2);
        assert_eq!(mean, vec![1.0, 10.0]);
        assert!((std[0] - 1.0).abs() < 1e-12);
        assert!(std[1] >= 1e-9, "zero-variance guarded");
    }
}
