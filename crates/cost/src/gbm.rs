//! Gradient-boosted regression trees — the XGBoost stand-in for the paper's
//! GBM baseline.
//!
//! Squared-error boosting: each round fits a depth-limited regression tree
//! to the current residuals (exact greedy splits) and adds it with
//! shrinkage.

use crate::features::{numerical_features, FeatureInput};
use crate::CostEstimator;

/// GBM hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbmConfig {
    pub n_trees: usize,
    pub max_depth: usize,
    pub learning_rate: f64,
    /// Minimum samples in a leaf; splits creating smaller leaves are
    /// rejected.
    pub min_leaf: usize,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            n_trees: 80,
            max_depth: 3,
            learning_rate: 0.1,
            min_leaf: 3,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// A fitted gradient-boosted model.
#[derive(Debug, Clone)]
pub struct Gbm {
    base: f64,
    trees: Vec<Node>,
    config: GbmConfig,
}

impl Gbm {
    /// Fit on raw feature rows and targets.
    pub fn fit(rows: &[Vec<f64>], y: &[f64], config: GbmConfig) -> Gbm {
        assert_eq!(rows.len(), y.len(), "row/target mismatch");
        let base = if y.is_empty() {
            0.0
        } else {
            y.iter().sum::<f64>() / y.len() as f64
        };
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(config.n_trees);
        let indices: Vec<usize> = (0..rows.len()).collect();
        for _ in 0..config.n_trees {
            let residuals: Vec<f64> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let tree = build_tree(rows, &residuals, &indices, config.max_depth, config.min_leaf);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += config.learning_rate * tree.predict(&rows[i]);
            }
            trees.push(tree);
        }
        Gbm {
            base,
            trees,
            config,
        }
    }

    /// Fit directly from labelled pair samples using the numerical features.
    pub fn fit_samples(samples: &[(FeatureInput, f64)], config: GbmConfig) -> Gbm {
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|(inp, _)| numerical_features(inp).to_vec())
            .collect();
        let y: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
        Gbm::fit(&rows, &y, config)
    }

    /// Predict for a raw feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict(x))
                .sum::<f64>()
    }
}

impl CostEstimator for Gbm {
    fn estimate(&self, input: &FeatureInput) -> f64 {
        self.predict(&numerical_features(input))
    }

    fn name(&self) -> &'static str {
        "GBM"
    }
}

fn build_tree(
    rows: &[Vec<f64>],
    targets: &[f64],
    indices: &[usize],
    depth: usize,
    min_leaf: usize,
) -> Node {
    let mean = if indices.is_empty() {
        0.0
    } else {
        indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64
    };
    if depth == 0 || indices.len() < 2 * min_leaf {
        return Node::Leaf(mean);
    }

    let n_features = rows.first().map(|r| r.len()).unwrap_or(0);
    let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
    let n = indices.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)

    // Indexing by feature is clearer than iterating row slices here.
    #[allow(clippy::needless_range_loop)]
    for f in 0..n_features {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_by(|&a, &b| rows[a][f].total_cmp(&rows[b][f]));
        let mut left_sum = 0.0;
        for (pos, &i) in sorted.iter().enumerate() {
            left_sum += targets[i];
            let left_n = (pos + 1) as f64;
            let right_n = n - left_n;
            if (pos + 1) < min_leaf || (indices.len() - pos - 1) < min_leaf {
                continue;
            }
            // Skip ties: can only split between distinct values.
            if pos + 1 < sorted.len() && rows[i][f] == rows[sorted[pos + 1]][f] {
                continue;
            }
            let right_sum = total_sum - left_sum;
            // Variance-reduction gain (up to constants):
            let gain = left_sum * left_sum / left_n + right_sum * right_sum / right_n
                - total_sum * total_sum / n;
            if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-12) {
                let threshold = if pos + 1 < sorted.len() {
                    (rows[i][f] + rows[sorted[pos + 1]][f]) / 2.0
                } else {
                    rows[i][f]
                };
                best = Some((gain, f, threshold));
            }
        }
    }

    match best {
        None => Node::Leaf(mean),
        Some((_, feature, threshold)) => {
            let (left, right): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| rows[i][feature] <= threshold);
            if left.is_empty() || right.is_empty() {
                return Node::Leaf(mean);
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build_tree(rows, targets, &left, depth - 1, min_leaf)),
                right: Box::new(build_tree(rows, targets, &right, depth - 1, min_leaf)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 when x > 0.5 else 2, with a nuisance feature.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i as f64) / 100.0, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 10.0 } else { 2.0 })
            .collect();
        (rows, y)
    }

    #[test]
    fn learns_a_step_function() {
        let (rows, y) = step_data();
        let g = Gbm::fit(&rows, &y, GbmConfig::default());
        assert!((g.predict(&[0.9, 0.0]) - 10.0).abs() < 0.5);
        assert!((g.predict(&[0.1, 0.0]) - 2.0).abs() < 0.5);
    }

    #[test]
    fn constant_target_yields_constant_prediction() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 20];
        let g = Gbm::fit(&rows, &y, GbmConfig::default());
        assert!((g.predict(&[3.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn boosting_reduces_training_error_monotonically_enough() {
        let (rows, y) = step_data();
        let small = Gbm::fit(
            &rows,
            &y,
            GbmConfig {
                n_trees: 2,
                ..GbmConfig::default()
            },
        );
        let big = Gbm::fit(&rows, &y, GbmConfig::default());
        let err = |g: &Gbm| {
            rows.iter()
                .zip(&y)
                .map(|(r, t)| (g.predict(r) - t).abs())
                .sum::<f64>()
        };
        assert!(err(&big) < err(&small));
    }

    #[test]
    fn respects_min_leaf() {
        let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let y = vec![0.0, 0.0, 10.0, 10.0];
        let g = Gbm::fit(
            &rows,
            &y,
            GbmConfig {
                n_trees: 1,
                max_depth: 5,
                learning_rate: 1.0,
                min_leaf: 3,
            },
        );
        // min_leaf 3 forbids any split of 4 samples (needs ≥ 2·3) → leaf mean.
        assert!((g.predict(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_training_set_predicts_zero() {
        let g = Gbm::fit(&[], &[], GbmConfig::default());
        assert_eq!(g.predict(&[1.0, 2.0]), 0.0);
    }
}
