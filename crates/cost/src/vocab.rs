//! Keyword vocabulary shared by the embedding models.
//!
//! The paper shares one Keyword Embedding matrix across plan tokens and
//! schema tokens "as their keywords belong to the same database". The vocab
//! is built from the training split; unseen keywords map to a reserved UNK
//! slot.

use std::collections::HashMap;

/// Reserved index for unknown keywords.
pub const UNK: usize = 0;

/// A frozen keyword → index mapping.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    map: HashMap<String, usize>,
}

impl Vocab {
    /// Empty vocabulary (only UNK).
    pub fn new() -> Vocab {
        Vocab::default()
    }

    /// Add a keyword (idempotent), returning its index.
    pub fn add(&mut self, kw: &str) -> usize {
        if let Some(&i) = self.map.get(kw) {
            return i;
        }
        let i = self.map.len() + 1; // 0 is UNK
        self.map.insert(kw.to_string(), i);
        i
    }

    /// Look up a keyword, UNK when absent.
    pub fn index(&self, kw: &str) -> usize {
        self.map.get(kw).copied().unwrap_or(UNK)
    }

    /// Vocabulary size including UNK.
    pub fn len(&self) -> usize {
        self.map.len() + 1
    }

    /// Always false: UNK is always present.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("Scan");
        let b = v.add("Scan");
        assert_eq!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let mut v = Vocab::new();
        v.add("known");
        assert_eq!(v.index("unknown"), UNK);
        assert_ne!(v.index("known"), UNK);
    }

    #[test]
    fn indices_are_dense_and_start_after_unk() {
        let mut v = Vocab::new();
        let ids: Vec<usize> = ["a", "b", "c"].iter().map(|k| v.add(k)).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(v.len(), 4);
    }
}
