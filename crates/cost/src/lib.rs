//! # av-cost — cost/utility estimation (paper Section IV)
//!
//! Estimates `A_{β,γ}(q|v)` — the cost of query `q` rewritten with
//! materialized view `v` — from features of the two plans and their input
//! tables, without executing the rewritten query.
//!
//! The headline model is the paper's **Wide-Deep** network
//! ([`widedeep::WideDeep`]): a wide linear part over normalized numerical
//! features joined with a deep part that encodes plans (keyword embeddings,
//! char-CNN string encoding, two-level LSTM) and table schemas (embedding +
//! average pooling) through two ResNet blocks into a regressor.
//!
//! The baselines of the paper's Table III are implemented alongside:
//! - [`baselines::OptimizerEstimator`] — analytical cost algebra
//!   `A(q) − A(s) + A(v_scan)` over an optimizer-style cost model;
//! - [`baselines::DeepLearnEstimator`] — a learned *single-plan* cost model
//!   combined the same way (the [36]-style baseline);
//! - [`baselines::LinearRegression`] — ridge regression on numerical
//!   features;
//! - [`gbm::Gbm`] — gradient-boosted regression trees (the XGBoost stand-in);
//! - Wide-Deep ablations **N-Kw**, **N-Str**, **N-Exp**
//!   ([`widedeep::Ablation`]).

#![forbid(unsafe_code)]

pub mod baselines;
pub mod features;
pub mod gbm;
pub mod linalg;
pub mod metrics;
pub mod vocab;
pub mod widedeep;

pub use baselines::{DeepLearnEstimator, LinearRegression, OptimizerEstimator};
pub use features::{tables_meta, FeatureInput, PairSample, TableMeta};
pub use gbm::{Gbm, GbmConfig};
pub use metrics::{mae, mape};
pub use vocab::Vocab;
pub use widedeep::{Ablation, WideDeep, WideDeepConfig};

/// A trained model that predicts the rewritten-query cost for a
/// (query, view, tables) input.
pub trait CostEstimator {
    /// Predicted `A_{β,γ}(q|v)` in dollars.
    fn estimate(&self, input: &FeatureInput) -> f64;

    /// Predict many inputs at once, in order. The default simply maps
    /// [`CostEstimator::estimate`]; models with a batched forward path
    /// (e.g. [`widedeep::WideDeep`]) override this to share plan encodings
    /// across inputs when scoring a whole benefit matrix.
    fn estimate_batch(&self, inputs: &[FeatureInput]) -> Vec<f64> {
        inputs.iter().map(|i| self.estimate(i)).collect()
    }

    /// Display name for experiment tables.
    fn name(&self) -> &'static str;
}
