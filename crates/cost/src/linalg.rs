//! Small dense linear algebra: ridge regression via Gaussian elimination.

/// Solve the ridge-regression normal equations
/// `(XᵀX + λI)·w = Xᵀy` for `w`, where `rows` are the feature vectors
/// (a column of ones should be appended by the caller for an intercept).
///
/// Returns `None` if the system is singular beyond repair (λ = 0 and
/// degenerate features).
pub fn ridge_fit(rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert_eq!(rows.len(), y.len(), "row/target count mismatch");
    let n = rows.first().map(|r| r.len()).unwrap_or(0);
    if n == 0 {
        return Some(Vec::new());
    }
    // XᵀX + λI
    let mut a = vec![vec![0.0f64; n]; n];
    let mut b = vec![0.0f64; n];
    for (row, &target) in rows.iter().zip(y) {
        assert_eq!(row.len(), n, "ragged feature rows");
        for i in 0..n {
            b[i] += row[i] * target;
            for j in 0..n {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += lambda;
    }
    solve_linear(a, b)
}

/// Solve `A·x = b` by Gaussian elimination with partial pivoting.
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            // Two rows of `a` are touched at once; index math keeps the
            // pivot-row read and target-row write visibly in lockstep.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x − y = 1 → x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(a, vec![5.0, 1.0]).expect("solvable");
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_returns_none() {
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn ridge_recovers_linear_relationship() {
        // y = 3a − 2b + 1
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let a = (i % 7) as f64;
                let b = (i % 5) as f64;
                vec![a, b, 1.0]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        let w = ridge_fit(&rows, &y, 1e-9).expect("fits");
        assert!((w[0] - 3.0).abs() < 1e-6);
        assert!((w[1] + 2.0).abs() < 1e-6);
        assert!((w[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let rows = vec![vec![1.0], vec![1.0]];
        let y = vec![10.0, 10.0];
        let w = ridge_fit(&rows, &y, 1e6).expect("fits");
        assert!(w[0].abs() < 0.1, "strong regularization shrinks weights");
    }

    #[test]
    fn empty_features_fit_trivially() {
        let w = ridge_fit(&[], &[], 1.0).expect("empty ok");
        assert!(w.is_empty());
    }
}
