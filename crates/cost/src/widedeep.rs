//! The Wide-Deep cost model (paper Section IV-B) and its ablations.
//!
//! Architecture, following Fig. 5:
//!
//! ```text
//! numerical features ──normalize──► Dc ──affine (Mw)──► Dw ─┐
//!                                   │                       ├─► FC5 → ReLU → FC6 → Ŷ
//! table schema ──keyword-embed──► avg pool ──► Dm ─┐        │
//! query plan  ──token encode ► LSTM1 ► LSTM2 ─► De_q ├─► Dr ─► ResNet×2 ─► Z2 ┘
//! view plan   ──token encode ► LSTM1 ► LSTM2 ─► De_v ┘
//! ```
//!
//! Token encoding: keywords through a shared Keyword Embedding; literal
//! strings through the String Encoding model (char embedding → two
//! `Conv3×1 → BatchNorm → ReLU` blocks → average pooling, Fig. 6).
//!
//! Ablations (paper Section VI-A):
//! - **N-Kw** — one-hot vectors replace keyword embeddings;
//! - **N-Str** — one-hot char histograms replace char embeddings and the CNN;
//! - **N-Exp** — average pooling replaces both LSTMs.
//!
//! ## Compute path
//!
//! Training and inference run on a throughput-oriented path that is
//! numerically identical to the straightforward one:
//!
//! - every sample is **prepared once** (tokenized, vocab-indexed,
//!   normalized) before the first epoch, instead of re-deriving features
//!   at every use;
//! - each worker owns an **arena-reused [`Graph`]** (`reset` between
//!   samples), so a steady-state epoch performs no heap allocation;
//! - minibatches fan out across `threads` workers on the shared
//!   `av-sched` morsel pool, each writing per-sample gradient blocks that
//!   are reduced **in ascending sample order** — `threads = N` is
//!   bitwise-identical to serial;
//! - inference goes through [`WideDeep::predict_batch`], which memoizes
//!   `De(plan)` LSTM encodings by plan fingerprint and pushes all samples
//!   through one batched head graph. The cache lives inside the model, so
//!   retraining (a new model) invalidates it by construction.

use crate::baselines::{normalization_stats, normalize, scalar_stats};
use crate::features::{numerical_features, plan_tokens, schema_keywords, FeatureInput, NUM_FEATURES};
use crate::vocab::Vocab;
use crate::CostEstimator;
use av_nn::{
    Adam, BatchNorm, Conv3x1, Embedding, GradBlock, Graph, Linear, Lstm, NodeId, ParamStore,
    Tensor,
};
use av_plan::{plan_feature_rows, Fingerprint, Token};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which part of the model is ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Full Wide-Deep (`W-D`).
    None,
    /// One-hot keywords (`N-Kw`).
    NKw,
    /// One-hot chars, no CNN (`N-Str`).
    NStr,
    /// Average pooling instead of the LSTMs (`N-Exp`).
    NExp,
}

impl Ablation {
    /// Display name matching the paper's Table III columns.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::None => "W-D",
            Ablation::NKw => "N-Kw",
            Ablation::NStr => "N-Str",
            Ablation::NExp => "N-Exp",
        }
    }
}

/// Hyper-parameters (paper Table II supplies `epochs`, `lr`, `bs`).
#[derive(Debug, Clone)]
pub struct WideDeepConfig {
    /// Dense embedding width `n_d`.
    pub embed_dim: usize,
    /// Hidden width of the per-operator LSTM₁.
    pub lstm1_hidden: usize,
    /// Hidden width of the plan-level LSTM₂.
    pub lstm2_hidden: usize,
    /// Output width of the wide affine transform.
    pub wide_dim: usize,
    /// Training epochs `I`.
    pub epochs: usize,
    /// Adam learning rate `lr`.
    pub lr: f32,
    /// Batch size `b_s` (gradient-accumulation granularity).
    pub batch_size: usize,
    /// Worker threads for minibatch training; `0` = one per available
    /// core (capped at 8). Any value produces bitwise-identical results —
    /// per-sample gradient blocks are reduced in fixed sample order.
    pub threads: usize,
    /// Truncation cap on operator rows per plan (speed guard).
    pub max_operators: usize,
    /// Truncation cap on chars per string literal.
    pub max_string_len: usize,
    pub seed: u64,
    pub ablation: Ablation,
}

impl Default for WideDeepConfig {
    fn default() -> Self {
        WideDeepConfig {
            embed_dim: 12,
            lstm1_hidden: 16,
            lstm2_hidden: 16,
            wide_dim: 8,
            epochs: 25,
            lr: 5e-3,
            batch_size: 16,
            threads: 0,
            max_operators: 16,
            max_string_len: 16,
            seed: 17,
            ablation: Ablation::None,
        }
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// A token after one-time preparation: vocab lookups done, string bytes
/// resolved, ablation-specific constants (one-hot histograms) materialized.
#[derive(Debug, Clone)]
enum PreparedToken {
    /// Keyword → vocab index.
    Keyword(usize),
    /// String literal → char indices (dense char-CNN path).
    Chars(Vec<usize>),
    /// String literal → pooled char histogram (`N-Str`).
    Histogram(Vec<f32>),
}

#[derive(Debug, Clone)]
struct PreparedPlan {
    /// Per-operator token rows, already capped at `max_operators`.
    rows: Vec<Vec<PreparedToken>>,
}

#[derive(Debug, Clone)]
enum PreparedSchema {
    /// `N-Kw`: pooled one-hot keyword histogram over the vocab.
    Histogram(Vec<f32>),
    /// Dense path: vocab indices to embed then mean-pool (may be empty).
    Indices(Vec<usize>),
}

/// A feature input after one-time preparation (see [`PreparedToken`]).
#[derive(Debug, Clone)]
struct PreparedInput {
    /// Z-normalized numerical features.
    xn: Vec<f32>,
    schema: PreparedSchema,
    query: PreparedPlan,
    view: PreparedPlan,
}

#[derive(Debug, Clone)]
struct PreparedSample {
    input: PreparedInput,
    /// Normalized training target.
    target: f32,
}

/// Memoized `De(plan)` encodings keyed by plan fingerprint. Lookup and
/// insert only — never iterated, so no hash-order dependence can leak into
/// results. Owned by the model: retraining builds a new model and therefore
/// a new, empty cache.
#[derive(Debug, Default)]
struct EncoderCache {
    map: Mutex<HashMap<u64, Tensor>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A trained Wide-Deep cost model.
pub struct WideDeep {
    config: WideDeepConfig,
    vocab: Vocab,
    store: ParamStore,
    /// Width of one encoded token (depends on the ablation).
    token_dim: usize,
    kw_embed: Embedding,
    char_embed: Embedding,
    conv1: Conv3x1,
    bn1: BatchNorm,
    conv2: Conv3x1,
    bn2: BatchNorm,
    lstm1: Lstm,
    lstm2: Lstm,
    wide: Linear,
    fc1: Linear,
    fc2: Linear,
    fc3: Linear,
    fc4: Linear,
    fc5: Linear,
    fc6: Linear,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    encoder_cache: EncoderCache,
    tracer: av_trace::Tracer,
}

impl WideDeep {
    /// Train on labelled `(input, A(q|v))` pairs (paper Algorithm 1).
    pub fn fit(samples: &[(FeatureInput, f64)], config: WideDeepConfig) -> WideDeep {
        Self::fit_traced(samples, config).0
    }

    /// Train, also returning the per-epoch training loss trace.
    pub fn fit_traced(
        samples: &[(FeatureInput, f64)],
        config: WideDeepConfig,
    ) -> (WideDeep, Vec<f64>) {
        Self::fit_with_tracer(samples, config, &av_trace::Tracer::disabled())
    }

    /// Vocabulary + normalization bootstrap shared by all trainers.
    fn bootstrap(samples: &[(FeatureInput, f64)], config: WideDeepConfig) -> WideDeep {
        // Vocabulary from the training split only.
        let mut vocab = Vocab::new();
        for (inp, _) in samples {
            let (q, v) = plan_tokens(inp);
            for row in q.iter().chain(v.iter()) {
                for tok in row {
                    if let Token::Keyword(k) = tok {
                        vocab.add(k);
                    }
                }
            }
            for kw in schema_keywords(inp) {
                vocab.add(&kw);
            }
        }

        let mut model = Self::initialize(config, vocab);

        // Normalization statistics (Algorithm 1 line 8 uses per-feature
        // z-normalization; we compute the stats over the training split).
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|(inp, _)| numerical_features(inp).to_vec())
            .collect();
        let (x_mean, x_std) = normalization_stats(&xs, NUM_FEATURES);
        let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
        let (y_mean, y_std) = scalar_stats(&ys);
        model.x_mean = x_mean;
        model.x_std = x_std;
        model.y_mean = y_mean;
        model.y_std = y_std;
        model
    }

    /// Run one prepared sample through an arena graph and collect its
    /// gradient block. Returns the sample's loss.
    fn train_sample(&self, g: &mut Graph, sample: &PreparedSample, block: &mut GradBlock) -> f32 {
        g.reset();
        let pred = self.forward_prepared(g, &sample.input);
        let mut tv = g.scratch(1, 1);
        tv.set(0, 0, sample.target);
        let t = g.input(tv);
        let loss = g.mse(pred, t);
        let loss_value = g.value(loss).get(0, 0);
        g.backward(loss);
        g.take_param_grads(block);
        loss_value
    }

    /// Serial fast path: like [`WideDeep::train_sample`] but accumulates
    /// the sample's gradients straight into the store, skipping the
    /// detached block. Replaying blocks in ascending sample order performs
    /// the identical `f32` additions (see [`GradBlock`]), so a single
    /// worker using this path stays bitwise-equal to the multi-worker
    /// reduction.
    fn train_sample_direct(&mut self, g: &mut Graph, sample: &PreparedSample) -> f32 {
        g.reset();
        let pred = self.forward_prepared(g, &sample.input);
        let mut tv = g.scratch(1, 1);
        tv.set(0, 0, sample.target);
        let t = g.input(tv);
        let loss = g.mse(pred, t);
        let loss_value = g.value(loss).get(0, 0);
        g.backward(loss);
        g.accumulate_param_grads(&mut self.store);
        loss_value
    }

    /// Train with full observability: one `cost.epoch` span per epoch
    /// (carrying mean loss and the last batch's gradient norm), per-batch
    /// `cost.grad_reduce` / `cost.adam_step` timings, and
    /// `cost.epoch_loss` / `cost.grad_norm` histograms in the tracer's
    /// metrics registry.
    ///
    /// Minibatches are data-parallel: each of up to `config.threads`
    /// workers owns an arena-reused graph and computes per-sample gradient
    /// blocks for a contiguous slice of the batch; blocks are then reduced
    /// in ascending sample order and scaled by `1/batch`, so the result is
    /// bitwise-identical for any thread count.
    pub fn fit_with_tracer(
        samples: &[(FeatureInput, f64)],
        config: WideDeepConfig,
        tracer: &av_trace::Tracer,
    ) -> (WideDeep, Vec<f64>) {
        let mut model = Self::bootstrap(samples, config);

        // Tokenize / vocab-index / normalize every sample exactly once.
        let prepared: Vec<PreparedSample> = samples
            .iter()
            .map(|(inp, y)| PreparedSample {
                input: model.prepare(inp),
                target: ((y - model.y_mean) / model.y_std) as f32,
            })
            .collect();

        let batch = model.config.batch_size.max(1);
        let workers_max = resolve_threads(model.config.threads);
        let mut graphs: Vec<Graph> = (0..workers_max).map(|_| Graph::new()).collect();
        // Pin every parameter leaf into each worker's arena once: resets
        // keep the leaves, so per-sample passes stop re-copying all the
        // weights from the store. `refresh_params` below pushes each
        // optimizer step's new values back into the pinned leaves.
        for g in &mut graphs {
            for pid in model.store.param_ids() {
                g.param(&model.store, pid);
            }
            g.pin_params();
        }
        // Per-sample gradient blocks, allocated once and zeroed per batch.
        // A single worker accumulates straight into the store instead
        // (bitwise-identical, see `train_sample_direct`), so the blocks are
        // only materialized when they can actually be filled in parallel.
        let mut blocks: Vec<GradBlock> = if workers_max > 1 {
            (0..batch).map(|_| GradBlock::for_store(&model.store)).collect()
        } else {
            Vec::new()
        };
        let mut losses = vec![0f32; batch];

        let mut adam = Adam::new(model.config.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(model.config.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut trace = Vec::with_capacity(model.config.epochs);

        for epoch in 0..model.config.epochs {
            let span = tracer.span("cost.epoch");
            span.record_num("epoch", epoch as f64);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut last_grad_norm = 0.0;
            for chunk in order.chunks(batch) {
                let n = chunk.len();
                let workers = workers_max.min(n).max(1);
                if workers == 1 {
                    model.store.zero_grads();
                    let g = &mut graphs[0];
                    for (j, &i) in chunk.iter().enumerate() {
                        losses[j] = model.train_sample_direct(g, &prepared[i]);
                    }
                } else {
                    for block in &mut blocks[..n] {
                        block.zero();
                    }
                    // Contiguous batch slices per worker; each sample's
                    // gradient lands in its own block, so the reduction
                    // below never depends on the partition. The fan-out
                    // rides the shared morsel pool: each work unit owns its
                    // disjoint slices behind a Mutex (claimed exactly once,
                    // so the lock is always uncontended).
                    let per = n.div_ceil(workers);
                    let model_ref = &model;
                    let prepared_ref = &prepared;
                    let units: Vec<std::sync::Mutex<_>> = chunk
                        .chunks(per)
                        .zip(blocks[..n].chunks_mut(per))
                        .zip(losses[..n].chunks_mut(per))
                        .zip(graphs.iter_mut())
                        .map(std::sync::Mutex::new)
                        .collect();
                    av_sched::global().run(units.len(), workers, |u| {
                        let mut unit = units[u].lock().expect("unit claimed once");
                        let (((idxs, bl), ls), g) = &mut *unit;
                        for (j, &i) in idxs.iter().enumerate() {
                            ls[j] = model_ref.train_sample(g, &prepared_ref[i], &mut bl[j]);
                        }
                    });
                }
                for &l in &losses[..n] {
                    epoch_loss += f64::from(l);
                }
                // Fixed-order reduction: block j is sample j's gradient
                // regardless of which worker produced it, so replaying
                // j = 0..n is the serial association exactly (sparse embed
                // rows included — see `GradBlock`). The 1/n scale makes the
                // step a true minibatch mean — the effective learning rate
                // no longer grows with batch_size.
                tracer.time("cost.grad_reduce", || {
                    if workers > 1 {
                        model.store.zero_grads();
                        for block in &blocks[..n] {
                            block.add_into(&mut model.store);
                        }
                    }
                    model.store.scale_grads(1.0 / n as f32);
                });
                if tracer.is_enabled() {
                    last_grad_norm = model.store.grad_norm();
                }
                tracer.time("cost.adam_step", || adam.step(&mut model.store));
                for g in &mut graphs {
                    g.refresh_params(&model.store);
                }
            }
            let mean_loss = epoch_loss / samples.len().max(1) as f64;
            trace.push(mean_loss);
            if tracer.is_enabled() {
                span.record_num("loss", mean_loss);
                span.record_num("grad_norm", last_grad_norm);
                let metrics = tracer.metrics();
                metrics.observe("cost.epoch_loss", mean_loss);
                metrics.observe("cost.grad_norm", last_grad_norm);
                metrics.set_gauge("cost.final_loss", mean_loss);
            }
        }
        (model, trace)
    }

    /// The pre-overhaul trainer, kept as the measured baseline for
    /// `nn_bench`: a freshly allocated graph per sample in
    /// [`Graph::set_reference_mode`] (the seed's one-node-per-primitive
    /// tape and its clone-and-transpose backward), features re-derived
    /// (tokenized, vocab-indexed, normalized) at every use, and the
    /// optimizer stepped on the raw gradient sum. Numerically it is the
    /// seed behavior; use [`WideDeep::fit`] for real training.
    pub fn fit_reference(
        samples: &[(FeatureInput, f64)],
        config: WideDeepConfig,
    ) -> (WideDeep, Vec<f64>) {
        let mut model = Self::bootstrap(samples, config);
        let mut adam = Adam::new(model.config.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(model.config.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut trace = Vec::with_capacity(model.config.epochs);
        for _ in 0..model.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(model.config.batch_size.max(1)) {
                model.store.zero_grads();
                for &i in chunk {
                    let (inp, y) = &samples[i];
                    let mut g = Graph::new();
                    g.set_reference_mode(true);
                    let pred = model.forward(&mut g, inp);
                    let target = ((y - model.y_mean) / model.y_std) as f32;
                    let t = g.input(Tensor::from_vec(1, 1, vec![target]));
                    let loss = g.mse(pred, t);
                    epoch_loss += g.value(loss).get(0, 0) as f64;
                    g.backward(loss);
                    g.accumulate_param_grads(&mut model.store);
                }
                adam.step(&mut model.store);
            }
            trace.push(epoch_loss / samples.len().max(1) as f64);
        }
        (model, trace)
    }

    /// Attach a tracer so inference paths (`predict_batch`, the encoder
    /// cache) emit `cost.forward_batch` / `cost.encode_cache` spans and
    /// cache counters.
    pub fn with_tracer(mut self, tracer: av_trace::Tracer) -> WideDeep {
        self.tracer = tracer;
        self
    }

    fn initialize(config: WideDeepConfig, vocab: Vocab) -> WideDeep {
        let nd = config.embed_dim;
        let token_dim = match config.ablation {
            Ablation::NKw => vocab.len().max(nd),
            Ablation::NStr => nd.max(128),
            _ => nd,
        };
        let mut store = ParamStore::with_seed(config.seed);
        let kw_embed = Embedding::new(&mut store, vocab.len(), nd);
        let char_embed = Embedding::new(&mut store, 128, nd);
        let conv1 = Conv3x1::new(&mut store, nd);
        let bn1 = BatchNorm::new(&mut store, nd);
        let conv2 = Conv3x1::new(&mut store, nd);
        let bn2 = BatchNorm::new(&mut store, nd);
        let lstm1 = Lstm::new(&mut store, token_dim, config.lstm1_hidden);
        let lstm2 = Lstm::new(&mut store, config.lstm1_hidden, config.lstm2_hidden);
        let wide = Linear::new(&mut store, NUM_FEATURES, config.wide_dim);

        // Deep-part input: Dc ++ Dm ++ De(query) ++ De(view).
        let schema_dim = match config.ablation {
            Ablation::NKw => vocab.len(),
            _ => nd,
        };
        let de_dim = match config.ablation {
            Ablation::NExp => token_dim,
            _ => config.lstm2_hidden,
        };
        let dr = NUM_FEATURES + schema_dim + 2 * de_dim;
        let fc1 = Linear::new(&mut store, dr, dr);
        let fc2 = Linear::new(&mut store, dr, dr);
        let fc3 = Linear::new(&mut store, dr, dr);
        let fc4 = Linear::new(&mut store, dr, dr);
        let fc5 = Linear::new(&mut store, config.wide_dim + dr, 16);
        let fc6 = Linear::new(&mut store, 16, 1);

        WideDeep {
            config,
            vocab,
            store,
            token_dim,
            kw_embed,
            char_embed,
            conv1,
            bn1,
            conv2,
            bn2,
            lstm1,
            lstm2,
            wide,
            fc1,
            fc2,
            fc3,
            fc4,
            fc5,
            fc6,
            x_mean: vec![0.0; NUM_FEATURES],
            x_std: vec![1.0; NUM_FEATURES],
            y_mean: 0.0,
            y_std: 1.0,
            encoder_cache: EncoderCache::default(),
            tracer: av_trace::Tracer::disabled(),
        }
    }

    /// Width of the schema encoding `Dm`.
    fn schema_dim(&self) -> usize {
        match self.config.ablation {
            Ablation::NKw => self.vocab.len(),
            _ => self.config.embed_dim,
        }
    }

    /// Width of a plan encoding `De`.
    fn de_dim(&self) -> usize {
        match self.config.ablation {
            Ablation::NExp => self.token_dim,
            _ => self.config.lstm2_hidden,
        }
    }

    // ---- one-time sample preparation --------------------------------------

    fn prepare(&self, input: &FeatureInput) -> PreparedInput {
        let x = numerical_features(input);
        let xn = normalize(&x, &self.x_mean, &self.x_std);
        let schema = self.prepare_schema(&schema_keywords(input));
        let (q_rows, v_rows) = plan_tokens(input);
        PreparedInput {
            xn,
            schema,
            query: self.prepare_plan(&q_rows),
            view: self.prepare_plan(&v_rows),
        }
    }

    fn prepare_plan(&self, rows: &[Vec<Token>]) -> PreparedPlan {
        let rows = &rows[..rows.len().min(self.config.max_operators)];
        PreparedPlan {
            rows: rows
                .iter()
                .map(|row| row.iter().map(|t| self.prepare_token(t)).collect())
                .collect(),
        }
    }

    fn prepare_token(&self, tok: &Token) -> PreparedToken {
        match tok {
            Token::Keyword(k) => PreparedToken::Keyword(self.vocab.index(k)),
            Token::Str(s) => {
                let chars: Vec<usize> = s
                    .bytes()
                    .take(self.config.max_string_len)
                    .map(|b| (b & 0x7f) as usize)
                    .collect();
                let chars = if chars.is_empty() { vec![0] } else { chars };
                match self.config.ablation {
                    Ablation::NStr => {
                        // One-hot chars, no CNN: the pooled char histogram.
                        let mut h = vec![0f32; self.token_dim];
                        for &c in &chars {
                            h[c] += 1.0 / chars.len() as f32;
                        }
                        PreparedToken::Histogram(h)
                    }
                    _ => PreparedToken::Chars(chars),
                }
            }
        }
    }

    fn prepare_schema(&self, keywords: &[String]) -> PreparedSchema {
        match self.config.ablation {
            Ablation::NKw => {
                let dim = self.vocab.len();
                let mut h = vec![0f32; dim];
                if !keywords.is_empty() {
                    for kw in keywords {
                        h[self.vocab.index(kw).min(dim - 1)] += 1.0 / keywords.len() as f32;
                    }
                }
                PreparedSchema::Histogram(h)
            }
            _ => PreparedSchema::Indices(
                keywords.iter().map(|k| self.vocab.index(k)).collect(),
            ),
        }
    }

    // ---- encoders ----------------------------------------------------------

    /// Encode one prepared token → `1×token_dim` node.
    fn encode_token(&self, g: &mut Graph, tok: &PreparedToken) -> NodeId {
        match tok {
            PreparedToken::Keyword(idx) => match self.config.ablation {
                Ablation::NKw => {
                    let mut t = g.scratch(1, self.token_dim);
                    t.set(0, (*idx).min(self.token_dim - 1), 1.0);
                    g.input(t)
                }
                _ => {
                    let e = self.kw_embed.forward_with(g, &self.store, &[*idx]);
                    self.pad_to_token_dim(g, e, self.config.embed_dim)
                }
            },
            PreparedToken::Chars(chars) => {
                // The String Encoding model (paper Fig. 6).
                let emb = self.char_embed.forward_with(g, &self.store, chars);
                let c1 = self.conv1.forward_with(g, &self.store, emb);
                let b1 = self.bn1.forward_with(g, &self.store, c1);
                let r1 = g.relu(b1);
                let c2 = self.conv2.forward_with(g, &self.store, r1);
                let b2 = self.bn2.forward_with(g, &self.store, c2);
                let r2 = g.relu(b2);
                let pooled = g.mean_rows(r2);
                self.pad_to_token_dim(g, pooled, self.config.embed_dim)
            }
            PreparedToken::Histogram(h) => {
                let mut t = g.scratch(1, self.token_dim);
                t.row_mut(0).copy_from_slice(h);
                g.input(t)
            }
        }
    }

    fn pad_to_token_dim(&self, g: &mut Graph, node: NodeId, width: usize) -> NodeId {
        if width == self.token_dim {
            return node;
        }
        let pad = g.scratch(1, self.token_dim - width);
        let pad = g.input(pad);
        g.concat_cols(&[node, pad])
    }

    /// Encode a prepared plan → `1×de_dim` node.
    fn encode_plan_prepared(&self, g: &mut Graph, plan: &PreparedPlan) -> NodeId {
        let mut op_vecs: Vec<NodeId> = Vec::with_capacity(plan.rows.len());
        let mut all_tokens: Vec<NodeId> = Vec::new();
        for row in &plan.rows {
            let toks: Vec<NodeId> = row.iter().map(|t| self.encode_token(g, t)).collect();
            if self.config.ablation == Ablation::NExp {
                all_tokens.extend(&toks);
            } else {
                op_vecs.push(self.lstm1.forward_with(g, &self.store, &toks));
            }
        }
        if self.config.ablation == Ablation::NExp {
            let stacked = g.concat_rows(&all_tokens);
            g.mean_rows(stacked)
        } else {
            self.lstm2.forward_with(g, &self.store, &op_vecs)
        }
    }

    /// Encode a prepared schema keyword set → `1×schema_dim` node (Fig. 7b).
    fn encode_schema_prepared(&self, g: &mut Graph, schema: &PreparedSchema) -> NodeId {
        match schema {
            PreparedSchema::Histogram(h) => {
                let mut t = g.scratch(1, h.len());
                t.row_mut(0).copy_from_slice(h);
                g.input(t)
            }
            PreparedSchema::Indices(indices) => {
                if indices.is_empty() {
                    let t = g.scratch(1, self.config.embed_dim);
                    return g.input(t);
                }
                let emb = self.kw_embed.forward_with(g, &self.store, indices);
                g.mean_rows(emb)
            }
        }
    }

    /// ResNet blocks + regressor shared by the per-sample and batched
    /// forward paths. `dw` is `n×wide_dim`, `dr` is `n×dr_dim`; every op is
    /// row-wise independent, so batched rows match single-sample runs
    /// bitwise.
    fn head(&self, g: &mut Graph, dw: NodeId, dr: NodeId) -> NodeId {
        // Two ResNet blocks: Z = Dr ⊕ ReLU(FC(ReLU(FC(Dr)))).
        let h = self.fc1.forward_with(g, &self.store, dr);
        let h = g.relu(h);
        let h = self.fc2.forward_with(g, &self.store, h);
        let h = g.relu(h);
        let z1 = g.add(dr, h);
        let h = self.fc3.forward_with(g, &self.store, z1);
        let h = g.relu(h);
        let h = self.fc4.forward_with(g, &self.store, h);
        let h = g.relu(h);
        let z2 = g.add(z1, h);

        // Regressor over the merged wide and deep outputs.
        let merged = g.concat_cols(&[dw, z2]);
        let h = self.fc5.forward_with(g, &self.store, merged);
        let h = g.relu(h);
        self.fc6.forward_with(g, &self.store, h)
    }

    /// Full forward pass over a prepared input → normalized `1×1` node.
    fn forward_prepared(&self, g: &mut Graph, p: &PreparedInput) -> NodeId {
        // Wide part.
        let mut dc_t = g.scratch(1, NUM_FEATURES);
        dc_t.row_mut(0).copy_from_slice(&p.xn);
        let dc = g.input(dc_t);
        let dw = self.wide.forward_with(g, &self.store, dc);

        // Deep part.
        let dm = self.encode_schema_prepared(g, &p.schema);
        let de_q = self.encode_plan_prepared(g, &p.query);
        let de_v = self.encode_plan_prepared(g, &p.view);
        let dr = g.concat_cols(&[dc, dm, de_q, de_v]);

        self.head(g, dw, dr)
    }

    /// Full forward pass → normalized prediction node (`1×1`).
    fn forward(&self, g: &mut Graph, input: &FeatureInput) -> NodeId {
        let p = self.prepare(input);
        self.forward_prepared(g, &p)
    }

    // ---- batched + memoized inference --------------------------------------

    /// `De(plan)` through the fingerprint-keyed cache. Encodings depend
    /// only on the plan and the (frozen) parameters, so a hit is bitwise
    /// identical to a cold encode.
    fn encode_plan_cached(&self, g: &mut Graph, plan: &av_plan::PlanNode) -> Tensor {
        let key = Fingerprint::of(plan).0;
        if let Some(t) = self
            .encoder_cache
            .map
            .lock()
            .expect("encoder cache poisoned")
            .get(&key)
        {
            self.encoder_cache.hits.fetch_add(1, Ordering::Relaxed);
            if self.tracer.is_enabled() {
                self.tracer.metrics().inc("cost.encode_cache.hit");
            }
            return t.clone();
        }
        self.encoder_cache.misses.fetch_add(1, Ordering::Relaxed);
        if self.tracer.is_enabled() {
            self.tracer.metrics().inc("cost.encode_cache.miss");
        }
        let enc = self.tracer.time("cost.encode_cache", || {
            let prepared = self.prepare_plan(&plan_feature_rows(plan));
            g.reset();
            let node = self.encode_plan_prepared(g, &prepared);
            g.value(node).clone()
        });
        self.encoder_cache
            .map
            .lock()
            .expect("encoder cache poisoned")
            .insert(key, enc.clone());
        enc
    }

    /// Cache hit/miss counts accumulated over the model's lifetime.
    pub fn encode_cache_stats(&self) -> (u64, u64) {
        (
            self.encoder_cache.hits.load(Ordering::Relaxed),
            self.encoder_cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Estimate many inputs in one pass: plan encodings are memoized by
    /// fingerprint (each distinct query/view is encoded once, not once per
    /// pair) and all rows go through a single batched head graph. Every
    /// head op is row-wise independent, so each returned value is bitwise
    /// identical to [`WideDeep::estimate_uncached`] on the same input.
    pub fn predict_batch(&self, inputs: &[FeatureInput]) -> Vec<f64> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let _span = self.tracer.span("cost.forward_batch");
        let n = inputs.len();
        let mut dc = Tensor::zeros(n, NUM_FEATURES);
        let mut dm = Tensor::zeros(n, self.schema_dim());
        let mut de_q = Tensor::zeros(n, self.de_dim());
        let mut de_v = Tensor::zeros(n, self.de_dim());
        let mut enc_graph = Graph::new();
        for (r, inp) in inputs.iter().enumerate() {
            let x = numerical_features(inp);
            let xn = normalize(&x, &self.x_mean, &self.x_std);
            dc.row_mut(r).copy_from_slice(&xn);
            // Schema depends on the input's table set, not a plan — encode
            // it directly (cheap mean-pool), reusing the arena graph.
            let schema = self.prepare_schema(&schema_keywords(inp));
            enc_graph.reset();
            let node = self.encode_schema_prepared(&mut enc_graph, &schema);
            dm.row_mut(r).copy_from_slice(enc_graph.value(node).row(0));
            let q = self.encode_plan_cached(&mut enc_graph, &inp.query);
            de_q.row_mut(r).copy_from_slice(q.row(0));
            let v = self.encode_plan_cached(&mut enc_graph, &inp.view);
            de_v.row_mut(r).copy_from_slice(v.row(0));
        }

        let mut g = Graph::new();
        let dc = g.input(dc);
        let dm = g.input(dm);
        let de_q = g.input(de_q);
        let de_v = g.input(de_v);
        let dw = self.wide.forward_with(&mut g, &self.store, dc);
        let dr = g.concat_cols(&[dc, dm, de_q, de_v]);
        let out = self.head(&mut g, dw, dr);
        (0..n)
            .map(|r| g.value(out).get(r, 0) as f64 * self.y_std + self.y_mean)
            .collect()
    }

    /// One-sample estimate bypassing the encoder cache and the batched
    /// head: the original whole-model graph per call. Baseline for
    /// `nn_bench` and the cache-consistency property tests.
    pub fn estimate_uncached(&self, input: &FeatureInput) -> f64 {
        let mut g = Graph::new();
        let pred = self.forward(&mut g, input);
        g.value(pred).get(0, 0) as f64 * self.y_std + self.y_mean
    }

    /// Number of trainable scalars (for documentation / sanity checks).
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// Bit-exact snapshot of every parameter scalar, in `ParamId` order.
    /// Lets determinism tests compare two trained models without exposing
    /// the store.
    pub fn param_bits(&self) -> Vec<u32> {
        self.store
            .values_iter()
            .flat_map(|t| t.as_slice().iter().map(|v| v.to_bits()))
            .collect()
    }
}

impl CostEstimator for WideDeep {
    fn estimate(&self, input: &FeatureInput) -> f64 {
        self.predict_batch(std::slice::from_ref(input))[0]
    }

    fn estimate_batch(&self, inputs: &[FeatureInput]) -> Vec<f64> {
        self.predict_batch(inputs)
    }

    fn name(&self) -> &'static str {
        self.config.ablation.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::TableMeta;
    use av_plan::{Expr, PlanBuilder};

    fn synth_samples(n: usize) -> Vec<(FeatureInput, f64)> {
        (0..n)
            .map(|i| {
                let rows = 100.0 * (1 + i % 10) as f64;
                let sel = 1 + (i % 4) as i64;
                let view = PlanBuilder::scan("ev", "t")
                    .filter(Expr::col("t.kind").eq(Expr::int(sel)))
                    .project(&[("t.uid", "t.uid")])
                    .build();
                let query = PlanBuilder::from_plan(view.clone())
                    .count_star(&["t.uid"], "n")
                    .build();
                let input = FeatureInput {
                    query,
                    view,
                    tables: vec![TableMeta {
                        name: "ev".into(),
                        rows,
                        columns: 3.0,
                        bytes: rows * 24.0,
                        avg_distinct_ratio: 0.4,
                        column_names: vec!["uid".into(), "kind".into(), "v".into()],
                        column_types: vec!["Int".into(), "Int".into(), "Int".into()],
                    }],
                };
                // Cost grows with data size and varies with the literal.
                let y = (1.0 + rows).ln() * (1.0 + 0.1 * sel as f64);
                (input, y)
            })
            .collect()
    }

    fn quick_config(ablation: Ablation) -> WideDeepConfig {
        WideDeepConfig {
            epochs: 12,
            batch_size: 8,
            embed_dim: 8,
            lstm1_hidden: 8,
            lstm2_hidden: 8,
            ablation,
            ..WideDeepConfig::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let samples = synth_samples(40);
        let (_, trace) = WideDeep::fit_traced(&samples, quick_config(Ablation::None));
        assert!(
            trace.last().expect("trace") < &trace[0],
            "loss should fall: {trace:?}"
        );
    }

    #[test]
    fn predictions_track_targets() {
        let samples = synth_samples(60);
        let model = WideDeep::fit(&samples, quick_config(Ablation::None));
        // In-sample fit should beat the mean-predictor clearly.
        let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let model_err: f64 = samples
            .iter()
            .map(|(inp, y)| (model.estimate(inp) - y).abs())
            .sum();
        let mean_err: f64 = ys.iter().map(|y| (y - mean).abs()).sum();
        assert!(
            model_err < mean_err,
            "model {model_err} should beat mean predictor {mean_err}"
        );
    }

    #[test]
    fn all_ablations_run_forward_and_backward() {
        let samples = synth_samples(10);
        for ab in [Ablation::None, Ablation::NKw, Ablation::NStr, Ablation::NExp] {
            let mut cfg = quick_config(ab);
            cfg.epochs = 2;
            let model = WideDeep::fit(&samples, cfg);
            let pred = model.estimate(&samples[0].0);
            assert!(pred.is_finite(), "{} produced {pred}", ab.name());
        }
    }

    #[test]
    fn estimate_is_deterministic() {
        let samples = synth_samples(20);
        let model = WideDeep::fit(&samples, quick_config(Ablation::None));
        let a = model.estimate(&samples[3].0);
        let b = model.estimate(&samples[3].0);
        assert_eq!(a, b);
    }

    #[test]
    fn ablation_names_match_paper() {
        assert_eq!(Ablation::None.name(), "W-D");
        assert_eq!(Ablation::NKw.name(), "N-Kw");
        assert_eq!(Ablation::NStr.name(), "N-Str");
        assert_eq!(Ablation::NExp.name(), "N-Exp");
    }

    #[test]
    fn parameter_count_is_positive_and_stable() {
        let samples = synth_samples(5);
        let mut cfg = quick_config(Ablation::None);
        cfg.epochs = 1;
        let m1 = WideDeep::fit(&samples, cfg.clone());
        let m2 = WideDeep::fit(&samples, cfg);
        assert!(m1.parameter_count() > 1000);
        assert_eq!(m1.parameter_count(), m2.parameter_count());
    }
}
