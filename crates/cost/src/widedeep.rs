//! The Wide-Deep cost model (paper Section IV-B) and its ablations.
//!
//! Architecture, following Fig. 5:
//!
//! ```text
//! numerical features ──normalize──► Dc ──affine (Mw)──► Dw ─┐
//!                                   │                       ├─► FC5 → ReLU → FC6 → Ŷ
//! table schema ──keyword-embed──► avg pool ──► Dm ─┐        │
//! query plan  ──token encode ► LSTM1 ► LSTM2 ─► De_q ├─► Dr ─► ResNet×2 ─► Z2 ┘
//! view plan   ──token encode ► LSTM1 ► LSTM2 ─► De_v ┘
//! ```
//!
//! Token encoding: keywords through a shared Keyword Embedding; literal
//! strings through the String Encoding model (char embedding → two
//! `Conv3×1 → BatchNorm → ReLU` blocks → average pooling, Fig. 6).
//!
//! Ablations (paper Section VI-A):
//! - **N-Kw** — one-hot vectors replace keyword embeddings;
//! - **N-Str** — one-hot char histograms replace char embeddings and the CNN;
//! - **N-Exp** — average pooling replaces both LSTMs.

use crate::baselines::{normalization_stats, normalize, scalar_stats};
use crate::features::{numerical_features, plan_tokens, schema_keywords, FeatureInput, NUM_FEATURES};
use crate::vocab::Vocab;
use crate::CostEstimator;
use av_nn::{Adam, BatchNorm, Conv3x1, Embedding, Graph, Linear, Lstm, NodeId, ParamStore, Tensor};
use av_plan::Token;
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which part of the model is ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Full Wide-Deep (`W-D`).
    None,
    /// One-hot keywords (`N-Kw`).
    NKw,
    /// One-hot chars, no CNN (`N-Str`).
    NStr,
    /// Average pooling instead of the LSTMs (`N-Exp`).
    NExp,
}

impl Ablation {
    /// Display name matching the paper's Table III columns.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::None => "W-D",
            Ablation::NKw => "N-Kw",
            Ablation::NStr => "N-Str",
            Ablation::NExp => "N-Exp",
        }
    }
}

/// Hyper-parameters (paper Table II supplies `epochs`, `lr`, `bs`).
#[derive(Debug, Clone)]
pub struct WideDeepConfig {
    /// Dense embedding width `n_d`.
    pub embed_dim: usize,
    /// Hidden width of the per-operator LSTM₁.
    pub lstm1_hidden: usize,
    /// Hidden width of the plan-level LSTM₂.
    pub lstm2_hidden: usize,
    /// Output width of the wide affine transform.
    pub wide_dim: usize,
    /// Training epochs `I`.
    pub epochs: usize,
    /// Adam learning rate `lr`.
    pub lr: f32,
    /// Batch size `b_s` (gradient-accumulation granularity).
    pub batch_size: usize,
    /// Truncation cap on operator rows per plan (speed guard).
    pub max_operators: usize,
    /// Truncation cap on chars per string literal.
    pub max_string_len: usize,
    pub seed: u64,
    pub ablation: Ablation,
}

impl Default for WideDeepConfig {
    fn default() -> Self {
        WideDeepConfig {
            embed_dim: 12,
            lstm1_hidden: 16,
            lstm2_hidden: 16,
            wide_dim: 8,
            epochs: 25,
            lr: 5e-3,
            batch_size: 16,
            max_operators: 16,
            max_string_len: 16,
            seed: 17,
            ablation: Ablation::None,
        }
    }
}

/// A trained Wide-Deep cost model.
pub struct WideDeep {
    config: WideDeepConfig,
    vocab: Vocab,
    store: ParamStore,
    /// Width of one encoded token (depends on the ablation).
    token_dim: usize,
    kw_embed: Embedding,
    char_embed: Embedding,
    conv1: Conv3x1,
    bn1: BatchNorm,
    conv2: Conv3x1,
    bn2: BatchNorm,
    lstm1: Lstm,
    lstm2: Lstm,
    wide: Linear,
    fc1: Linear,
    fc2: Linear,
    fc3: Linear,
    fc4: Linear,
    fc5: Linear,
    fc6: Linear,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl WideDeep {
    /// Train on labelled `(input, A(q|v))` pairs (paper Algorithm 1).
    pub fn fit(samples: &[(FeatureInput, f64)], config: WideDeepConfig) -> WideDeep {
        Self::fit_traced(samples, config).0
    }

    /// Train, also returning the per-epoch training loss trace.
    pub fn fit_traced(
        samples: &[(FeatureInput, f64)],
        config: WideDeepConfig,
    ) -> (WideDeep, Vec<f64>) {
        Self::fit_with_tracer(samples, config, &av_trace::Tracer::disabled())
    }

    /// Train with full observability: one `cost.epoch` span per epoch
    /// (carrying mean loss and the last batch's gradient norm), per-batch
    /// `cost.adam_step` timings, and `cost.epoch_loss` / `cost.grad_norm`
    /// histograms in the tracer's metrics registry.
    pub fn fit_with_tracer(
        samples: &[(FeatureInput, f64)],
        config: WideDeepConfig,
        tracer: &av_trace::Tracer,
    ) -> (WideDeep, Vec<f64>) {
        // Vocabulary from the training split only.
        let mut vocab = Vocab::new();
        for (inp, _) in samples {
            let (q, v) = plan_tokens(inp);
            for row in q.iter().chain(v.iter()) {
                for tok in row {
                    if let Token::Keyword(k) = tok {
                        vocab.add(k);
                    }
                }
            }
            for kw in schema_keywords(inp) {
                vocab.add(&kw);
            }
        }

        let mut model = Self::initialize(config, vocab);

        // Normalization statistics (Algorithm 1 line 8 uses per-feature
        // z-normalization; we compute the stats over the training split).
        let xs: Vec<Vec<f64>> = samples
            .iter()
            .map(|(inp, _)| numerical_features(inp).to_vec())
            .collect();
        let (x_mean, x_std) = normalization_stats(&xs, NUM_FEATURES);
        let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
        let (y_mean, y_std) = scalar_stats(&ys);
        model.x_mean = x_mean;
        model.x_std = x_std;
        model.y_mean = y_mean;
        model.y_std = y_std;

        let mut adam = Adam::new(model.config.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(model.config.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut trace = Vec::with_capacity(model.config.epochs);

        for epoch in 0..model.config.epochs {
            let span = tracer.span("cost.epoch");
            span.record_num("epoch", epoch as f64);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut last_grad_norm = 0.0;
            for chunk in order.chunks(model.config.batch_size.max(1)) {
                model.store.zero_grads();
                for &i in chunk {
                    let (inp, y) = &samples[i];
                    let mut g = Graph::new();
                    let pred = model.forward(&mut g, inp);
                    let target = ((y - model.y_mean) / model.y_std) as f32;
                    let t = g.input(Tensor::from_vec(1, 1, vec![target]));
                    let loss = g.mse(pred, t);
                    epoch_loss += g.value(loss).get(0, 0) as f64;
                    g.backward(loss);
                    g.accumulate_param_grads(&mut model.store);
                }
                if tracer.is_enabled() {
                    last_grad_norm = model.store.grad_norm();
                }
                tracer.time("cost.adam_step", || adam.step(&mut model.store));
            }
            let mean_loss = epoch_loss / samples.len().max(1) as f64;
            trace.push(mean_loss);
            if tracer.is_enabled() {
                span.record_num("loss", mean_loss);
                span.record_num("grad_norm", last_grad_norm);
                let metrics = tracer.metrics();
                metrics.observe("cost.epoch_loss", mean_loss);
                metrics.observe("cost.grad_norm", last_grad_norm);
                metrics.set_gauge("cost.final_loss", mean_loss);
            }
        }
        (model, trace)
    }

    fn initialize(config: WideDeepConfig, vocab: Vocab) -> WideDeep {
        let nd = config.embed_dim;
        let token_dim = match config.ablation {
            Ablation::NKw => vocab.len().max(nd),
            Ablation::NStr => nd.max(128),
            _ => nd,
        };
        let mut store = ParamStore::with_seed(config.seed);
        let kw_embed = Embedding::new(&mut store, vocab.len(), nd);
        let char_embed = Embedding::new(&mut store, 128, nd);
        let conv1 = Conv3x1::new(&mut store, nd);
        let bn1 = BatchNorm::new(&mut store, nd);
        let conv2 = Conv3x1::new(&mut store, nd);
        let bn2 = BatchNorm::new(&mut store, nd);
        let lstm1 = Lstm::new(&mut store, token_dim, config.lstm1_hidden);
        let lstm2 = Lstm::new(&mut store, config.lstm1_hidden, config.lstm2_hidden);
        let wide = Linear::new(&mut store, NUM_FEATURES, config.wide_dim);

        // Deep-part input: Dc ++ Dm ++ De(query) ++ De(view).
        let schema_dim = match config.ablation {
            Ablation::NKw => vocab.len(),
            _ => nd,
        };
        let de_dim = match config.ablation {
            Ablation::NExp => token_dim,
            _ => config.lstm2_hidden,
        };
        let dr = NUM_FEATURES + schema_dim + 2 * de_dim;
        let fc1 = Linear::new(&mut store, dr, dr);
        let fc2 = Linear::new(&mut store, dr, dr);
        let fc3 = Linear::new(&mut store, dr, dr);
        let fc4 = Linear::new(&mut store, dr, dr);
        let fc5 = Linear::new(&mut store, config.wide_dim + dr, 16);
        let fc6 = Linear::new(&mut store, 16, 1);

        WideDeep {
            config,
            vocab,
            store,
            token_dim,
            kw_embed,
            char_embed,
            conv1,
            bn1,
            conv2,
            bn2,
            lstm1,
            lstm2,
            wide,
            fc1,
            fc2,
            fc3,
            fc4,
            fc5,
            fc6,
            x_mean: vec![0.0; NUM_FEATURES],
            x_std: vec![1.0; NUM_FEATURES],
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    /// Encode one keyword token → `1×token_dim` node.
    fn encode_keyword(&self, g: &mut Graph, kw: &str) -> NodeId {
        let idx = self.vocab.index(kw);
        match self.config.ablation {
            Ablation::NKw => {
                let mut t = Tensor::zeros(1, self.token_dim);
                t.set(0, idx.min(self.token_dim - 1), 1.0);
                g.input(t)
            }
            _ => {
                let e = self.kw_embed.forward_with(g, &self.store, &[idx]);
                self.pad_to_token_dim(g, e, self.config.embed_dim)
            }
        }
    }

    /// Encode one string literal → `1×token_dim` node (paper Fig. 6).
    fn encode_string(&self, g: &mut Graph, s: &str) -> NodeId {
        let chars: Vec<usize> = s
            .bytes()
            .take(self.config.max_string_len)
            .map(|b| (b & 0x7f) as usize)
            .collect();
        let chars = if chars.is_empty() { vec![0] } else { chars };
        match self.config.ablation {
            Ablation::NStr => {
                // One-hot chars, no CNN: the pooled char histogram.
                let mut t = Tensor::zeros(1, self.token_dim);
                for &c in &chars {
                    *t.get_mut(0, c) += 1.0 / chars.len() as f32;
                }
                g.input(t)
            }
            _ => {
                let emb = self.char_embed.forward_with(g, &self.store, &chars);
                let c1 = self.conv1.forward_with(g, &self.store, emb);
                let b1 = self.bn1.forward_with(g, &self.store, c1);
                let r1 = g.relu(b1);
                let c2 = self.conv2.forward_with(g, &self.store, r1);
                let b2 = self.bn2.forward_with(g, &self.store, c2);
                let r2 = g.relu(b2);
                let pooled = g.mean_rows(r2);
                self.pad_to_token_dim(g, pooled, self.config.embed_dim)
            }
        }
    }

    fn pad_to_token_dim(&self, g: &mut Graph, node: NodeId, width: usize) -> NodeId {
        if width == self.token_dim {
            return node;
        }
        let pad = g.input(Tensor::zeros(1, self.token_dim - width));
        g.concat_cols(&[node, pad])
    }

    /// Encode a plan (its token rows) → `1×de_dim` node.
    fn encode_plan(&self, g: &mut Graph, rows: &[Vec<Token>]) -> NodeId {
        let rows = &rows[..rows.len().min(self.config.max_operators)];
        let mut op_vecs: Vec<NodeId> = Vec::with_capacity(rows.len());
        let mut all_tokens: Vec<NodeId> = Vec::new();
        for row in rows {
            let toks: Vec<NodeId> = row
                .iter()
                .map(|t| match t {
                    Token::Keyword(k) => self.encode_keyword(g, k),
                    Token::Str(s) => self.encode_string(g, s),
                })
                .collect();
            if self.config.ablation == Ablation::NExp {
                all_tokens.extend(&toks);
            } else {
                op_vecs.push(self.lstm1.forward_with(g, &self.store, &toks));
            }
        }
        if self.config.ablation == Ablation::NExp {
            let stacked = g.concat_rows(&all_tokens);
            g.mean_rows(stacked)
        } else {
            self.lstm2.forward_with(g, &self.store, &op_vecs)
        }
    }

    /// Encode the schema keyword set → `1×schema_dim` node (Fig. 7b).
    fn encode_schema(&self, g: &mut Graph, keywords: &[String]) -> NodeId {
        match self.config.ablation {
            Ablation::NKw => {
                let dim = self.vocab.len();
                let mut t = Tensor::zeros(1, dim);
                if !keywords.is_empty() {
                    for kw in keywords {
                        let idx = self.vocab.index(kw).min(dim - 1);
                        *t.get_mut(0, idx) += 1.0 / keywords.len() as f32;
                    }
                }
                g.input(t)
            }
            _ => {
                if keywords.is_empty() {
                    return g.input(Tensor::zeros(1, self.config.embed_dim));
                }
                let indices: Vec<usize> =
                    keywords.iter().map(|k| self.vocab.index(k)).collect();
                let emb = self.kw_embed.forward_with(g, &self.store, &indices);
                g.mean_rows(emb)
            }
        }
    }

    /// Full forward pass → normalized prediction node (`1×1`).
    fn forward(&self, g: &mut Graph, input: &FeatureInput) -> NodeId {
        // Wide part.
        let x = numerical_features(input);
        let xn = normalize(&x, &self.x_mean, &self.x_std);
        let dc = g.input(Tensor::from_rows(&[&xn]));
        let dw = self.wide.forward_with(g, &self.store, dc);

        // Deep part.
        let dm = self.encode_schema(g, &schema_keywords(input));
        let (q_rows, v_rows) = plan_tokens(input);
        let de_q = self.encode_plan(g, &q_rows);
        let de_v = self.encode_plan(g, &v_rows);
        let dr = g.concat_cols(&[dc, dm, de_q, de_v]);

        // Two ResNet blocks: Z = Dr ⊕ ReLU(FC(ReLU(FC(Dr)))).
        let h = self.fc1.forward_with(g, &self.store, dr);
        let h = g.relu(h);
        let h = self.fc2.forward_with(g, &self.store, h);
        let h = g.relu(h);
        let z1 = g.add(dr, h);
        let h = self.fc3.forward_with(g, &self.store, z1);
        let h = g.relu(h);
        let h = self.fc4.forward_with(g, &self.store, h);
        let h = g.relu(h);
        let z2 = g.add(z1, h);

        // Regressor over the merged wide and deep outputs.
        let merged = g.concat_cols(&[dw, z2]);
        let h = self.fc5.forward_with(g, &self.store, merged);
        let h = g.relu(h);
        self.fc6.forward_with(g, &self.store, h)
    }

    /// Number of trainable scalars (for documentation / sanity checks).
    pub fn parameter_count(&self) -> usize {
        self.store.scalar_count()
    }
}

impl CostEstimator for WideDeep {
    fn estimate(&self, input: &FeatureInput) -> f64 {
        let mut g = Graph::new();
        let pred = self.forward(&mut g, input);
        g.value(pred).get(0, 0) as f64 * self.y_std + self.y_mean
    }

    fn name(&self) -> &'static str {
        self.config.ablation.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::TableMeta;
    use av_plan::{Expr, PlanBuilder};

    fn synth_samples(n: usize) -> Vec<(FeatureInput, f64)> {
        (0..n)
            .map(|i| {
                let rows = 100.0 * (1 + i % 10) as f64;
                let sel = 1 + (i % 4) as i64;
                let view = PlanBuilder::scan("ev", "t")
                    .filter(Expr::col("t.kind").eq(Expr::int(sel)))
                    .project(&[("t.uid", "t.uid")])
                    .build();
                let query = PlanBuilder::from_plan(view.clone())
                    .count_star(&["t.uid"], "n")
                    .build();
                let input = FeatureInput {
                    query,
                    view,
                    tables: vec![TableMeta {
                        name: "ev".into(),
                        rows,
                        columns: 3.0,
                        bytes: rows * 24.0,
                        avg_distinct_ratio: 0.4,
                        column_names: vec!["uid".into(), "kind".into(), "v".into()],
                        column_types: vec!["Int".into(), "Int".into(), "Int".into()],
                    }],
                };
                // Cost grows with data size and varies with the literal.
                let y = (1.0 + rows).ln() * (1.0 + 0.1 * sel as f64);
                (input, y)
            })
            .collect()
    }

    fn quick_config(ablation: Ablation) -> WideDeepConfig {
        WideDeepConfig {
            epochs: 12,
            batch_size: 8,
            embed_dim: 8,
            lstm1_hidden: 8,
            lstm2_hidden: 8,
            ablation,
            ..WideDeepConfig::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let samples = synth_samples(40);
        let (_, trace) = WideDeep::fit_traced(&samples, quick_config(Ablation::None));
        assert!(
            trace.last().expect("trace") < &trace[0],
            "loss should fall: {trace:?}"
        );
    }

    #[test]
    fn predictions_track_targets() {
        let samples = synth_samples(60);
        let model = WideDeep::fit(&samples, quick_config(Ablation::None));
        // In-sample fit should beat the mean-predictor clearly.
        let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let model_err: f64 = samples
            .iter()
            .map(|(inp, y)| (model.estimate(inp) - y).abs())
            .sum();
        let mean_err: f64 = ys.iter().map(|y| (y - mean).abs()).sum();
        assert!(
            model_err < mean_err,
            "model {model_err} should beat mean predictor {mean_err}"
        );
    }

    #[test]
    fn all_ablations_run_forward_and_backward() {
        let samples = synth_samples(10);
        for ab in [Ablation::None, Ablation::NKw, Ablation::NStr, Ablation::NExp] {
            let mut cfg = quick_config(ab);
            cfg.epochs = 2;
            let model = WideDeep::fit(&samples, cfg);
            let pred = model.estimate(&samples[0].0);
            assert!(pred.is_finite(), "{} produced {pred}", ab.name());
        }
    }

    #[test]
    fn estimate_is_deterministic() {
        let samples = synth_samples(20);
        let model = WideDeep::fit(&samples, quick_config(Ablation::None));
        let a = model.estimate(&samples[3].0);
        let b = model.estimate(&samples[3].0);
        assert_eq!(a, b);
    }

    #[test]
    fn ablation_names_match_paper() {
        assert_eq!(Ablation::None.name(), "W-D");
        assert_eq!(Ablation::NKw.name(), "N-Kw");
        assert_eq!(Ablation::NStr.name(), "N-Str");
        assert_eq!(Ablation::NExp.name(), "N-Exp");
    }

    #[test]
    fn parameter_count_is_positive_and_stable() {
        let samples = synth_samples(5);
        let mut cfg = quick_config(Ablation::None);
        cfg.epochs = 1;
        let m1 = WideDeep::fit(&samples, cfg.clone());
        let m2 = WideDeep::fit(&samples, cfg);
        assert!(m1.parameter_count() > 1000);
        assert_eq!(m1.parameter_count(), m2.parameter_count());
    }
}
