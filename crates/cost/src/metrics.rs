//! Evaluation metrics for cost estimators (paper Section VI-A).

/// Mean Absolute Error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty evaluation set");
    truth
        .iter()
        .zip(pred)
        .map(|(y, yh)| (y - yh).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean Absolute Percentage Error, in percent. Zero-valued truths are
/// guarded with a small epsilon denominator.
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty evaluation set");
    truth
        .iter()
        .zip(pred)
        .map(|(y, yh)| ((y - yh) / y.abs().max(1e-12)).abs())
        .sum::<f64>()
        / truth.len() as f64
        * 100.0
}

/// MAPE restricted to targets with `|truth| ≥ floor`. Rewritten-query costs
/// can be legitimately ~0 (a query collapsing to an empty view scan), and a
/// percentage error against ~0 is meaningless; the Table III harness floors
/// at a small fraction of the mean cost. Returns `NaN` when nothing
/// survives the floor.
pub fn mape_floored(truth: &[f64], pred: &[f64], floor: f64) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let kept: Vec<(f64, f64)> = truth
        .iter()
        .zip(pred)
        .filter(|(y, _)| y.abs() >= floor)
        .map(|(y, yh)| (*y, *yh))
        .collect();
    if kept.is_empty() {
        return f64::NAN;
    }
    kept.iter()
        .map(|(y, yh)| ((y - yh) / y.abs()).abs())
        .sum::<f64>()
        / kept.len() as f64
        * 100.0
}

/// Split indices into train/validation/test with the paper's 7:1:2 ratio,
/// deterministically shuffled by seed.
pub fn split_7_1_2(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    use rand::seq::SliceRandom;
    use rand_chacha::rand_core::SeedableRng;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = n * 7 / 10;
    let n_val = n / 10;
    let train = idx[..n_train].to_vec();
    let val = idx[n_train..n_train + n_val].to_vec();
    let test = idx[n_train + n_val..].to_vec();
    (train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_of_perfect_prediction_is_zero() {
        assert_eq!(mae(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[1.0, 3.0], &[2.0, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mape_known_value() {
        // errors: 50% and 25% → mean 37.5%
        assert!((mape(&[2.0, 4.0], &[1.0, 3.0]) - 37.5).abs() < 1e-9);
    }

    #[test]
    fn split_covers_everything_disjointly() {
        let (tr, va, te) = split_7_1_2(100, 9);
        assert_eq!(tr.len(), 70);
        assert_eq!(va.len(), 10);
        assert_eq!(te.len(), 20);
        let mut all: Vec<usize> = tr.iter().chain(&va).chain(&te).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(split_7_1_2(50, 1), split_7_1_2(50, 1));
        assert_ne!(split_7_1_2(50, 1).0, split_7_1_2(50, 2).0);
    }
}
