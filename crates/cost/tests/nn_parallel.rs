//! Determinism properties of the batched/parallel NN compute path:
//!
//! - `fit` with `threads = 1` and `threads = 4` produces bitwise-identical
//!   parameters and loss traces for a fixed seed (per-sample gradient
//!   blocks are reduced in fixed sample order, so the thread count never
//!   touches f32 association);
//! - `predict_batch` equals per-sample `estimate` equals the uncached
//!   whole-graph forward, bitwise (batched head rows are independent, and
//!   a memoized encoding is the same tensor a cold encode produces);
//! - the encoder cache serves hits after a cold pass without changing any
//!   prediction.

use av_cost::widedeep::{WideDeep, WideDeepConfig};
use av_cost::{CostEstimator, FeatureInput, TableMeta};
use av_plan::{Expr, PlanBuilder};

/// Labelled pairs over a tiny synthetic schema: many (query, view) pairs
/// sharing a handful of distinct plans, like a real benefit matrix.
fn synth_samples(n: usize) -> Vec<(FeatureInput, f64)> {
    (0..n)
        .map(|i| {
            let rows = 100.0 * (1 + i % 10) as f64;
            let sel = 1 + (i % 4) as i64;
            let view = PlanBuilder::scan("ev", "t")
                .filter(Expr::col("t.kind").eq(Expr::int(sel)))
                .project(&[("t.uid", "t.uid")])
                .build();
            let query = PlanBuilder::from_plan(view.clone())
                .count_star(&["t.uid"], "n")
                .build();
            let input = FeatureInput {
                query,
                view,
                tables: vec![TableMeta {
                    name: "ev".into(),
                    rows,
                    columns: 3.0,
                    bytes: rows * 24.0,
                    avg_distinct_ratio: 0.4,
                    column_names: vec!["uid".into(), "kind".into(), "v".into()],
                    column_types: vec!["Int".into(), "Int".into(), "Int".into()],
                }],
            };
            let y = (1.0 + rows).ln() * (1.0 + 0.1 * sel as f64);
            (input, y)
        })
        .collect()
}

fn config(threads: usize) -> WideDeepConfig {
    WideDeepConfig {
        epochs: 4,
        batch_size: 8,
        embed_dim: 8,
        lstm1_hidden: 8,
        lstm2_hidden: 8,
        threads,
        ..WideDeepConfig::default()
    }
}

#[test]
fn serial_and_parallel_fit_are_bitwise_identical() {
    let samples = synth_samples(33);
    let (serial, serial_trace) = WideDeep::fit_traced(&samples, config(1));
    let (parallel, parallel_trace) = WideDeep::fit_traced(&samples, config(4));
    assert_eq!(
        serial.param_bits(),
        parallel.param_bits(),
        "threads=4 must reproduce threads=1 parameters bit for bit"
    );
    let serial_bits: Vec<u64> = serial_trace.iter().map(|l| l.to_bits()).collect();
    let parallel_bits: Vec<u64> = parallel_trace.iter().map(|l| l.to_bits()).collect();
    assert_eq!(serial_bits, parallel_bits, "loss traces must match bit for bit");
}

#[test]
fn refit_with_same_seed_is_reproducible() {
    let samples = synth_samples(20);
    let a = WideDeep::fit(&samples, config(2));
    let b = WideDeep::fit(&samples, config(2));
    assert_eq!(a.param_bits(), b.param_bits());
}

#[test]
fn predict_batch_matches_per_sample_estimate_bitwise() {
    let samples = synth_samples(24);
    let model = WideDeep::fit(&samples, config(1));
    let inputs: Vec<FeatureInput> = samples.iter().map(|(i, _)| i.clone()).collect();
    let batched = model.predict_batch(&inputs);
    for (inp, b) in inputs.iter().zip(&batched) {
        let single = model.estimate(inp);
        assert_eq!(
            single.to_bits(),
            b.to_bits(),
            "batched row must equal per-sample estimate bitwise"
        );
    }
}

#[test]
fn memoized_estimate_matches_uncached_forward_bitwise() {
    let samples = synth_samples(24);
    let model = WideDeep::fit(&samples, config(1));
    for (inp, _) in &samples {
        let cold = model.estimate_uncached(inp);
        let cached = model.estimate(inp);
        assert_eq!(
            cold.to_bits(),
            cached.to_bits(),
            "cache path must equal the whole-graph forward bitwise"
        );
    }
}

#[test]
fn encoder_cache_hits_after_cold_pass_and_preserves_results() {
    let samples = synth_samples(16);
    let model = WideDeep::fit(&samples, config(1));
    let inputs: Vec<FeatureInput> = samples.iter().map(|(i, _)| i.clone()).collect();
    let cold = model.predict_batch(&inputs);
    let (_, misses_after_cold) = model.encode_cache_stats();
    // 16 samples share 4 distinct views and 4 distinct queries.
    assert!(
        misses_after_cold <= 8,
        "cold pass should encode each distinct plan once, got {misses_after_cold} misses"
    );
    let warm = model.predict_batch(&inputs);
    let (hits, misses) = model.encode_cache_stats();
    assert_eq!(misses, misses_after_cold, "warm pass must not re-encode");
    assert!(hits >= inputs.len() as u64, "warm pass must be cache-served");
    let cold_bits: Vec<u64> = cold.iter().map(|v| v.to_bits()).collect();
    let warm_bits: Vec<u64> = warm.iter().map(|v| v.to_bits()).collect();
    assert_eq!(cold_bits, warm_bits);
}

#[test]
fn estimate_batch_trait_default_agrees_with_override() {
    // The trait's default maps estimate(); WideDeep overrides with the
    // batched path. Both must agree bitwise.
    let samples = synth_samples(12);
    let model = WideDeep::fit(&samples, config(1));
    let inputs: Vec<FeatureInput> = samples.iter().map(|(i, _)| i.clone()).collect();
    let via_trait = CostEstimator::estimate_batch(&model, &inputs);
    let mapped: Vec<f64> = inputs.iter().map(|i| model.estimate(i)).collect();
    let a: Vec<u64> = via_trait.iter().map(|v| v.to_bits()).collect();
    let b: Vec<u64> = mapped.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b);
}
