//! Dense row-major `f32` matrices and the parameter store.
//!
//! The matmul-family kernels dispatch into [`crate::simd`] and share its
//! fixed-order reduction contract: per output element, a fused
//! multiply-add chain over the shared dimension in ascending order (with
//! exact-zero terms skipped), or — for the dot-product kernel
//! [`Tensor::matmul_bt_into`] — 8 fixed lane accumulators folded in a
//! deterministic order. Results are bitwise identical across SIMD
//! backends, blocking factors, and thread counts, which is what keeps
//! `fit(threads=N) == serial` and the executor's determinism properties
//! intact.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// Row vectors (`1×n`) represent embeddings and hidden states; matrices
/// represent weights, stacked sequences and batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor {
            data: vec![v; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { data, rows, cols }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Tensor {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// SIMD matrix product `out = self × other`, writing into a caller
    /// -owned (arena-recycled) output tensor.
    ///
    /// Dispatches to [`crate::simd::matmul_rows`]: register-tiled AVX2+FMA
    /// strips where the CPU has them, an unrolled portable `mul_add` loop
    /// otherwise. Per output cell the value is defined as an ascending-`k`
    /// fused multiply-add chain with exact-zero terms skipped, so the
    /// result is bitwise identical to the scalar reference
    /// ([`Tensor::matmul_reference`]) on every backend and independent of
    /// strip width. (It is *not* bitwise identical to the non-fused seed
    /// kernel [`Tensor::matmul_naive`], which rounds after every multiply;
    /// `matmul_naive` survives only as the bench baseline.)
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        out.zero();
        crate::simd::matmul_rows(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Scalar reference for [`Tensor::matmul_into`]: the simplest loop that
    /// satisfies the fixed-order fma contract. Property tests and the bench
    /// bitwise gates pin the SIMD kernels against this.
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        crate::simd::matmul_rows_ref(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `out = v × self` for a row vector `v` (`1×k` over a `k×n` matrix),
    /// writing into a `1×n` output. Exactly [`Tensor::matmul_into`]
    /// restricted to one row — ascending-`k` fma chain, zero-skip — so the
    /// result is bitwise identical to wrapping `v` in a `1×k` tensor and
    /// calling `matmul_into`.
    pub fn left_vecmat_into(&self, v: &[f32], out: &mut Tensor) {
        assert_eq!(v.len(), self.rows, "left_vecmat shape mismatch");
        assert_eq!(out.shape(), (1, self.cols), "left_vecmat output mismatch");
        out.zero();
        crate::simd::vecmat_row(v, &self.data, self.cols, &mut out.data);
    }

    /// `out = self × otherᵀ` without materializing the transpose: each
    /// output cell is a dot product of two rows, which streams both inputs
    /// contiguously. Each dot is reduced through 8 fixed lane accumulators
    /// (lane `l` sums terms `k ≡ l mod 8` ascending, lanes folded
    /// sequentially — [`crate::simd::dot_lanes_ref`]), so the result is
    /// bitwise identical across SIMD backends and output tilings.
    pub fn matmul_bt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_bt shape mismatch: {:?} × {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_bt output shape mismatch"
        );
        crate::simd::dot_bt(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
    }

    /// `out = selfᵀ × other` without materializing the transpose: row `i`
    /// of `self` scatters into every output row it touches, so both inputs
    /// stream contiguously. Per output element the accumulation is an
    /// ascending-row fma chain with zero-skip (the axpy contract), bitwise
    /// identical across SIMD backends.
    pub fn at_matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "at_matmul shape mismatch: {:?}ᵀ × {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "at_matmul output shape mismatch"
        );
        out.zero();
        crate::simd::scatter_at(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Fused bias-add: `self[r, c] += bias[0, c]` for every row, one pass
    /// over the output instead of a separate broadcast node. Applied after
    /// [`Tensor::matmul_into`], the sum order per cell (`Σ_k a·b` first,
    /// `+ bias` last) matches the unfused matmul→add_row pipeline exactly.
    pub fn add_row_assign(&mut self, bias: &Tensor) {
        assert_eq!(bias.rows(), 1, "add_row_assign needs a 1×c bias");
        assert_eq!(self.cols, bias.cols(), "add_row_assign column mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(bias.as_slice()) {
                *x += b;
            }
        }
    }

    /// Fused in-place ReLU (`max(x, 0)` elementwise).
    pub fn relu_assign(&mut self) {
        for x in &mut self.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// Column sums → accumulated into a `1×c` output (the bias gradient of
    /// a fused affine layer). Rows accumulate in ascending order.
    pub fn col_sum_into(&self, out: &mut Tensor) {
        assert_eq!(out.shape(), (1, self.cols), "col_sum output shape mismatch");
        out.zero();
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &x) in out.as_mut_slice().iter_mut().zip(row) {
                *o += x;
            }
        }
    }

    /// Consume the tensor, returning its backing buffer (for arena reuse).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Copy `src` into this tensor, reshaping it (the backing buffer is
    /// reused; it only reallocates when capacity is insufficient).
    pub fn copy_from(&mut self, src: &Tensor) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Seed `i·k·j` matmul — separate multiply and add per term, no fma —
    /// kept as the honest speed baseline for `nn_bench`. NOT bitwise
    /// comparable to [`Tensor::matmul_into`] (which rounds once per fused
    /// term); use [`Tensor::matmul_reference`] for bitwise checks.
    pub fn matmul_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// In-place `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Zero all elements, keeping the allocation.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Handle to a parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// One trainable parameter with its accumulated gradient and Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
    pub adam_m: Tensor,
    pub adam_v: Tensor,
}

/// Owns all trainable parameters of a model, plus the RNG used for
/// initialization so model construction is deterministic per seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
    #[serde(skip, default = "default_rng")]
    rng: ChaCha8Rng,
}

fn default_rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0)
}

impl ParamStore {
    /// New store with a deterministic initialization seed.
    pub fn with_seed(seed: u64) -> ParamStore {
        ParamStore {
            params: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Register a parameter with explicit initial value.
    pub fn add(&mut self, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            grad: Tensor::zeros(r, c),
            adam_m: Tensor::zeros(r, c),
            adam_v: Tensor::zeros(r, c),
            value,
        });
        ParamId(self.params.len() - 1)
    }

    /// Register a parameter initialized with Xavier/Glorot uniform.
    pub fn add_xavier(&mut self, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let mut t = Tensor::zeros(rows, cols);
        for v in t.as_mut_slice() {
            *v = self.rng.gen_range(-bound..bound);
        }
        self.add(t)
    }

    /// Register a zero-initialized parameter (biases).
    pub fn add_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Tensor::zeros(rows, cols))
    }

    /// Parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable parameter record.
    pub fn param_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Add `grad` into the parameter's accumulated gradient.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        self.params[id.0].grad.add_assign(grad);
    }

    /// Zero every parameter's accumulated gradient.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.zero();
        }
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True iff no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterate over all parameter records mutably (used by the optimizer).
    pub fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// All parameter ids in insertion order.
    pub fn param_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.params.len()).map(ParamId)
    }

    /// Total scalar parameter count.
    pub fn scalar_count(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.value.rows() * p.value.cols())
            .sum()
    }

    /// Zero-filled tensors shaped like every parameter, in [`ParamId`]
    /// order — one per-sample gradient block for the data-parallel trainer.
    pub fn grad_template(&self) -> Vec<Tensor> {
        self.params
            .iter()
            .map(|p| Tensor::zeros(p.value.rows(), p.value.cols()))
            .collect()
    }

    /// Add a per-sample gradient block (laid out like [`grad_template`])
    /// into the accumulated gradients, parameter by parameter.
    ///
    /// [`grad_template`]: ParamStore::grad_template
    pub fn add_grad_block(&mut self, block: &[Tensor]) {
        assert_eq!(block.len(), self.params.len(), "grad block layout mismatch");
        for (p, g) in self.params.iter_mut().zip(block) {
            p.grad.add_assign(g);
        }
    }

    /// Scale every accumulated gradient by `s` (minibatch averaging).
    pub fn scale_grads(&mut self, s: f32) {
        for p in &mut self.params {
            p.grad.scale_assign(s);
        }
    }

    /// Iterate over parameter values in [`ParamId`] order (read-only).
    pub fn values_iter(&self) -> impl Iterator<Item = &Tensor> {
        self.params.iter().map(|p| &p.value)
    }

    /// Global L2 norm of all accumulated gradients (training telemetry:
    /// exploding/vanishing gradients show up here long before the loss
    /// trace reacts).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad.norm() as f64;
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn xavier_init_is_deterministic_per_seed() {
        let mut s1 = ParamStore::with_seed(42);
        let mut s2 = ParamStore::with_seed(42);
        let a = s1.add_xavier(4, 4);
        let b = s2.add_xavier(4, 4);
        assert_eq!(s1.value(a), s2.value(b));
        let mut s3 = ParamStore::with_seed(43);
        let c = s3.add_xavier(4, 4);
        assert_ne!(s1.value(a), s3.value(c));
    }

    #[test]
    fn xavier_within_bound() {
        let mut s = ParamStore::with_seed(1);
        let id = s.add_xavier(10, 10);
        let bound = (6.0f32 / 20.0).sqrt();
        for &v in s.value(id).as_slice() {
            assert!(v.abs() <= bound);
        }
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let mut s = ParamStore::with_seed(1);
        let id = s.add_zeros(2, 2);
        s.accumulate_grad(id, &Tensor::full(2, 2, 1.5));
        s.accumulate_grad(id, &Tensor::full(2, 2, 0.5));
        assert_eq!(s.param_mut(id).grad, Tensor::full(2, 2, 2.0));
        s.zero_grads();
        assert_eq!(s.param_mut(id).grad, Tensor::zeros(2, 2));
    }

    #[test]
    fn scalar_count_sums_all_params() {
        let mut s = ParamStore::with_seed(1);
        s.add_zeros(2, 3);
        s.add_zeros(1, 4);
        assert_eq!(s.scalar_count(), 10);
        assert_eq!(s.len(), 2);
    }
}
