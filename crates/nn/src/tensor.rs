//! Dense row-major `f32` matrices and the parameter store.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// Row vectors (`1×n`) represent embeddings and hidden states; matrices
/// represent weights, stacked sequences and batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor {
            data: vec![v; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { data, rows, cols }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Tensor {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// In-place `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Zero all elements, keeping the allocation.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Handle to a parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// One trainable parameter with its accumulated gradient and Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
    pub adam_m: Tensor,
    pub adam_v: Tensor,
}

/// Owns all trainable parameters of a model, plus the RNG used for
/// initialization so model construction is deterministic per seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
    #[serde(skip, default = "default_rng")]
    rng: ChaCha8Rng,
}

fn default_rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0)
}

impl ParamStore {
    /// New store with a deterministic initialization seed.
    pub fn with_seed(seed: u64) -> ParamStore {
        ParamStore {
            params: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Register a parameter with explicit initial value.
    pub fn add(&mut self, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            grad: Tensor::zeros(r, c),
            adam_m: Tensor::zeros(r, c),
            adam_v: Tensor::zeros(r, c),
            value,
        });
        ParamId(self.params.len() - 1)
    }

    /// Register a parameter initialized with Xavier/Glorot uniform.
    pub fn add_xavier(&mut self, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let mut t = Tensor::zeros(rows, cols);
        for v in t.as_mut_slice() {
            *v = self.rng.gen_range(-bound..bound);
        }
        self.add(t)
    }

    /// Register a zero-initialized parameter (biases).
    pub fn add_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Tensor::zeros(rows, cols))
    }

    /// Parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable parameter record.
    pub fn param_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Add `grad` into the parameter's accumulated gradient.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        self.params[id.0].grad.add_assign(grad);
    }

    /// Zero every parameter's accumulated gradient.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.zero();
        }
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True iff no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterate over all parameter records mutably (used by the optimizer).
    pub fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Total scalar parameter count.
    pub fn scalar_count(&self) -> usize {
        self.params
            .iter()
            .map(|p| p.value.rows() * p.value.cols())
            .sum()
    }

    /// Global L2 norm of all accumulated gradients (training telemetry:
    /// exploding/vanishing gradients show up here long before the loss
    /// trace reacts).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad.norm() as f64;
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn xavier_init_is_deterministic_per_seed() {
        let mut s1 = ParamStore::with_seed(42);
        let mut s2 = ParamStore::with_seed(42);
        let a = s1.add_xavier(4, 4);
        let b = s2.add_xavier(4, 4);
        assert_eq!(s1.value(a), s2.value(b));
        let mut s3 = ParamStore::with_seed(43);
        let c = s3.add_xavier(4, 4);
        assert_ne!(s1.value(a), s3.value(c));
    }

    #[test]
    fn xavier_within_bound() {
        let mut s = ParamStore::with_seed(1);
        let id = s.add_xavier(10, 10);
        let bound = (6.0f32 / 20.0).sqrt();
        for &v in s.value(id).as_slice() {
            assert!(v.abs() <= bound);
        }
    }

    #[test]
    fn grad_accumulation_and_reset() {
        let mut s = ParamStore::with_seed(1);
        let id = s.add_zeros(2, 2);
        s.accumulate_grad(id, &Tensor::full(2, 2, 1.5));
        s.accumulate_grad(id, &Tensor::full(2, 2, 0.5));
        assert_eq!(s.param_mut(id).grad, Tensor::full(2, 2, 2.0));
        s.zero_grads();
        assert_eq!(s.param_mut(id).grad, Tensor::zeros(2, 2));
    }

    #[test]
    fn scalar_count_sums_all_params() {
        let mut s = ParamStore::with_seed(1);
        s.add_zeros(2, 3);
        s.add_zeros(1, 4);
        assert_eq!(s.scalar_count(), 10);
        assert_eq!(s.len(), 2);
    }
}
