//! Layers: fully-connected, embedding, LSTM, depthwise conv, batch norm.
//!
//! Layers own [`ParamId`]s into a [`ParamStore`] and build graph nodes on
//! each forward pass, so one layer instance can be applied many times per
//! graph (e.g. the LSTM cell across timesteps) with shared weights.

use crate::graph::{Graph, NodeId};
use crate::tensor::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// Fully-connected layer `y = x·W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// New layer with Xavier-initialized weights and zero bias.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize) -> Linear {
        Linear {
            w: store.add_xavier(in_dim, out_dim),
            b: store.add_zeros(1, out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Apply to an `n×in_dim` node.
    pub fn forward_with(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.affine(x, w, b)
    }
}

/// Token embedding table: maps token indices to dense rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    pub table: ParamId,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    /// New table with Xavier initialization.
    pub fn new(store: &mut ParamStore, vocab: usize, dim: usize) -> Embedding {
        Embedding {
            table: store.add_xavier(vocab, dim),
            vocab,
            dim,
        }
    }

    /// Look up a batch of token indices → `len×dim` node.
    pub fn forward_with(&self, g: &mut Graph, store: &ParamStore, indices: &[usize]) -> NodeId {
        debug_assert!(indices.iter().all(|&i| i < self.vocab));
        g.embed(store, self.table, indices)
    }
}

/// Single-layer LSTM (Hochreiter & Schmidhuber) over a sequence of `1×input`
/// row-vector nodes, returning the final hidden state `1×hidden`.
///
/// Gate layout inside the fused weight matrices: `[i | f | g | o]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    pub wx: ParamId,
    pub wh: ParamId,
    pub b: ParamId,
    pub input: usize,
    pub hidden: usize,
}

impl Lstm {
    /// New LSTM with Xavier weights; forget-gate bias initialized to 1 for
    /// stable early training.
    pub fn new(store: &mut ParamStore, input: usize, hidden: usize) -> Lstm {
        let wx = store.add_xavier(input, 4 * hidden);
        let wh = store.add_xavier(hidden, 4 * hidden);
        let mut bias = crate::tensor::Tensor::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0);
        }
        let b = store.add(bias);
        Lstm {
            wx,
            wh,
            b,
            input,
            hidden,
        }
    }

    /// Run over `steps` (each `1×input`), return the final hidden state.
    /// An empty sequence returns the zero initial state.
    ///
    /// By default each timestep is one fused [`Graph::lstm_cell`] tape node;
    /// [`Graph::set_reference_mode`] falls back to the unrolled primitive
    /// composition. The hidden state is bitwise identical in both modes
    /// (see `fused_cell_matches_unrolled_composition`).
    pub fn forward_with(&self, g: &mut Graph, store: &ParamStore, steps: &[NodeId]) -> NodeId {
        if g.reference_mode() {
            return self.forward_with_unfused(g, store, steps);
        }
        let wx = g.param(store, self.wx);
        let wh = g.param(store, self.wh);
        let b = g.param(store, self.b);
        let mut prev: Option<NodeId> = None;
        for &x in steps {
            prev = Some(g.lstm_cell(x, prev, wx, wh, b, self.hidden));
        }
        match prev {
            Some(hc) => g.slice_cols(hc, 0, self.hidden),
            None => {
                let h0 = g.scratch(1, self.hidden);
                g.input(h0)
            }
        }
    }

    /// The original unrolled cell: ~16 primitive tape nodes per step. Kept
    /// as the reference composition the fused op is checked against, and as
    /// the tape shape for seed-faithful benchmark baselines.
    pub fn forward_with_unfused(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        steps: &[NodeId],
    ) -> NodeId {
        let wx = g.param(store, self.wx);
        let wh = g.param(store, self.wh);
        let b = g.param(store, self.b);
        let h0 = g.scratch(1, self.hidden);
        let mut h = g.input(h0);
        let c0 = g.scratch(1, self.hidden);
        let mut c = g.input(c0);
        for &x in steps {
            let xg = g.matmul(x, wx);
            let hg = g.matmul(h, wh);
            let s = g.add(xg, hg);
            let gates = g.add_row(s, b);
            let i = g.slice_cols(gates, 0, self.hidden);
            let f = g.slice_cols(gates, self.hidden, self.hidden);
            let gg = g.slice_cols(gates, 2 * self.hidden, self.hidden);
            let o = g.slice_cols(gates, 3 * self.hidden, self.hidden);
            let i = g.sigmoid(i);
            let f = g.sigmoid(f);
            let gg = g.tanh(gg);
            let o = g.sigmoid(o);
            let fc = g.mul(f, c);
            let ig = g.mul(i, gg);
            c = g.add(fc, ig);
            let tc = g.tanh(c);
            h = g.mul(o, tc);
        }
        h
    }

    /// Run over a sequence packed as one `len×input` matrix node.
    pub fn forward_matrix(&self, g: &mut Graph, store: &ParamStore, seq: NodeId) -> NodeId {
        let rows = g.value(seq).rows();
        let cols = g.value(seq).cols();
        debug_assert_eq!(cols, self.input);
        // Slice each row out as a timestep. Row extraction via transpose-free
        // slicing: build per-row nodes with slice over a transposed layout is
        // avoided by using concat_rows inverse — here we simply re-input each
        // row is NOT allowed (would detach gradients), so we slice columns of
        // the transposed matrix. Instead, keep it simple: treat the packed
        // matrix as `rows` nodes via slice_rows emulation below.
        let steps: Vec<NodeId> = (0..rows).map(|r| slice_row(g, seq, r)).collect();
        self.forward_with(g, store, &steps)
    }
}

/// Extract row `r` of a node as a `1×c` node, differentiable.
///
/// Implemented as a selector mat-mul `e_r × X` where `e_r` is a constant
/// one-hot row, so gradients flow back into the source matrix.
pub fn slice_row(g: &mut Graph, x: NodeId, r: usize) -> NodeId {
    let rows = g.value(x).rows();
    let mut sel = g.scratch(1, rows);
    sel.set(0, r, 1.0);
    let sel = g.input(sel);
    g.matmul(sel, x)
}

/// Depthwise 3×1 convolution block: `Conv3x1 → BatchNorm → ReLU`, the
/// convolution block of the paper's string encoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv3x1 {
    pub w: ParamId,
    pub b: ParamId,
    pub channels: usize,
}

impl Conv3x1 {
    /// New kernel over `channels` columns.
    pub fn new(store: &mut ParamStore, channels: usize) -> Conv3x1 {
        Conv3x1 {
            w: store.add_xavier(3, channels),
            b: store.add_zeros(1, channels),
            channels,
        }
    }

    /// Apply to an `n×channels` node.
    pub fn forward_with(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.conv3x1(x, w, b)
    }
}

/// Per-column batch normalization with learned scale and shift.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub channels: usize,
}

impl BatchNorm {
    /// New normalization over `channels` columns (γ=1, β=0).
    pub fn new(store: &mut ParamStore, channels: usize) -> BatchNorm {
        BatchNorm {
            gamma: store.add(crate::tensor::Tensor::full(1, channels, 1.0)),
            beta: store.add_zeros(1, channels),
            channels,
        }
    }

    /// Apply to an `n×channels` node.
    pub fn forward_with(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        g.norm_rows(x, gamma, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::with_seed(1);
        let l = Linear::new(&mut store, 3, 5);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 3));
        let y = l.forward_with(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (2, 5));
    }

    #[test]
    fn embedding_shapes_and_bounds() {
        let mut store = ParamStore::with_seed(1);
        let e = Embedding::new(&mut store, 10, 4);
        let mut g = Graph::new();
        let out = e.forward_with(&mut g, &store, &[0, 9, 3]);
        assert_eq!(g.value(out).shape(), (3, 4));
    }

    #[test]
    fn lstm_final_state_shape_and_empty_sequence() {
        let mut store = ParamStore::with_seed(1);
        let l = Lstm::new(&mut store, 4, 6);
        let mut g = Graph::new();
        let x1 = g.input(Tensor::full(1, 4, 0.5));
        let x2 = g.input(Tensor::full(1, 4, -0.5));
        let h = l.forward_with(&mut g, &store, &[x1, x2]);
        assert_eq!(g.value(h).shape(), (1, 6));
        let h0 = l.forward_with(&mut g, &store, &[]);
        assert_eq!(g.value(h0), &Tensor::zeros(1, 6));
    }

    #[test]
    fn fused_cell_matches_unrolled_composition() {
        // The fused LstmCell op must produce a bitwise-identical hidden
        // state to the primitive composition, and numerically matching
        // parameter gradients (the reduction order inside backward differs,
        // so grads are compared with a tolerance, not bitwise).
        let mut store = ParamStore::with_seed(11);
        let l = Lstm::new(&mut store, 3, 5);
        let rows: [&[f32]; 3] = [
            &[0.3, -1.2, 0.7],
            &[-0.5, 0.0, 2.1],
            &[1.0, 0.25, -0.75],
        ];
        let run = |fused: bool, store: &ParamStore| {
            let mut g = Graph::new();
            g.set_reference_mode(!fused);
            let steps: Vec<NodeId> = rows
                .iter()
                .map(|r| g.input(Tensor::from_rows(&[r])))
                .collect();
            let h = l.forward_with(&mut g, store, &steps);
            let value = g.value(h).clone();
            let loss = g.mean_all(h);
            g.backward(loss);
            let grads: Vec<Tensor> = [l.wx, l.wh, l.b]
                .iter()
                .map(|&p| {
                    // `param` dedupes, so this returns the node created
                    // during the forward pass rather than a fresh leaf.
                    let n = g.param(store, p);
                    g.grad(n)
                })
                .collect();
            (value, grads)
        };
        let (h_fused, g_fused) = run(true, &store);
        let (h_ref, g_ref) = run(false, &store);
        let bits = |t: &Tensor| -> Vec<u32> {
            t.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&h_fused), bits(&h_ref), "fused hidden state must be bitwise equal");
        for (gf, gr) in g_fused.iter().zip(&g_ref) {
            for (a, b) in gf.as_slice().iter().zip(gr.as_slice()) {
                assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "grad mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn lstm_is_order_sensitive() {
        let mut store = ParamStore::with_seed(3);
        let l = Lstm::new(&mut store, 2, 4);
        let mut g = Graph::new();
        let a = g.input(Tensor::from_rows(&[&[1.0, 0.0]]));
        let b = g.input(Tensor::from_rows(&[&[0.0, 1.0]]));
        let hab = l.forward_with(&mut g, &store, &[a, b]);
        let hba = l.forward_with(&mut g, &store, &[b, a]);
        let diff: f32 = g
            .value(hab)
            .as_slice()
            .iter()
            .zip(g.value(hba).as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-6, "LSTM must distinguish sequence order");
    }

    #[test]
    fn slice_row_is_differentiable() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let r1 = slice_row(&mut g, x, 1);
        assert_eq!(g.value(r1), &Tensor::from_rows(&[&[3.0, 4.0]]));
        let l = g.mean_all(r1);
        g.backward(l);
        let gx = g.grad(x);
        assert_eq!(gx.get(0, 0), 0.0);
        assert!((gx.get(1, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn conv_block_preserves_shape() {
        let mut store = ParamStore::with_seed(1);
        let conv = Conv3x1::new(&mut store, 4);
        let bn = BatchNorm::new(&mut store, 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::full(5, 4, 0.3));
        let c = conv.forward_with(&mut g, &store, x);
        let n = bn.forward_with(&mut g, &store, c);
        let y = g.relu(n);
        assert_eq!(g.value(y).shape(), (5, 4));
    }

    #[test]
    fn lstm_learns_to_separate_two_sequences() {
        // Tiny sanity check that gradients flow through the whole cell:
        // train to output +1 for sequence A and −1 for sequence B.
        let mut store = ParamStore::with_seed(9);
        let lstm = Lstm::new(&mut store, 2, 8);
        let head = Linear::new(&mut store, 8, 1);
        let mut adam = crate::adam::Adam::new(0.05);
        let seq_a = [[1.0f32, 0.0], [1.0, 0.0]];
        let seq_b = [[0.0f32, 1.0], [0.0, 1.0]];
        for _ in 0..120 {
            store.zero_grads();
            for (seq, target) in [(&seq_a, 1.0f32), (&seq_b, -1.0f32)] {
                let mut g = Graph::new();
                let steps: Vec<NodeId> = seq
                    .iter()
                    .map(|r| g.input(Tensor::from_rows(&[r])))
                    .collect();
                let h = lstm.forward_with(&mut g, &store, &steps);
                let y = head.forward_with(&mut g, &store, h);
                let t = g.input(Tensor::from_vec(1, 1, vec![target]));
                let loss = g.mse(y, t);
                g.backward(loss);
                g.accumulate_param_grads(&mut store);
            }
            adam.step(&mut store);
        }
        let eval = |seq: &[[f32; 2]; 2], store: &ParamStore| {
            let mut g = Graph::new();
            let steps: Vec<NodeId> = seq
                .iter()
                .map(|r| g.input(Tensor::from_rows(&[r])))
                .collect();
            let h = lstm.forward_with(&mut g, store, &steps);
            let y = head.forward_with(&mut g, store, h);
            g.value(y).get(0, 0)
        };
        assert!(eval(&seq_a, &store) > 0.5);
        assert!(eval(&seq_b, &store) < -0.5);
    }
}
