//! Tape-based reverse-mode autograd with arena-recycled buffers.
//!
//! A [`Graph`] is built per forward pass: every operation appends a node
//! holding its computed value and enough structure to run the chain rule in
//! reverse. Parameters enter the graph by value (copied from the
//! [`ParamStore`]) and their gradients are handed back to the store after
//! `backward`, so the graph never borrows the store.
//!
//! ## Buffer arena
//!
//! Every tensor a graph allocates — forward values, backward gradients,
//! sparse embedding rows — draws its backing `Vec<f32>` from the graph's
//! internal free-list and returns it there on [`Graph::reset`]. A training
//! loop that calls `reset` between samples therefore reaches a steady state
//! where forward + backward perform **zero heap allocation**: the tape, the
//! free-list and every buffer are reused in place. `reset` only clears
//! lengths; capacities survive.
//!
//! Recycling never changes numerics: a recycled buffer is always fully
//! overwritten (or `resize`d to zero-filled) before use, so results are
//! bitwise identical to a freshly allocated graph.

use crate::tensor::{ParamId, ParamStore, Tensor};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input — no gradient flows out.
    Input,
    /// Parameter leaf — gradient is collected for the store via the
    /// graph's `param_nodes` map.
    Param,
    /// Row gather from an embedding table parameter. The table itself is
    /// never copied into the graph; gradients scatter back sparsely.
    Embed {
        table: ParamId,
        indices: Vec<usize>,
    },
    /// Matrix product `a × b`.
    MatMul(NodeId, NodeId),
    /// Fused affine transform `x × w + b` (`b` broadcast over rows): one
    /// node and one output pass instead of a MatMul + AddRow pair.
    Affine { x: NodeId, w: NodeId, b: NodeId },
    /// Elementwise sum of equal shapes.
    Add(NodeId, NodeId),
    /// `(n×c) + (1×c)` broadcast of a row vector.
    AddRow(NodeId, NodeId),
    /// Elementwise difference.
    Sub(NodeId, NodeId),
    /// Elementwise (Hadamard) product.
    Mul(NodeId, NodeId),
    /// Multiply by a constant.
    Scale(NodeId, f32),
    Relu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    /// Concatenate along columns (equal row counts).
    ConcatCols(Vec<NodeId>),
    /// Stack along rows (equal column counts).
    ConcatRows(Vec<NodeId>),
    /// Columns `[start, start+len)` of the source.
    SliceCols(NodeId, usize, usize),
    /// Column-wise mean over rows → `1×c` (average pooling).
    MeanRows(NodeId),
    /// Mean over all elements → `1×1`.
    MeanAll(NodeId),
    /// Depthwise 3×1 convolution along rows with zero padding:
    /// `out[i,c] = b[c] + Σ_k w[k,c]·x[i+k−1,c]`.
    Conv3x1 { x: NodeId, w: NodeId, b: NodeId },
    /// One fused LSTM step: gates, cell update and output in a single tape
    /// node instead of ~16 (two matmuls, slices, activations, Hadamards).
    /// The node's value is the packed state `[h | c | tanh(c)]`
    /// (`1×3·hidden`; the tanh block is a forward stash reused by backward);
    /// `prev` is the previous step's packed node (`None` = zero state).
    LstmCell {
        x: NodeId,
        prev: Option<NodeId>,
        wx: NodeId,
        wh: NodeId,
        b: NodeId,
        hidden: usize,
        /// Saved post-activation gates `[i|f|g|o]` (`1×4·hidden`) for the
        /// backward pass; recycled into the pool on `reset`.
        act: Tensor,
    },
    /// Per-column batch normalization over rows with learned scale/shift.
    NormRows {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// One forward pass's computation tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Dedup of param leaves so layers reused across timesteps share a node.
    param_nodes: Vec<(ParamId, NodeId)>,
    /// Sparse gradients for embedding tables: (table, row, grad-row).
    embed_grads: Vec<(ParamId, usize, Vec<f32>)>,
    /// Free-list of recycled `f32` buffers (see module docs).
    pool: Vec<Vec<f32>>,
    /// Tape nodes below this index are pinned parameter leaves that survive
    /// [`Graph::reset`] (see [`Graph::pin_params`]).
    pinned: usize,
    /// When set, the graph reproduces the pre-overhaul execution path:
    /// [`crate::layers::Lstm`] unrolls each step into primitive ops instead
    /// of one fused [`Op::LstmCell`] node, [`Graph::affine`] falls back to
    /// a `matmul` + `add_row` pair, and [`Graph::backward`] runs the
    /// original clone-and-transpose reverse sweep. Forward values are
    /// bitwise identical either way; this exists so benchmark baselines
    /// measure the seed path rather than silently inheriting the new
    /// kernels.
    reference_mode: bool,
}

fn pooled_zeros(pool: &mut Vec<Vec<f32>>, rows: usize, cols: usize) -> Tensor {
    let mut buf = pool.pop().unwrap_or_default();
    buf.clear();
    buf.resize(rows * cols, 0.0);
    Tensor::from_vec(rows, cols, buf)
}

fn pooled_copy(pool: &mut Vec<Vec<f32>>, src: &Tensor) -> Tensor {
    let mut buf = pool.pop().unwrap_or_default();
    buf.clear();
    buf.extend_from_slice(src.as_slice());
    Tensor::from_vec(src.rows(), src.cols(), buf)
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Clear the tape for the next forward pass, harvesting every buffer
    /// (values, gradients, sparse embed rows) into the free-list. After a
    /// few passes the free-list covers the working set and subsequent
    /// passes allocate nothing.
    pub fn reset(&mut self) {
        // Anything still parked in the free-list survived a whole pass
        // without being popped: it is cold. A few stale buffers are fine
        // (graph shapes vary between passes), but letting them pile up —
        // e.g. when callers feed `input` tensors allocated outside the pool
        // — grows the heap without bound and drags every pass through cold
        // memory. Keep a small slack, drop the oldest excess.
        let stale = self.pool.len();
        for node in &mut self.nodes[..self.pinned] {
            if let Some(g) = node.grad.take() {
                self.pool.push(g.into_data());
            }
        }
        for node in self.nodes.drain(self.pinned..) {
            self.pool.push(node.value.into_data());
            if let Some(g) = node.grad {
                self.pool.push(g.into_data());
            }
            if let Op::LstmCell { act, .. } = node.op {
                self.pool.push(act.into_data());
            }
        }
        self.param_nodes.retain(|&(_, nid)| nid.0 < self.pinned);
        for (_, _, buf) in self.embed_grads.drain(..) {
            self.pool.push(buf);
        }
        let harvested = self.pool.len() - stale;
        let slack = harvested / 4 + 16;
        if stale > slack {
            self.pool.drain(..stale - slack);
        }
    }

    /// Buffers currently parked in the free-list (telemetry / tests).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Toggle seed-faithful reference mode (off by default): the unfused
    /// one-node-per-primitive tape plus the original allocation-heavy
    /// backward. Forward values are bitwise identical in both modes, so
    /// this is safe to flip for apples-to-apples measurements and for
    /// fused-vs-unrolled equivalence tests.
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
    }

    /// True iff the graph is in seed-faithful reference mode.
    pub fn reference_mode(&self) -> bool {
        self.reference_mode
    }

    /// Pin every currently-interned parameter leaf: [`Graph::reset`] keeps
    /// the tape prefix holding them — values and the dedup map intact — so
    /// later passes reuse the same leaves instead of re-copying every
    /// parameter from the store. Call on a fresh tape right after interning
    /// the parameters (the prefix must consist solely of `Param` nodes).
    /// After an optimizer step changes the store, push the new values back
    /// with [`Graph::refresh_params`].
    ///
    /// Pinned leaves still get their gradients collected per pass by
    /// [`Graph::accumulate_param_grads`] / [`Graph::take_param_grads`];
    /// a reset without collection discards them.
    pub fn pin_params(&mut self) {
        assert!(
            self.nodes.iter().all(|n| matches!(n.op, Op::Param)),
            "pin_params requires a params-only tape prefix"
        );
        self.pinned = self.nodes.len();
    }

    /// Overwrite every pinned parameter leaf with the store's current
    /// values (after an optimizer step). No-op when nothing is pinned.
    pub fn refresh_params(&mut self, store: &ParamStore) {
        for k in 0..self.param_nodes.len() {
            let (pid, nid) = self.param_nodes[k];
            self.nodes[nid.0]
                .value
                .as_mut_slice()
                .copy_from_slice(store.value(pid).as_slice());
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`Graph::backward`], zeros if none reached it.
    pub fn grad(&self, id: NodeId) -> Tensor {
        match &self.nodes[id.0].grad {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.nodes[id.0].value.shape();
                Tensor::zeros(r, c)
            }
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- node constructors -------------------------------------------------

    /// Constant input tensor.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Zeroed `rows×cols` tensor backed by the graph's free-list. Fill it
    /// and pass it to [`Graph::input`] to feed data without allocating:
    /// `reset` harvests the buffer back like any other node value.
    pub fn scratch(&mut self, rows: usize, cols: usize) -> Tensor {
        pooled_zeros(&mut self.pool, rows, cols)
    }

    /// Parameter leaf (copied from the store, deduped per graph).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        if let Some(&(_, n)) = self.param_nodes.iter().find(|(p, _)| *p == id) {
            return n;
        }
        let v = pooled_copy(&mut self.pool, store.value(id));
        let n = self.push(v, Op::Param);
        self.param_nodes.push((id, n));
        n
    }

    /// Embedding lookup: gather `indices` rows of table parameter `table`.
    pub fn embed(&mut self, store: &ParamStore, table: ParamId, indices: &[usize]) -> NodeId {
        let t = store.value(table);
        let mut out = pooled_zeros(&mut self.pool, indices.len(), t.cols());
        for (i, &ix) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(t.row(ix));
        }
        self.push(
            out,
            Op::Embed {
                table,
                indices: indices.to_vec(),
            },
        )
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ar, bc) = (self.nodes[a.0].value.rows(), self.nodes[b.0].value.cols());
        let mut v = pooled_zeros(&mut self.pool, ar, bc);
        self.nodes[a.0].value.matmul_into(&self.nodes[b.0].value, &mut v);
        self.push(v, Op::MatMul(a, b))
    }

    /// Fused affine transform `x × w + b` (`b` a `1×c` row broadcast over
    /// rows). One tape node instead of a MatMul + AddRow pair; the bias is
    /// added after the full inner-product sum, so the value is bitwise
    /// identical to `add_row(matmul(x, w), b)`.
    pub fn affine(&mut self, x: NodeId, w: NodeId, b: NodeId) -> NodeId {
        if self.reference_mode {
            let m = self.matmul(x, w);
            return self.add_row(m, b);
        }
        let (xr, wc) = (self.nodes[x.0].value.rows(), self.nodes[w.0].value.cols());
        let mut v = pooled_zeros(&mut self.pool, xr, wc);
        self.nodes[x.0].value.matmul_into(&self.nodes[w.0].value, &mut v);
        v.add_row_assign(&self.nodes[b.0].value);
        self.push(v, Op::Affine { x, w, b })
    }

    /// Elementwise sum (equal shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.nodes[a.0].value.shape(),
            self.nodes[b.0].value.shape(),
            "add shape mismatch"
        );
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        v.add_assign(&self.nodes[b.0].value);
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast-add a `1×c` row vector to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        assert_eq!(
            self.nodes[row.0].value.rows(),
            1,
            "add_row needs a 1×c row vector"
        );
        assert_eq!(
            self.nodes[a.0].value.cols(),
            self.nodes[row.0].value.cols(),
            "add_row column mismatch"
        );
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        v.add_row_assign(&self.nodes[row.0].value);
        self.push(v, Op::AddRow(a, row))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.nodes[a.0].value.shape(),
            self.nodes[b.0].value.shape(),
            "sub shape mismatch"
        );
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        for (x, y) in v
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[b.0].value.as_slice())
        {
            *x -= y;
        }
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.nodes[a.0].value.shape(),
            self.nodes[b.0].value.shape(),
            "mul shape mismatch"
        );
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        for (x, y) in v
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[b.0].value.as_slice())
        {
            *x *= y;
        }
        self.push(v, Op::Mul(a, b))
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        v.scale_assign(s);
        self.push(v, Op::Scale(a, s))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        v.relu_assign();
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        for x in v.as_mut_slice() {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let mut v = pooled_copy(&mut self.pool, &self.nodes[a.0].value);
        for x in v.as_mut_slice() {
            *x = x.tanh();
        }
        self.push(v, Op::Tanh(a))
    }

    /// Concatenate along columns.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.nodes[parts[0].0].value.rows();
        let total: usize = parts
            .iter()
            .map(|&p| self.nodes[p.0].value.cols())
            .sum();
        let mut v = pooled_zeros(&mut self.pool, rows, total);
        let mut at = 0;
        for &p in parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            let cols = t.cols();
            for r in 0..rows {
                v.row_mut(r)[at..at + cols].copy_from_slice(t.row(r));
            }
            at += cols;
        }
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Stack along rows.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.nodes[parts[0].0].value.cols();
        let total: usize = parts
            .iter()
            .map(|&p| self.nodes[p.0].value.rows())
            .sum();
        let mut v = pooled_zeros(&mut self.pool, total, cols);
        let mut at = 0;
        for &p in parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.cols(), cols, "concat_rows column mismatch");
            for r in 0..t.rows() {
                v.row_mut(at + r).copy_from_slice(t.row(r));
            }
            at += t.rows();
        }
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Columns `[start, start+len)`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert!(start + len <= cols, "slice_cols out of range");
        let mut v = pooled_zeros(&mut self.pool, rows, len);
        for r in 0..rows {
            v.row_mut(r)
                .copy_from_slice(&self.nodes[a.0].value.row(r)[start..start + len]);
        }
        self.push(v, Op::SliceCols(a, start, len))
    }

    /// Column-wise mean over rows (average pooling) → `1×c`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let (rows, cols) = self.nodes[a.0].value.shape();
        let n = rows.max(1);
        let mut v = pooled_zeros(&mut self.pool, 1, cols);
        self.nodes[a.0].value.col_sum_into(&mut v);
        v.scale_assign(1.0 / n as f32);
        self.push(v, Op::MeanRows(a))
    }

    /// Mean over all elements → `1×1`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let t = &self.nodes[a.0].value;
        let n = (t.rows() * t.cols()).max(1);
        let s: f32 = t.as_slice().iter().sum();
        let mut v = pooled_zeros(&mut self.pool, 1, 1);
        v.set(0, 0, s / n as f32);
        self.push(v, Op::MeanAll(a))
    }

    /// Depthwise 3×1 convolution along rows, zero padding (`same` size).
    /// `w` is `3×c`, `b` is `1×c`.
    pub fn conv3x1(&mut self, x: NodeId, w: NodeId, b: NodeId) -> NodeId {
        let (n, c) = self.nodes[x.0].value.shape();
        assert_eq!(
            self.nodes[w.0].value.shape(),
            (3, c),
            "conv3x1 kernel must be 3×c"
        );
        assert_eq!(
            self.nodes[b.0].value.shape(),
            (1, c),
            "conv3x1 bias must be 1×c"
        );
        let mut v = pooled_zeros(&mut self.pool, n, c);
        {
            let xt = &self.nodes[x.0].value;
            let wt = &self.nodes[w.0].value;
            let bt = &self.nodes[b.0].value;
            for i in 0..n {
                for ch in 0..c {
                    let mut acc = bt.get(0, ch);
                    for k in 0..3usize {
                        let j = i as isize + k as isize - 1;
                        if j >= 0 && (j as usize) < n {
                            acc += wt.get(k, ch) * xt.get(j as usize, ch);
                        }
                    }
                    v.set(i, ch, acc);
                }
            }
        }
        self.push(v, Op::Conv3x1 { x, w, b })
    }

    /// Per-column batch normalization over rows with learned `gamma`/`beta`
    /// (both `1×c`).
    pub fn norm_rows(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        const EPS: f32 = 1e-5;
        let (n, c) = self.nodes[x.0].value.shape();
        assert_eq!(
            self.nodes[gamma.0].value.shape(),
            (1, c),
            "gamma must be 1×c"
        );
        assert_eq!(self.nodes[beta.0].value.shape(), (1, c), "beta must be 1×c");
        let mut v = pooled_zeros(&mut self.pool, n, c);
        {
            let xt = &self.nodes[x.0].value;
            let gt = &self.nodes[gamma.0].value;
            let bt = &self.nodes[beta.0].value;
            for ch in 0..c {
                let mean: f32 = (0..n).map(|r| xt.get(r, ch)).sum::<f32>() / n.max(1) as f32;
                let var: f32 = (0..n)
                    .map(|r| (xt.get(r, ch) - mean).powi(2))
                    .sum::<f32>()
                    / n.max(1) as f32;
                let inv = 1.0 / (var + EPS).sqrt();
                for r in 0..n {
                    let xhat = (xt.get(r, ch) - mean) * inv;
                    v.set(r, ch, gt.get(0, ch) * xhat + bt.get(0, ch));
                }
            }
        }
        self.push(
            v,
            Op::NormRows {
                x,
                gamma,
                beta,
                eps: EPS,
            },
        )
    }

    /// One fused LSTM step over a `1×input` row `x`, producing the packed
    /// state `[h | c]` as a single `1×2·hidden` node. `prev` is the previous
    /// step's packed node (`None` = zero initial state); `wx` (`input×4h`),
    /// `wh` (`h×4h`) and `b` (`1×4h`) use the `[i|f|g|o]` gate layout.
    ///
    /// Replaces the ~16 primitive nodes of the unrolled cell with one tape
    /// entry. The arithmetic keeps the unrolled form's exact operation order
    /// — `(x·Wx + h·Wh) + b`, then `f·c + i·g`, then `o·tanh(c)` — so the
    /// state is bitwise identical to the primitive composition.
    pub fn lstm_cell(
        &mut self,
        x: NodeId,
        prev: Option<NodeId>,
        wx: NodeId,
        wh: NodeId,
        b: NodeId,
        hidden: usize,
    ) -> NodeId {
        let hh = hidden;
        let in_dim = self.nodes[x.0].value.cols();
        assert_eq!(self.nodes[x.0].value.rows(), 1, "lstm_cell step must be 1×input");
        assert_eq!(
            self.nodes[wx.0].value.shape(),
            (in_dim, 4 * hh),
            "lstm_cell wx must be input×4h"
        );
        assert_eq!(
            self.nodes[wh.0].value.shape(),
            (hh, 4 * hh),
            "lstm_cell wh must be h×4h"
        );
        assert_eq!(
            self.nodes[b.0].value.shape(),
            (1, 4 * hh),
            "lstm_cell bias must be 1×4h"
        );
        if let Some(p) = prev {
            assert_eq!(
                self.nodes[p.0].value.shape(),
                (1, 3 * hh),
                "lstm_cell prev state must be 1×3h"
            );
        }

        // act = x·Wx, then += h_prev·Wh, += b, then gate nonlinearities.
        let mut act = pooled_zeros(&mut self.pool, 1, 4 * hh);
        self.nodes[x.0].value.matmul_into(&self.nodes[wx.0].value, &mut act);
        let mut hg = pooled_zeros(&mut self.pool, 1, 4 * hh);
        if let Some(p) = prev {
            let h_prev = &self.nodes[p.0].value.as_slice()[..hh];
            self.nodes[wh.0].value.left_vecmat_into(h_prev, &mut hg);
        }
        {
            let bt = self.nodes[b.0].value.as_slice();
            let hgs = hg.as_slice();
            let a = act.as_mut_slice();
            for j in 0..4 * hh {
                let pre = (a[j] + hgs[j]) + bt[j];
                a[j] = if (2 * hh..3 * hh).contains(&j) {
                    pre.tanh()
                } else {
                    1.0 / (1.0 + (-pre).exp())
                };
            }
        }
        self.pool.push(hg.into_data());

        // Packed state `[h | c | tanh(c)]`. The third block is a forward
        // stash so backward never recomputes tanh; gradients flowing into
        // it from consumers are ignored (only `h` and `c` are read by the
        // layers built on this op).
        let mut v = pooled_zeros(&mut self.pool, 1, 3 * hh);
        {
            let a = act.as_slice();
            let (iv_s, rest) = a.split_at(hh);
            let (fv_s, rest) = rest.split_at(hh);
            let (gv_s, ov_s) = rest.split_at(hh);
            let out = v.as_mut_slice();
            let (h_out, rest) = out.split_at_mut(hh);
            let (c_out, tc_out) = rest.split_at_mut(hh);
            let cp_s = prev.map(|p| &self.nodes[p.0].value.as_slice()[hh..2 * hh]);
            for j in 0..hh {
                let cp = cp_s.map_or(0.0, |s| s[j]);
                let c = (fv_s[j] * cp) + (iv_s[j] * gv_s[j]);
                let tc = c.tanh();
                c_out[j] = c;
                tc_out[j] = tc;
                h_out[j] = ov_s[j] * tc;
            }
        }
        self.push(
            v,
            Op::LstmCell {
                x,
                prev,
                wx,
                wh,
                b,
                hidden,
                act,
            },
        )
    }

    /// Mean-squared-error loss between equal-shaped prediction and target.
    pub fn mse(&mut self, pred: NodeId, target: NodeId) -> NodeId {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    // ---- backward ----------------------------------------------------------

    /// Run the chain rule in reverse from `output`, which must be `1×1`
    /// (a loss). Gradients land on every node; parameter and embedding
    /// gradients can then be handed to the store via
    /// [`Graph::accumulate_param_grads`] or [`Graph::take_param_grads`].
    ///
    /// Every intermediate gradient buffer comes from the graph's free-list;
    /// with a warm pool the whole reverse sweep is allocation-free.
    pub fn backward(&mut self, output: NodeId) {
        assert_eq!(
            self.value(output).shape(),
            (1, 1),
            "backward seed must be a scalar loss"
        );
        if self.reference_mode {
            return self.backward_reference(output);
        }
        let mut seed = pooled_zeros(&mut self.pool, 1, 1);
        seed.set(0, 0, 1.0);
        self.nodes[output.0].grad = Some(seed);

        for i in (0..=output.0).rev() {
            let Some(grad) = self.nodes[i].grad.take() else {
                continue;
            };
            // Borrow the op as a local so the match arms can call `&mut self`
            // helpers; it is moved back (unchanged) after the arm runs.
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Input);
            match &op {
                Op::Input | Op::Param => {}
                Op::Embed { table, indices } => {
                    for (row, &ix) in indices.iter().enumerate() {
                        let mut buf = self.pool.pop().unwrap_or_default();
                        buf.clear();
                        buf.extend_from_slice(grad.row(row));
                        self.embed_grads.push((*table, ix, buf));
                    }
                }
                Op::MatMul(a, b) => {
                    // da = grad × bᵀ, db = aᵀ × grad — both transpose-free.
                    let mut da = pooled_zeros(
                        &mut self.pool,
                        grad.rows(),
                        self.nodes[b.0].value.rows(),
                    );
                    grad.matmul_bt_into(&self.nodes[b.0].value, &mut da);
                    let mut db = pooled_zeros(
                        &mut self.pool,
                        self.nodes[a.0].value.cols(),
                        grad.cols(),
                    );
                    self.nodes[a.0].value.at_matmul_into(&grad, &mut db);
                    self.add_grad(*a, da);
                    self.add_grad(*b, db);
                }
                Op::Affine { x, w, b } => {
                    let mut dx = pooled_zeros(
                        &mut self.pool,
                        grad.rows(),
                        self.nodes[w.0].value.rows(),
                    );
                    grad.matmul_bt_into(&self.nodes[w.0].value, &mut dx);
                    // dW += xᵀ·grad and db += Σrows(grad) accumulate in
                    // place on the param node's grad (take/put-back), which
                    // skips a fresh zeroed tensor plus a merge pass per
                    // affine node. Loop order is fixed, so results stay
                    // deterministic.
                    let in_dim = self.nodes[x.0].value.cols();
                    let out_dim = grad.cols();
                    let mut gw = match self.nodes[w.0].grad.take() {
                        Some(g) => g,
                        None => pooled_zeros(&mut self.pool, in_dim, out_dim),
                    };
                    {
                        // Same SIMD scatter as `at_matmul_into`, minus the
                        // zeroing: accumulates into the live grad with the
                        // identical ascending-row fma chain per element, so
                        // fused == unfused stays bitwise.
                        let xv = &self.nodes[x.0].value;
                        crate::simd::scatter_at(
                            xv.as_slice(),
                            grad.rows(),
                            in_dim,
                            grad.as_slice(),
                            out_dim,
                            gw.as_mut_slice(),
                        );
                    }
                    self.nodes[w.0].grad = Some(gw);
                    let mut gb = match self.nodes[b.0].grad.take() {
                        Some(g) => g,
                        None => pooled_zeros(&mut self.pool, 1, out_dim),
                    };
                    for r in 0..grad.rows() {
                        for (o, &d) in gb.as_mut_slice().iter_mut().zip(grad.row(r)) {
                            *o += d;
                        }
                    }
                    self.nodes[b.0].grad = Some(gb);
                    self.add_grad(*x, dx);
                }
                Op::Add(a, b) => {
                    let da = pooled_copy(&mut self.pool, &grad);
                    self.add_grad(*a, da);
                    let db = pooled_copy(&mut self.pool, &grad);
                    self.add_grad(*b, db);
                }
                Op::AddRow(a, row) => {
                    let mut drow = pooled_zeros(&mut self.pool, 1, grad.cols());
                    grad.col_sum_into(&mut drow);
                    let da = pooled_copy(&mut self.pool, &grad);
                    self.add_grad(*a, da);
                    self.add_grad(*row, drow);
                }
                Op::Sub(a, b) => {
                    let da = pooled_copy(&mut self.pool, &grad);
                    self.add_grad(*a, da);
                    let mut db = pooled_copy(&mut self.pool, &grad);
                    db.scale_assign(-1.0);
                    self.add_grad(*b, db);
                }
                Op::Mul(a, b) => {
                    let mut da = pooled_copy(&mut self.pool, &grad);
                    for (x, y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[b.0].value.as_slice())
                    {
                        *x *= y;
                    }
                    let mut db = pooled_copy(&mut self.pool, &grad);
                    for (x, y) in db
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        *x *= y;
                    }
                    self.add_grad(*a, da);
                    self.add_grad(*b, db);
                }
                Op::Scale(a, s) => {
                    let mut da = pooled_copy(&mut self.pool, &grad);
                    da.scale_assign(*s);
                    self.add_grad(*a, da);
                }
                Op::Relu(a) => {
                    let mut da = pooled_copy(&mut self.pool, &grad);
                    for (g, &x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        if x <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.add_grad(*a, da);
                }
                Op::Sigmoid(a) => {
                    let mut da = pooled_copy(&mut self.pool, &grad);
                    for (g, &y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *g *= y * (1.0 - y);
                    }
                    self.add_grad(*a, da);
                }
                Op::Tanh(a) => {
                    let mut da = pooled_copy(&mut self.pool, &grad);
                    for (g, &y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *g *= 1.0 - y * y;
                    }
                    self.add_grad(*a, da);
                }
                Op::ConcatCols(parts) => {
                    let mut at = 0;
                    for &p in parts {
                        let cols = self.nodes[p.0].value.cols();
                        let mut dp = pooled_zeros(&mut self.pool, grad.rows(), cols);
                        for r in 0..grad.rows() {
                            dp.row_mut(r).copy_from_slice(&grad.row(r)[at..at + cols]);
                        }
                        self.add_grad(p, dp);
                        at += cols;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut at = 0;
                    for &p in parts {
                        let rows = self.nodes[p.0].value.rows();
                        let mut dp = pooled_zeros(&mut self.pool, rows, grad.cols());
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(grad.row(at + r));
                        }
                        self.add_grad(p, dp);
                        at += rows;
                    }
                }
                Op::SliceCols(a, start, len) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let mut da = pooled_zeros(&mut self.pool, rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[*start..*start + *len].copy_from_slice(grad.row(r));
                    }
                    self.add_grad(*a, da);
                }
                Op::MeanRows(a) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let inv = 1.0 / rows.max(1) as f32;
                    let mut da = pooled_zeros(&mut self.pool, rows, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            da.set(r, c, grad.get(0, c) * inv);
                        }
                    }
                    self.add_grad(*a, da);
                }
                Op::MeanAll(a) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let inv = grad.get(0, 0) / (rows * cols).max(1) as f32;
                    let mut da = pooled_zeros(&mut self.pool, rows, cols);
                    da.as_mut_slice().iter_mut().for_each(|v| *v = inv);
                    self.add_grad(*a, da);
                }
                Op::Conv3x1 { x, w, b } => {
                    let (n, c) = self.nodes[x.0].value.shape();
                    let mut dx = pooled_zeros(&mut self.pool, n, c);
                    let mut dw = pooled_zeros(&mut self.pool, 3, c);
                    let mut db = pooled_zeros(&mut self.pool, 1, c);
                    for i2 in 0..n {
                        for ch in 0..c {
                            let g = grad.get(i2, ch);
                            if g == 0.0 {
                                continue;
                            }
                            *db.get_mut(0, ch) += g;
                            for k in 0..3usize {
                                let j = i2 as isize + k as isize - 1;
                                if j >= 0 && (j as usize) < n {
                                    let j = j as usize;
                                    *dw.get_mut(k, ch) +=
                                        g * self.nodes[x.0].value.get(j, ch);
                                    *dx.get_mut(j, ch) +=
                                        g * self.nodes[w.0].value.get(k, ch);
                                }
                            }
                        }
                    }
                    self.add_grad(*x, dx);
                    self.add_grad(*w, dw);
                    self.add_grad(*b, db);
                }
                Op::LstmCell {
                    x,
                    prev,
                    wx,
                    wh,
                    b,
                    hidden,
                    act,
                } => {
                    let hh = *hidden;
                    // Incoming grad is over the packed state: dh = grad[..h],
                    // dc_out = grad[h..2h]. Recover pre-activation gate grads
                    // from the saved post-activation gates:
                    //   σ'(y) = y(1−y),  tanh'(y) = 1−y².
                    let mut dpre = pooled_zeros(&mut self.pool, 1, 4 * hh);
                    let mut dprev = prev.map(|_| pooled_zeros(&mut self.pool, 1, 3 * hh));
                    {
                        let a = act.as_slice();
                        let (iv_s, rest) = a.split_at(hh);
                        let (fv_s, rest) = rest.split_at(hh);
                        let (gv_s, ov_s) = rest.split_at(hh);
                        // tanh(c) was stashed by the forward pass in the
                        // third block of the packed state.
                        let tc_s = &self.nodes[i].value.as_slice()[2 * hh..3 * hh];
                        let gs = grad.as_slice();
                        let cp_s =
                            prev.map(|p| &self.nodes[p.0].value.as_slice()[hh..2 * hh]);
                        let dp = dpre.as_mut_slice();
                        let (di_s, rest) = dp.split_at_mut(hh);
                        let (df_s, rest) = rest.split_at_mut(hh);
                        let (dg_s, do_s) = rest.split_at_mut(hh);
                        let mut dc_prev = dprev
                            .as_mut()
                            .map(|d| &mut d.as_mut_slice()[hh..2 * hh]);
                        for j in 0..hh {
                            let iv = iv_s[j];
                            let fv = fv_s[j];
                            let gv = gv_s[j];
                            let ov = ov_s[j];
                            let tc = tc_s[j];
                            let dh = gs[j];
                            let dc = dh * ov * (1.0 - tc * tc) + gs[hh + j];
                            let cp = cp_s.map_or(0.0, |s| s[j]);
                            di_s[j] = dc * gv * iv * (1.0 - iv);
                            df_s[j] = dc * cp * fv * (1.0 - fv);
                            dg_s[j] = dc * iv * (1.0 - gv * gv);
                            do_s[j] = dh * tc * ov * (1.0 - ov);
                            if let Some(d) = dc_prev.as_mut() {
                                d[j] = dc * fv;
                            }
                        }
                    }
    // dx = dpre·Wxᵀ ; dWx += xᵀ·dpre ; dWh += h_prevᵀ·dpre ;
                    // dh_prev = dpre·Whᵀ ; db += dpre.
                    //
                    // Weight gradients accumulate straight into the shared
                    // param node's grad (taken out and put back to satisfy
                    // the borrow checker) instead of zeroing a fresh tensor
                    // and merging. Each cell contributes exactly one product
                    // per element in the same cell order, so the sums are
                    // bitwise identical to the materialize-then-merge form.
                    let mut dx = pooled_zeros(
                        &mut self.pool,
                        1,
                        self.nodes[x.0].value.cols(),
                    );
                    dpre.matmul_bt_into(&self.nodes[wx.0].value, &mut dx);
                    let in_dim = self.nodes[x.0].value.cols();
                    let mut gwx = match self.nodes[wx.0].grad.take() {
                        Some(g) => g,
                        None => pooled_zeros(&mut self.pool, in_dim, 4 * hh),
                    };
                    {
                        let xv = self.nodes[x.0].value.as_slice();
                        let dp = dpre.as_slice();
                        crate::simd::scatter_at(xv, 1, in_dim, dp, 4 * hh, gwx.as_mut_slice());
                    }
                    self.nodes[wx.0].grad = Some(gwx);
                    if let Some(p) = prev {
                        let mut gwh = match self.nodes[wh.0].grad.take() {
                            Some(g) => g,
                            None => pooled_zeros(&mut self.pool, hh, 4 * hh),
                        };
                        let dp = dpre.as_slice();
                        {
                            let pv = &self.nodes[p.0].value.as_slice()[..hh];
                            crate::simd::scatter_at(pv, 1, hh, dp, 4 * hh, gwh.as_mut_slice());
                        }
                        self.nodes[wh.0].grad = Some(gwh);
                        if let Some(d) = dprev.as_mut() {
                            // dh_prev = dpre × Whᵀ: one lane-accumulator dot
                            // per hidden unit, streaming Wh by rows.
                            let whv = &self.nodes[wh.0].value;
                            crate::simd::dot_bt(
                                dp,
                                1,
                                4 * hh,
                                whv.as_slice(),
                                hh,
                                &mut d.as_mut_slice()[..hh],
                            );
                        }
                    } else if self.nodes[wh.0].grad.is_none() {
                        // Keep the grad present even for single-step
                        // sequences so param collection sees every weight.
                        let z = pooled_zeros(&mut self.pool, hh, 4 * hh);
                        self.nodes[wh.0].grad = Some(z);
                    }
                    self.add_grad(*x, dx);
                    self.add_grad(*b, dpre);
                    if let (Some(p), Some(d)) = (prev, dprev) {
                        self.add_grad(*p, d);
                    }
                }
                Op::NormRows { x, gamma, beta, eps } => {
                    let (n, c) = self.nodes[x.0].value.shape();
                    let nf = n.max(1) as f32;
                    let mut dx = pooled_zeros(&mut self.pool, n, c);
                    let mut dg = pooled_zeros(&mut self.pool, 1, c);
                    let mut db = pooled_zeros(&mut self.pool, 1, c);
                    let mut dxhat = self.pool.pop().unwrap_or_default();
                    dxhat.clear();
                    dxhat.resize(n, 0.0);
                    {
                        let xt = &self.nodes[x.0].value;
                        let gt = &self.nodes[gamma.0].value;
                        for ch in 0..c {
                            let mean: f32 =
                                (0..n).map(|r| xt.get(r, ch)).sum::<f32>() / nf;
                            let var: f32 = (0..n)
                                .map(|r| (xt.get(r, ch) - mean).powi(2))
                                .sum::<f32>()
                                / nf;
                            let inv = 1.0 / (var + eps).sqrt();
                            let mut sum_dxhat = 0.0;
                            let mut sum_dxhat_xhat = 0.0;
                            for (r, dxh) in dxhat.iter_mut().enumerate() {
                                let xhat = (xt.get(r, ch) - mean) * inv;
                                let dy = grad.get(r, ch);
                                *db.get_mut(0, ch) += dy;
                                *dg.get_mut(0, ch) += dy * xhat;
                                *dxh = dy * gt.get(0, ch);
                                sum_dxhat += *dxh;
                                sum_dxhat_xhat += *dxh * xhat;
                            }
                            for (r, &dxh) in dxhat.iter().enumerate() {
                                let xhat = (xt.get(r, ch) - mean) * inv;
                                dx.set(
                                    r,
                                    ch,
                                    inv / nf
                                        * (nf * dxh - sum_dxhat - xhat * sum_dxhat_xhat),
                                );
                            }
                        }
                    }
                    self.pool.push(dxhat);
                    self.add_grad(*x, dx);
                    self.add_grad(*gamma, dg);
                    self.add_grad(*beta, db);
                }
            }
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(grad);
        }
    }

    fn add_grad(&mut self, id: NodeId, g: Tensor) {
        match &mut self.nodes[id.0].grad {
            Some(existing) => {
                existing.add_assign(&g);
                self.pool.push(g.into_data());
            }
            slot @ None => *slot = Some(g),
        }
    }

    /// The pre-overhaul reverse sweep, used in [`Graph::set_reference_mode`]:
    /// every node's op and gradient are cloned, matmul rules materialize
    /// explicit transposes (`da = grad×bᵀ`, `db = aᵀ×grad`), and every
    /// intermediate buffer is freshly allocated. Numerically equivalent to
    /// the pooled sweep; kept so benchmark baselines pay the seed path's
    /// real costs.
    fn backward_reference(&mut self, output: NodeId) {
        let mut seed = Tensor::zeros(1, 1);
        seed.set(0, 0, 1.0);
        self.nodes[output.0].grad = Some(seed);

        for i in (0..=output.0).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input | Op::Param => {}
                Op::Embed { table, indices } => {
                    for (row, &ix) in indices.iter().enumerate() {
                        self.embed_grads.push((table, ix, grad.row(row).to_vec()));
                    }
                }
                Op::MatMul(a, b) => {
                    let bt = self.nodes[b.0].value.transpose();
                    let da = grad.matmul_naive(&bt);
                    let at = self.nodes[a.0].value.transpose();
                    let db = at.matmul_naive(&grad);
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Add(a, b) => {
                    self.add_grad(a, grad.clone());
                    self.add_grad(b, grad.clone());
                }
                Op::AddRow(a, row) => {
                    let mut drow = Tensor::zeros(1, grad.cols());
                    grad.col_sum_into(&mut drow);
                    self.add_grad(a, grad.clone());
                    self.add_grad(row, drow);
                }
                Op::Sub(a, b) => {
                    self.add_grad(a, grad.clone());
                    let mut db = grad.clone();
                    db.scale_assign(-1.0);
                    self.add_grad(b, db);
                }
                Op::Mul(a, b) => {
                    let mut da = grad.clone();
                    for (x, y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[b.0].value.as_slice())
                    {
                        *x *= y;
                    }
                    let mut db = grad.clone();
                    for (x, y) in db
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        *x *= y;
                    }
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Scale(a, s) => {
                    let mut da = grad.clone();
                    da.scale_assign(s);
                    self.add_grad(a, da);
                }
                Op::Relu(a) => {
                    let mut da = grad.clone();
                    for (g, &x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        if x <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.add_grad(a, da);
                }
                Op::Sigmoid(a) => {
                    let mut da = grad.clone();
                    for (g, &y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *g *= y * (1.0 - y);
                    }
                    self.add_grad(a, da);
                }
                Op::Tanh(a) => {
                    let mut da = grad.clone();
                    for (g, &y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *g *= 1.0 - y * y;
                    }
                    self.add_grad(a, da);
                }
                Op::ConcatCols(parts) => {
                    let mut at = 0;
                    for &p in &parts {
                        let cols = self.nodes[p.0].value.cols();
                        let mut dp = Tensor::zeros(grad.rows(), cols);
                        for r in 0..grad.rows() {
                            dp.row_mut(r).copy_from_slice(&grad.row(r)[at..at + cols]);
                        }
                        self.add_grad(p, dp);
                        at += cols;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut at = 0;
                    for &p in &parts {
                        let rows = self.nodes[p.0].value.rows();
                        let mut dp = Tensor::zeros(rows, grad.cols());
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(grad.row(at + r));
                        }
                        self.add_grad(p, dp);
                        at += rows;
                    }
                }
                Op::SliceCols(a, start, len) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[start..start + len].copy_from_slice(grad.row(r));
                    }
                    self.add_grad(a, da);
                }
                Op::MeanRows(a) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let inv = 1.0 / rows.max(1) as f32;
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            da.set(r, c, grad.get(0, c) * inv);
                        }
                    }
                    self.add_grad(a, da);
                }
                Op::MeanAll(a) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let inv = grad.get(0, 0) / (rows * cols).max(1) as f32;
                    let mut da = Tensor::zeros(rows, cols);
                    da.as_mut_slice().iter_mut().for_each(|v| *v = inv);
                    self.add_grad(a, da);
                }
                Op::Conv3x1 { x, w, b } => {
                    let (n, c) = self.nodes[x.0].value.shape();
                    let mut dx = Tensor::zeros(n, c);
                    let mut dw = Tensor::zeros(3, c);
                    let mut db = Tensor::zeros(1, c);
                    for i2 in 0..n {
                        for ch in 0..c {
                            let g = grad.get(i2, ch);
                            if g == 0.0 {
                                continue;
                            }
                            *db.get_mut(0, ch) += g;
                            for k in 0..3usize {
                                let j = i2 as isize + k as isize - 1;
                                if j >= 0 && (j as usize) < n {
                                    let j = j as usize;
                                    *dw.get_mut(k, ch) +=
                                        g * self.nodes[x.0].value.get(j, ch);
                                    *dx.get_mut(j, ch) +=
                                        g * self.nodes[w.0].value.get(k, ch);
                                }
                            }
                        }
                    }
                    self.add_grad(x, dx);
                    self.add_grad(w, dw);
                    self.add_grad(b, db);
                }
                Op::NormRows { x, gamma, beta, eps } => {
                    let (n, c) = self.nodes[x.0].value.shape();
                    let nf = n.max(1) as f32;
                    let mut dx = Tensor::zeros(n, c);
                    let mut dg = Tensor::zeros(1, c);
                    let mut db = Tensor::zeros(1, c);
                    let mut dxhat = vec![0.0f32; n];
                    {
                        let xt = &self.nodes[x.0].value;
                        let gt = &self.nodes[gamma.0].value;
                        for ch in 0..c {
                            let mean: f32 =
                                (0..n).map(|r| xt.get(r, ch)).sum::<f32>() / nf;
                            let var: f32 = (0..n)
                                .map(|r| (xt.get(r, ch) - mean).powi(2))
                                .sum::<f32>()
                                / nf;
                            let inv = 1.0 / (var + eps).sqrt();
                            let mut sum_dxhat = 0.0;
                            let mut sum_dxhat_xhat = 0.0;
                            for (r, dxh) in dxhat.iter_mut().enumerate() {
                                let xhat = (xt.get(r, ch) - mean) * inv;
                                let dy = grad.get(r, ch);
                                *db.get_mut(0, ch) += dy;
                                *dg.get_mut(0, ch) += dy * xhat;
                                *dxh = dy * gt.get(0, ch);
                                sum_dxhat += *dxh;
                                sum_dxhat_xhat += *dxh * xhat;
                            }
                            for (r, &dxh) in dxhat.iter().enumerate() {
                                let xhat = (xt.get(r, ch) - mean) * inv;
                                dx.set(
                                    r,
                                    ch,
                                    inv / nf
                                        * (nf * dxh - sum_dxhat - xhat * sum_dxhat_xhat),
                                );
                            }
                        }
                    }
                    self.add_grad(x, dx);
                    self.add_grad(gamma, dg);
                    self.add_grad(beta, db);
                }
                Op::Affine { .. } | Op::LstmCell { .. } => {
                    unreachable!("reference-mode tapes never contain fused ops")
                }
            }
        }
    }

    /// Hand every parameter and embedding gradient to the store (additive).
    /// Call after [`Graph::backward`]. Clears the collected gradients but
    /// keeps their capacity for the next pass.
    pub fn accumulate_param_grads(&mut self, store: &mut ParamStore) {
        for k in 0..self.param_nodes.len() {
            let (pid, nid) = self.param_nodes[k];
            if let Some(g) = self.nodes[nid.0].grad.take() {
                store.accumulate_grad(pid, &g);
                self.pool.push(g.into_data());
            }
        }
        self.param_nodes.retain(|&(_, nid)| nid.0 < self.pinned);
        for k in 0..self.embed_grads.len() {
            let (table, row) = (self.embed_grads[k].0, self.embed_grads[k].1);
            let grow = std::mem::take(&mut self.embed_grads[k].2);
            let p = store.param_mut(table);
            for (c, g) in grow.iter().enumerate() {
                *p.grad.get_mut(row, c) += g;
            }
            self.pool.push(grow);
        }
        self.embed_grads.clear();
    }

    /// Like [`Graph::accumulate_param_grads`], but moves the gradients into
    /// a detached per-sample [`GradBlock`] instead of the store. This is
    /// what lets the data-parallel trainer compute sample gradients on
    /// worker threads and reduce them later in a fixed sample order.
    ///
    /// Dense parameter gradients add into the block's per-[`ParamId`]
    /// tensors; sparse embedding-row gradients are *logged* (table, row,
    /// values) in recording order rather than scattered into a dense table,
    /// so replaying the block with [`GradBlock::add_into`] performs exactly
    /// the additions direct accumulation would — see [`GradBlock`].
    pub fn take_param_grads(&mut self, block: &mut GradBlock) {
        for k in 0..self.param_nodes.len() {
            let (pid, nid) = self.param_nodes[k];
            if let Some(g) = self.nodes[nid.0].grad.take() {
                block.dense[pid.0].add_assign(&g);
                self.pool.push(g.into_data());
            }
        }
        self.param_nodes.retain(|&(_, nid)| nid.0 < self.pinned);
        for k in 0..self.embed_grads.len() {
            let (table, row) = (self.embed_grads[k].0, self.embed_grads[k].1);
            let grow = std::mem::take(&mut self.embed_grads[k].2);
            block.sparse_index.push((table, row, grow.len()));
            block.sparse_data.extend_from_slice(&grow);
            self.pool.push(grow);
        }
        self.embed_grads.clear();
    }
}

/// A detached per-sample gradient bundle: one dense tensor per parameter
/// plus a flat log of sparse embedding-row gradients in recording order.
///
/// Replaying blocks into a [`ParamStore`] in ascending sample order (dense
/// tensors, then the sparse log) performs exactly the same `f32` additions,
/// in the same order, as [`Graph::accumulate_param_grads`] would have done
/// sample by sample — including when one sample touches the same embedding
/// row more than once, where a dense-scattered block would change the
/// summation association. That equivalence is what makes the trainer's
/// serial direct-accumulation fast path bitwise identical to the
/// multi-worker block reduction.
#[derive(Debug)]
pub struct GradBlock {
    dense: Vec<Tensor>,
    /// `(table, row, len)` triples indexing into `sparse_data`.
    sparse_index: Vec<(ParamId, usize, usize)>,
    sparse_data: Vec<f32>,
}

impl GradBlock {
    /// Zeroed block shaped like `store`'s parameters.
    pub fn for_store(store: &ParamStore) -> GradBlock {
        GradBlock {
            dense: store.grad_template(),
            sparse_index: Vec::new(),
            sparse_data: Vec::new(),
        }
    }

    /// Clear for reuse, keeping every buffer's capacity.
    pub fn zero(&mut self) {
        for t in &mut self.dense {
            t.zero();
        }
        self.sparse_index.clear();
        self.sparse_data.clear();
    }

    /// Add this block into the store's accumulated gradients: dense tensors
    /// parameter by parameter, then the sparse embedding rows in recording
    /// order.
    pub fn add_into(&self, store: &mut ParamStore) {
        store.add_grad_block(&self.dense);
        let mut at = 0;
        for &(table, row, len) in &self.sparse_index {
            let dst = store.param_mut(table).grad.row_mut(row);
            for (d, g) in dst.iter_mut().zip(&self.sparse_data[at..at + len]) {
                *d += g;
            }
            at += len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matmul_add_row() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0]]));
        let w = g.input(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let b = g.input(Tensor::from_rows(&[&[10.0, 20.0]]));
        let y = g.matmul(x, w);
        let z = g.add_row(y, b);
        assert_eq!(g.value(z), &Tensor::from_rows(&[&[11.0, 22.0]]));
    }

    #[test]
    fn affine_matches_matmul_add_row_bitwise() {
        let mut store = ParamStore::with_seed(21);
        let w = store.add_xavier(3, 4);
        let b = store.add_xavier(1, 4);
        let x0 = Tensor::from_rows(&[&[0.3, -1.2, 0.7], &[2.0, 0.1, -0.4]]);

        let mut g1 = Graph::new();
        let x = g1.input(x0.clone());
        let wp = g1.param(&store, w);
        let bp = g1.param(&store, b);
        let y = g1.matmul(x, wp);
        let unfused = g1.add_row(y, bp);

        let mut g2 = Graph::new();
        let x = g2.input(x0);
        let wp = g2.param(&store, w);
        let bp = g2.param(&store, b);
        let fused = g2.affine(x, wp, bp);

        assert_eq!(g1.value(unfused), g2.value(fused));
    }

    #[test]
    fn affine_backward_matches_unfused_bitwise() {
        let mut store1 = ParamStore::with_seed(33);
        let w1 = store1.add_xavier(3, 2);
        let b1 = store1.add_xavier(1, 2);
        let mut store2 = store1.clone();
        let x0 = Tensor::from_rows(&[&[0.5, -0.3, 1.1], &[-0.8, 0.2, 0.9]]);

        let mut g1 = Graph::new();
        let x = g1.input(x0.clone());
        let wp = g1.param(&store1, w1);
        let bp = g1.param(&store1, b1);
        let y = g1.matmul(x, wp);
        let z = g1.add_row(y, bp);
        let t = g1.input(Tensor::zeros(2, 2));
        let loss = g1.mse(z, t);
        g1.backward(loss);
        g1.accumulate_param_grads(&mut store1);

        let mut g2 = Graph::new();
        let x = g2.input(x0);
        let wp = g2.param(&store2, w1);
        let bp = g2.param(&store2, b1);
        let z = g2.affine(x, wp, bp);
        let t = g2.input(Tensor::zeros(2, 2));
        let loss = g2.mse(z, t);
        g2.backward(loss);
        g2.accumulate_param_grads(&mut store2);

        assert_eq!(store1.param_mut(w1).grad, store2.param_mut(w1).grad);
        assert_eq!(store1.param_mut(b1).grad, store2.param_mut(b1).grad);
    }

    #[test]
    fn reset_reuse_is_bitwise_identical_to_fresh_graph() {
        let mut store = ParamStore::with_seed(7);
        let w = store.add_xavier(4, 4);
        let b = store.add_xavier(1, 4);
        let emb = store.add_xavier(5, 4);
        let run = |g: &mut Graph, store: &mut ParamStore| -> (Tensor, Tensor) {
            let x = g.embed(store, emb, &[1, 3, 1]);
            let wp = g.param(store, w);
            let bp = g.param(store, b);
            let h = g.affine(x, wp, bp);
            let h = g.tanh(h);
            let pooled = g.mean_rows(h);
            let loss = g.mean_all(pooled);
            g.backward(loss);
            store.zero_grads();
            g.accumulate_param_grads(store);
            (g.value(loss).clone(), store.param_mut(emb).grad.clone())
        };

        // Warm an arena graph with a different-shaped pass first.
        let mut arena = Graph::new();
        let x = arena.input(Tensor::full(7, 2, 0.25));
        let l = arena.mean_all(x);
        arena.backward(l);
        arena.reset();
        let (loss_arena, grad_arena) = run(&mut arena, &mut store);

        let mut fresh = Graph::new();
        let (loss_fresh, grad_fresh) = run(&mut fresh, &mut store);

        assert_eq!(loss_arena, loss_fresh);
        assert_eq!(grad_arena, grad_fresh);
        arena.reset();
        assert!(arena.is_empty());
        assert!(arena.pool_len() > 0, "reset must harvest buffers");
    }

    #[test]
    fn steady_state_pool_size_is_stable() {
        // After one warm pass, repeated identical passes must not grow the
        // free-list: every allocation is served from (and returned to) it.
        let mut store = ParamStore::with_seed(9);
        let w = store.add_xavier(6, 6);
        let b = store.add_zeros(1, 6);
        let mut g = Graph::new();
        let pass = |g: &mut Graph, store: &mut ParamStore| {
            let mut xv = g.scratch(3, 6);
            xv.as_mut_slice().iter_mut().for_each(|v| *v = 0.1);
            let x = g.input(xv);
            let wp = g.param(store, w);
            let bp = g.param(store, b);
            let h = g.affine(x, wp, bp);
            let h = g.relu(h);
            let l = g.mean_all(h);
            g.backward(l);
            g.accumulate_param_grads(store);
            g.reset();
        };
        pass(&mut g, &mut store);
        pass(&mut g, &mut store);
        let warm = g.pool_len();
        for _ in 0..5 {
            pass(&mut g, &mut store);
            assert_eq!(g.pool_len(), warm, "steady state must not allocate");
        }
    }

    #[test]
    fn take_param_grads_matches_store_accumulation() {
        let mut store = ParamStore::with_seed(13);
        let w = store.add_xavier(3, 3);
        let emb = store.add_xavier(4, 3);
        let build = |g: &mut Graph, store: &ParamStore| {
            let x = g.embed(store, emb, &[0, 2, 0]);
            let wp = g.param(store, w);
            let h = g.matmul(x, wp);
            let t = g.tanh(h);
            g.mean_all(t)
        };

        let mut g1 = Graph::new();
        let l = build(&mut g1, &store);
        g1.backward(l);
        store.zero_grads();
        g1.accumulate_param_grads(&mut store);
        let direct_w = store.param_mut(w).grad.clone();
        let direct_e = store.param_mut(emb).grad.clone();

        let mut g2 = Graph::new();
        let l = build(&mut g2, &store);
        g2.backward(l);
        let mut block = GradBlock::for_store(&store);
        g2.take_param_grads(&mut block);
        store.zero_grads();
        block.add_into(&mut store);

        assert_eq!(store.param_mut(w).grad, direct_w);
        assert_eq!(store.param_mut(emb).grad, direct_e);
    }

    #[test]
    fn backward_through_linear() {
        // loss = mean((x·w − t)²); with scalars: x=3, w=2, t=5 → d/dw = 2(xw−t)x = 2·1·3 = 6
        let mut store = ParamStore::with_seed(0);
        let w = store.add(Tensor::from_vec(1, 1, vec![2.0]));
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 1, vec![3.0]));
        let wp = g.param(&store, w);
        let y = g.matmul(x, wp);
        let t = g.input(Tensor::from_vec(1, 1, vec![5.0]));
        let loss = g.mse(y, t);
        assert!((g.value(loss).get(0, 0) - 1.0).abs() < 1e-6);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        assert!((store.param_mut(w).grad.get(0, 0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn param_leaves_are_deduped() {
        let mut store = ParamStore::with_seed(0);
        let w = store.add_xavier(2, 2);
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let b = g.param(&store, w);
        assert_eq!(a, b);
    }

    #[test]
    fn embed_gathers_rows_and_scatters_grads() {
        let mut store = ParamStore::with_seed(0);
        let table = store.add(Tensor::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[2.0, 2.0],
        ]));
        let mut g = Graph::new();
        let e = g.embed(&store, table, &[2, 0, 2]);
        assert_eq!(
            g.value(e),
            &Tensor::from_rows(&[&[2.0, 2.0], &[1.0, 0.0], &[2.0, 2.0]])
        );
        let pooled = g.mean_all(e);
        g.backward(pooled);
        g.accumulate_param_grads(&mut store);
        let grad = &store.param_mut(table).grad;
        // Each element's grad is 1/6; row 2 used twice → 2/6 per element.
        assert!((grad.get(2, 0) - 2.0 / 6.0).abs() < 1e-6);
        assert!((grad.get(0, 1) - 1.0 / 6.0).abs() < 1e-6);
        assert_eq!(grad.get(1, 0), 0.0);
    }

    #[test]
    fn relu_blocks_negative_gradient() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[-1.0, 2.0]]));
        let y = g.relu(x);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[0.0, 2.0]]));
        let l = g.mean_all(y);
        g.backward(l);
        let gx = g.grad(x);
        assert_eq!(gx.get(0, 0), 0.0);
        assert!((gx.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = g.input(Tensor::from_rows(&[&[3.0]]));
        let cat = g.concat_cols(&[a, b]);
        let back = g.slice_cols(cat, 0, 2);
        assert_eq!(g.value(back), &Tensor::from_rows(&[&[1.0, 2.0]]));
        let tail = g.slice_cols(cat, 2, 1);
        assert_eq!(g.value(tail), &Tensor::from_rows(&[&[3.0]]));
    }

    #[test]
    fn conv3x1_identity_kernel_preserves_input() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        // kernel [0, 1, 0] = identity
        let w = g.input(Tensor::from_rows(&[&[0.0], &[1.0], &[0.0]]));
        let b = g.input(Tensor::zeros(1, 1));
        let y = g.conv3x1(x, w, b);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
    }

    #[test]
    fn conv3x1_shift_kernel_uses_zero_padding() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        // kernel [1, 0, 0] picks x[i−1]: first output row sees the zero pad.
        let w = g.input(Tensor::from_rows(&[&[1.0], &[0.0], &[0.0]]));
        let b = g.input(Tensor::zeros(1, 1));
        let y = g.conv3x1(x, w, b);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[0.0], &[1.0], &[2.0]]));
    }

    #[test]
    fn norm_rows_standardizes_columns() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0], &[3.0]]));
        let gamma = g.input(Tensor::from_rows(&[&[1.0]]));
        let beta = g.input(Tensor::from_rows(&[&[0.0]]));
        let y = g.norm_rows(x, gamma, beta);
        // mean 2, std 1 → normalized to ±1 (up to eps)
        assert!((g.value(y).get(0, 0) + 1.0).abs() < 1e-2);
        assert!((g.value(y).get(1, 0) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn mean_rows_pools_columns() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]));
        let y = g.mean_rows(x);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[2.0, 20.0]]));
    }

    #[test]
    #[should_panic(expected = "backward seed must be a scalar loss")]
    fn backward_rejects_non_scalar_seed() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }
}
