//! Tape-based reverse-mode autograd.
//!
//! A [`Graph`] is built per forward pass: every operation appends a node
//! holding its computed value and enough structure to run the chain rule in
//! reverse. Parameters enter the graph by value (copied from the
//! [`ParamStore`]) and their gradients are handed back to the store after
//! `backward`, so the graph never borrows the store.

use crate::tensor::{ParamId, ParamStore, Tensor};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input — no gradient flows out.
    Input,
    /// Parameter leaf — gradient is collected for the store via the
    /// graph's `param_nodes` map.
    Param,
    /// Row gather from an embedding table parameter. The table itself is
    /// never copied into the graph; gradients scatter back sparsely.
    Embed {
        table: ParamId,
        indices: Vec<usize>,
    },
    /// Matrix product `a × b`.
    MatMul(NodeId, NodeId),
    /// Elementwise sum of equal shapes.
    Add(NodeId, NodeId),
    /// `(n×c) + (1×c)` broadcast of a row vector.
    AddRow(NodeId, NodeId),
    /// Elementwise difference.
    Sub(NodeId, NodeId),
    /// Elementwise (Hadamard) product.
    Mul(NodeId, NodeId),
    /// Multiply by a constant.
    Scale(NodeId, f32),
    Relu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    /// Concatenate along columns (equal row counts).
    ConcatCols(Vec<NodeId>),
    /// Stack along rows (equal column counts).
    ConcatRows(Vec<NodeId>),
    /// Columns `[start, start+len)` of the source.
    SliceCols(NodeId, usize, usize),
    /// Column-wise mean over rows → `1×c` (average pooling).
    MeanRows(NodeId),
    /// Mean over all elements → `1×1`.
    MeanAll(NodeId),
    /// Depthwise 3×1 convolution along rows with zero padding:
    /// `out[i,c] = b[c] + Σ_k w[k,c]·x[i+k−1,c]`.
    Conv3x1 { x: NodeId, w: NodeId, b: NodeId },
    /// Per-column batch normalization over rows with learned scale/shift.
    NormRows {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// One forward pass's computation tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Dedup of param leaves so layers reused across timesteps share a node.
    param_nodes: Vec<(ParamId, NodeId)>,
    /// Sparse gradients for embedding tables: (table, row, grad-row).
    embed_grads: Vec<(ParamId, usize, Vec<f32>)>,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Graph {
        Graph::default()
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`Graph::backward`], zeros if none reached it.
    pub fn grad(&self, id: NodeId) -> Tensor {
        match &self.nodes[id.0].grad {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.nodes[id.0].value.shape();
                Tensor::zeros(r, c)
            }
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- node constructors -------------------------------------------------

    /// Constant input tensor.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Parameter leaf (copied from the store, deduped per graph).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        if let Some(&(_, n)) = self.param_nodes.iter().find(|(p, _)| *p == id) {
            return n;
        }
        let n = self.push(store.value(id).clone(), Op::Param);
        self.param_nodes.push((id, n));
        n
    }

    /// Embedding lookup: gather `indices` rows of table parameter `table`.
    pub fn embed(&mut self, store: &ParamStore, table: ParamId, indices: &[usize]) -> NodeId {
        let t = store.value(table);
        let mut out = Tensor::zeros(indices.len(), t.cols());
        for (i, &ix) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(t.row(ix));
        }
        self.push(
            out,
            Op::Embed {
                table,
                indices: indices.to_vec(),
            },
        )
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum (equal shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let mut v = va.clone();
        v.add_assign(vb);
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast-add a `1×c` row vector to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (va, vr) = (self.value(a), self.value(row));
        assert_eq!(vr.rows(), 1, "add_row needs a 1×c row vector");
        assert_eq!(va.cols(), vr.cols(), "add_row column mismatch");
        let mut v = va.clone();
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                *v.get_mut(r, c) += vr.get(0, c);
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let mut v = va.clone();
        for (x, y) in v.as_mut_slice().iter_mut().zip(vb.as_slice()) {
            *x -= y;
        }
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let mut v = va.clone();
        for (x, y) in v.as_mut_slice().iter_mut().zip(vb.as_slice()) {
            *x *= y;
        }
        self.push(v, Op::Mul(a, b))
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let mut v = self.value(a).clone();
        v.scale_assign(s);
        self.push(v, Op::Scale(a, s))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        for x in v.as_mut_slice() {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        for x in v.as_mut_slice() {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let mut v = self.value(a).clone();
        for x in v.as_mut_slice() {
            *x = x.tanh();
        }
        self.push(v, Op::Tanh(a))
    }

    /// Concatenate along columns.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut v = Tensor::zeros(rows, total);
        let mut at = 0;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                v.row_mut(r)[at..at + t.cols()].copy_from_slice(t.row(r));
            }
            at += t.cols();
        }
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// Stack along rows.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut v = Tensor::zeros(total, cols);
        let mut at = 0;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.cols(), cols, "concat_rows column mismatch");
            for r in 0..t.rows() {
                v.row_mut(at + r).copy_from_slice(t.row(r));
            }
            at += t.rows();
        }
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Columns `[start, start+len)`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let t = self.value(a);
        assert!(start + len <= t.cols(), "slice_cols out of range");
        let mut v = Tensor::zeros(t.rows(), len);
        for r in 0..t.rows() {
            v.row_mut(r).copy_from_slice(&t.row(r)[start..start + len]);
        }
        self.push(v, Op::SliceCols(a, start, len))
    }

    /// Column-wise mean over rows (average pooling) → `1×c`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let t = self.value(a);
        let n = t.rows().max(1);
        let mut v = Tensor::zeros(1, t.cols());
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                *v.get_mut(0, c) += t.get(r, c);
            }
        }
        v.scale_assign(1.0 / n as f32);
        self.push(v, Op::MeanRows(a))
    }

    /// Mean over all elements → `1×1`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let t = self.value(a);
        let n = (t.rows() * t.cols()).max(1);
        let s: f32 = t.as_slice().iter().sum();
        let v = Tensor::from_vec(1, 1, vec![s / n as f32]);
        self.push(v, Op::MeanAll(a))
    }

    /// Depthwise 3×1 convolution along rows, zero padding (`same` size).
    /// `w` is `3×c`, `b` is `1×c`.
    pub fn conv3x1(&mut self, x: NodeId, w: NodeId, b: NodeId) -> NodeId {
        let (xt, wt, bt) = (self.value(x), self.value(w), self.value(b));
        let (n, c) = xt.shape();
        assert_eq!(wt.shape(), (3, c), "conv3x1 kernel must be 3×c");
        assert_eq!(bt.shape(), (1, c), "conv3x1 bias must be 1×c");
        let mut v = Tensor::zeros(n, c);
        for i in 0..n {
            for ch in 0..c {
                let mut acc = bt.get(0, ch);
                for k in 0..3usize {
                    let j = i as isize + k as isize - 1;
                    if j >= 0 && (j as usize) < n {
                        acc += wt.get(k, ch) * xt.get(j as usize, ch);
                    }
                }
                v.set(i, ch, acc);
            }
        }
        self.push(v, Op::Conv3x1 { x, w, b })
    }

    /// Per-column batch normalization over rows with learned `gamma`/`beta`
    /// (both `1×c`).
    pub fn norm_rows(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        const EPS: f32 = 1e-5;
        let (xt, gt, bt) = (self.value(x), self.value(gamma), self.value(beta));
        let (n, c) = xt.shape();
        assert_eq!(gt.shape(), (1, c), "gamma must be 1×c");
        assert_eq!(bt.shape(), (1, c), "beta must be 1×c");
        let mut v = Tensor::zeros(n, c);
        for ch in 0..c {
            let mean: f32 = (0..n).map(|r| xt.get(r, ch)).sum::<f32>() / n.max(1) as f32;
            let var: f32 = (0..n)
                .map(|r| (xt.get(r, ch) - mean).powi(2))
                .sum::<f32>()
                / n.max(1) as f32;
            let inv = 1.0 / (var + EPS).sqrt();
            for r in 0..n {
                let xhat = (xt.get(r, ch) - mean) * inv;
                v.set(r, ch, gt.get(0, ch) * xhat + bt.get(0, ch));
            }
        }
        self.push(
            v,
            Op::NormRows {
                x,
                gamma,
                beta,
                eps: EPS,
            },
        )
    }

    /// Mean-squared-error loss between equal-shaped prediction and target.
    pub fn mse(&mut self, pred: NodeId, target: NodeId) -> NodeId {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    // ---- backward ----------------------------------------------------------

    /// Run the chain rule in reverse from `output`, which must be `1×1`
    /// (a loss). Gradients land on every node; parameter and embedding
    /// gradients can then be handed to the store via
    /// [`Graph::accumulate_param_grads`].
    pub fn backward(&mut self, output: NodeId) {
        assert_eq!(
            self.value(output).shape(),
            (1, 1),
            "backward seed must be a scalar loss"
        );
        self.nodes[output.0].grad = Some(Tensor::full(1, 1, 1.0));

        for i in (0..=output.0).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input | Op::Param => {}
                Op::Embed { table, indices, .. } => {
                    for (row, &ix) in indices.iter().enumerate() {
                        self.embed_grads.push((table, ix, grad.row(row).to_vec()));
                    }
                }
                Op::MatMul(a, b) => {
                    let bt = self.nodes[b.0].value.transpose();
                    let da = grad.matmul(&bt);
                    let at = self.nodes[a.0].value.transpose();
                    let db = at.matmul(&grad);
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Add(a, b) => {
                    self.add_grad(a, grad.clone());
                    self.add_grad(b, grad);
                }
                Op::AddRow(a, row) => {
                    let mut drow = Tensor::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        for c in 0..grad.cols() {
                            *drow.get_mut(0, c) += grad.get(r, c);
                        }
                    }
                    self.add_grad(a, grad);
                    self.add_grad(row, drow);
                }
                Op::Sub(a, b) => {
                    let mut neg = grad.clone();
                    neg.scale_assign(-1.0);
                    self.add_grad(a, grad);
                    self.add_grad(b, neg);
                }
                Op::Mul(a, b) => {
                    let mut da = grad.clone();
                    for (x, y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[b.0].value.as_slice())
                    {
                        *x *= y;
                    }
                    let mut db = grad;
                    for (x, y) in db
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        *x *= y;
                    }
                    self.add_grad(a, da);
                    self.add_grad(b, db);
                }
                Op::Scale(a, s) => {
                    let mut da = grad;
                    da.scale_assign(s);
                    self.add_grad(a, da);
                }
                Op::Relu(a) => {
                    let mut da = grad;
                    for (g, &x) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a.0].value.as_slice())
                    {
                        if x <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.add_grad(a, da);
                }
                Op::Sigmoid(a) => {
                    let mut da = grad;
                    for (g, &y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *g *= y * (1.0 - y);
                    }
                    self.add_grad(a, da);
                }
                Op::Tanh(a) => {
                    let mut da = grad;
                    for (g, &y) in da
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[i].value.as_slice())
                    {
                        *g *= 1.0 - y * y;
                    }
                    self.add_grad(a, da);
                }
                Op::ConcatCols(parts) => {
                    let mut at = 0;
                    for p in parts {
                        let cols = self.nodes[p.0].value.cols();
                        let mut dp = Tensor::zeros(grad.rows(), cols);
                        for r in 0..grad.rows() {
                            dp.row_mut(r).copy_from_slice(&grad.row(r)[at..at + cols]);
                        }
                        self.add_grad(p, dp);
                        at += cols;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut at = 0;
                    for p in parts {
                        let rows = self.nodes[p.0].value.rows();
                        let mut dp = Tensor::zeros(rows, grad.cols());
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(grad.row(at + r));
                        }
                        self.add_grad(p, dp);
                        at += rows;
                    }
                }
                Op::SliceCols(a, start, len) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        da.row_mut(r)[start..start + len].copy_from_slice(grad.row(r));
                    }
                    self.add_grad(a, da);
                }
                Op::MeanRows(a) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let inv = 1.0 / rows.max(1) as f32;
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            da.set(r, c, grad.get(0, c) * inv);
                        }
                    }
                    self.add_grad(a, da);
                }
                Op::MeanAll(a) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let inv = grad.get(0, 0) / (rows * cols).max(1) as f32;
                    self.add_grad(a, Tensor::full(rows, cols, inv));
                }
                Op::Conv3x1 { x, w, b } => {
                    let (n, c) = self.nodes[x.0].value.shape();
                    let mut dx = Tensor::zeros(n, c);
                    let mut dw = Tensor::zeros(3, c);
                    let mut db = Tensor::zeros(1, c);
                    for i2 in 0..n {
                        for ch in 0..c {
                            let g = grad.get(i2, ch);
                            if g == 0.0 {
                                continue;
                            }
                            *db.get_mut(0, ch) += g;
                            for k in 0..3usize {
                                let j = i2 as isize + k as isize - 1;
                                if j >= 0 && (j as usize) < n {
                                    let j = j as usize;
                                    *dw.get_mut(k, ch) +=
                                        g * self.nodes[x.0].value.get(j, ch);
                                    *dx.get_mut(j, ch) +=
                                        g * self.nodes[w.0].value.get(k, ch);
                                }
                            }
                        }
                    }
                    self.add_grad(x, dx);
                    self.add_grad(w, dw);
                    self.add_grad(b, db);
                }
                Op::NormRows { x, gamma, beta, eps } => {
                    let xt = self.nodes[x.0].value.clone();
                    let gt = self.nodes[gamma.0].value.clone();
                    let (n, c) = xt.shape();
                    let nf = n.max(1) as f32;
                    let mut dx = Tensor::zeros(n, c);
                    let mut dg = Tensor::zeros(1, c);
                    let mut db = Tensor::zeros(1, c);
                    for ch in 0..c {
                        let mean: f32 = (0..n).map(|r| xt.get(r, ch)).sum::<f32>() / nf;
                        let var: f32 =
                            (0..n).map(|r| (xt.get(r, ch) - mean).powi(2)).sum::<f32>() / nf;
                        let inv = 1.0 / (var + eps).sqrt();
                        let mut sum_dxhat = 0.0;
                        let mut sum_dxhat_xhat = 0.0;
                        let mut dxhat = vec![0.0f32; n];
                        for (r, dxh) in dxhat.iter_mut().enumerate() {
                            let xhat = (xt.get(r, ch) - mean) * inv;
                            let dy = grad.get(r, ch);
                            *db.get_mut(0, ch) += dy;
                            *dg.get_mut(0, ch) += dy * xhat;
                            *dxh = dy * gt.get(0, ch);
                            sum_dxhat += *dxh;
                            sum_dxhat_xhat += *dxh * xhat;
                        }
                        for (r, &dxh) in dxhat.iter().enumerate() {
                            let xhat = (xt.get(r, ch) - mean) * inv;
                            dx.set(
                                r,
                                ch,
                                inv / nf * (nf * dxh - sum_dxhat - xhat * sum_dxhat_xhat),
                            );
                        }
                    }
                    self.add_grad(x, dx);
                    self.add_grad(gamma, dg);
                    self.add_grad(beta, db);
                }
            }
        }
    }

    fn add_grad(&mut self, id: NodeId, g: Tensor) {
        match &mut self.nodes[id.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Hand every parameter and embedding gradient to the store (additive).
    /// Call after [`Graph::backward`].
    pub fn accumulate_param_grads(&mut self, store: &mut ParamStore) {
        for (pid, nid) in std::mem::take(&mut self.param_nodes) {
            if let Some(g) = &self.nodes[nid.0].grad {
                store.accumulate_grad(pid, g);
            }
        }
        for (table, row, grow) in std::mem::take(&mut self.embed_grads) {
            let p = store.param_mut(table);
            for (c, g) in grow.iter().enumerate() {
                *p.grad.get_mut(row, c) += g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matmul_add_row() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0]]));
        let w = g.input(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let b = g.input(Tensor::from_rows(&[&[10.0, 20.0]]));
        let y = g.matmul(x, w);
        let z = g.add_row(y, b);
        assert_eq!(g.value(z), &Tensor::from_rows(&[&[11.0, 22.0]]));
    }

    #[test]
    fn backward_through_linear() {
        // loss = mean((x·w − t)²); with scalars: x=3, w=2, t=5 → d/dw = 2(xw−t)x = 2·1·3 = 6
        let mut store = ParamStore::with_seed(0);
        let w = store.add(Tensor::from_vec(1, 1, vec![2.0]));
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 1, vec![3.0]));
        let wp = g.param(&store, w);
        let y = g.matmul(x, wp);
        let t = g.input(Tensor::from_vec(1, 1, vec![5.0]));
        let loss = g.mse(y, t);
        assert!((g.value(loss).get(0, 0) - 1.0).abs() < 1e-6);
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        assert!((store.param_mut(w).grad.get(0, 0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn param_leaves_are_deduped() {
        let mut store = ParamStore::with_seed(0);
        let w = store.add_xavier(2, 2);
        let mut g = Graph::new();
        let a = g.param(&store, w);
        let b = g.param(&store, w);
        assert_eq!(a, b);
    }

    #[test]
    fn embed_gathers_rows_and_scatters_grads() {
        let mut store = ParamStore::with_seed(0);
        let table = store.add(Tensor::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[2.0, 2.0],
        ]));
        let mut g = Graph::new();
        let e = g.embed(&store, table, &[2, 0, 2]);
        assert_eq!(
            g.value(e),
            &Tensor::from_rows(&[&[2.0, 2.0], &[1.0, 0.0], &[2.0, 2.0]])
        );
        let pooled = g.mean_all(e);
        g.backward(pooled);
        g.accumulate_param_grads(&mut store);
        let grad = &store.param_mut(table).grad;
        // Each element's grad is 1/6; row 2 used twice → 2/6 per element.
        assert!((grad.get(2, 0) - 2.0 / 6.0).abs() < 1e-6);
        assert!((grad.get(0, 1) - 1.0 / 6.0).abs() < 1e-6);
        assert_eq!(grad.get(1, 0), 0.0);
    }

    #[test]
    fn relu_blocks_negative_gradient() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[-1.0, 2.0]]));
        let y = g.relu(x);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[0.0, 2.0]]));
        let l = g.mean_all(y);
        g.backward(l);
        let gx = g.grad(x);
        assert_eq!(gx.get(0, 0), 0.0);
        assert!((gx.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = g.input(Tensor::from_rows(&[&[3.0]]));
        let cat = g.concat_cols(&[a, b]);
        let back = g.slice_cols(cat, 0, 2);
        assert_eq!(g.value(back), &Tensor::from_rows(&[&[1.0, 2.0]]));
        let tail = g.slice_cols(cat, 2, 1);
        assert_eq!(g.value(tail), &Tensor::from_rows(&[&[3.0]]));
    }

    #[test]
    fn conv3x1_identity_kernel_preserves_input() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        // kernel [0, 1, 0] = identity
        let w = g.input(Tensor::from_rows(&[&[0.0], &[1.0], &[0.0]]));
        let b = g.input(Tensor::zeros(1, 1));
        let y = g.conv3x1(x, w, b);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
    }

    #[test]
    fn conv3x1_shift_kernel_uses_zero_padding() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        // kernel [1, 0, 0] picks x[i−1]: first output row sees the zero pad.
        let w = g.input(Tensor::from_rows(&[&[1.0], &[0.0], &[0.0]]));
        let b = g.input(Tensor::zeros(1, 1));
        let y = g.conv3x1(x, w, b);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[0.0], &[1.0], &[2.0]]));
    }

    #[test]
    fn norm_rows_standardizes_columns() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0], &[3.0]]));
        let gamma = g.input(Tensor::from_rows(&[&[1.0]]));
        let beta = g.input(Tensor::from_rows(&[&[0.0]]));
        let y = g.norm_rows(x, gamma, beta);
        // mean 2, std 1 → normalized to ±1 (up to eps)
        assert!((g.value(y).get(0, 0) + 1.0).abs() < 1e-2);
        assert!((g.value(y).get(1, 0) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn mean_rows_pools_columns() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]));
        let y = g.mean_rows(x);
        assert_eq!(g.value(y), &Tensor::from_rows(&[&[2.0, 20.0]]));
    }

    #[test]
    #[should_panic(expected = "backward seed must be a scalar loss")]
    fn backward_rejects_non_scalar_seed() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }
}
