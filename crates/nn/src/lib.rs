//! # av-nn — neural network substrate
//!
//! A from-scratch, dependency-light neural network stack: dense tensors, a
//! tape-based reverse-mode autograd graph, the layers the paper's models
//! need (fully-connected, embedding, LSTM, depthwise 3×1 convolution, batch
//! normalization), and the Adam optimizer.
//!
//! The paper trains two models on this substrate:
//! - the **Wide-Deep cost estimator** (Section IV): keyword embeddings,
//!   char-CNN string encoding, two-level LSTM plan encoding, ResNet blocks;
//! - the **DQN view selector** (Section V-B): a 16→64→16→1 MLP.
//!
//! Gradient correctness is property-tested against finite differences.
//!
//! ```
//! use av_nn::{Adam, Graph, Linear, ParamStore, Tensor};
//!
//! let mut store = ParamStore::with_seed(7);
//! let layer = Linear::new(&mut store, 4, 1);
//! let mut adam = Adam::new(0.05);
//!
//! // Learn y = 10 from a fixed input with a few gradient steps.
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let x = g.input(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
//!     let y = layer.forward_with(&mut g, &store, x);
//!     let target = g.input(Tensor::from_rows(&[&[10.0]]));
//!     let loss = g.mse(y, target);
//!     g.backward(loss);
//!     g.accumulate_param_grads(&mut store);
//!     adam.step(&mut store);
//! }
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
//! let y = layer.forward_with(&mut g, &store, x);
//! assert!((g.value(y).get(0, 0) - 10.0).abs() < 0.1);
//! ```

// `deny` rather than `forbid`: the simd module alone opts back in with a
// scoped allow for its `core::arch` intrinsics, which av-analyze's
// unsafe-scope lint pins to exactly that file.
#![deny(unsafe_code)]

pub mod adam;
pub mod graph;
pub mod layers;
pub mod simd;
pub mod tensor;

pub use adam::Adam;
pub use graph::{GradBlock, Graph, NodeId};
pub use layers::{BatchNorm, Conv3x1, Embedding, Linear, Lstm};
pub use tensor::{ParamId, ParamStore, Tensor};
