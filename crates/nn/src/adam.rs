//! Adam optimizer (Kingma & Ba), the paper's training method for both the
//! Wide-Deep cost model (Algorithm 1, line 14) and the DQN.

use crate::tensor::ParamStore;
use serde::{Deserialize, Serialize};

/// Adam optimizer state shared across all parameters of a store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Timestep for bias correction.
    t: u64,
}

impl Adam {
    /// Adam with standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Per-tensor gradient-norm clip applied before each update. Long LSTM
    /// chains over plan token sequences can explode otherwise.
    pub const MAX_GRAD_NORM: f32 = 5.0;

    /// Apply one update using each parameter's accumulated gradient (clipped
    /// to [`Adam::MAX_GRAD_NORM`]), then zero the gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t = self.t.checked_add(1).expect("Adam timestep overflow");
        // βᵗ in f64: `powi(t as i32)` would silently truncate t beyond
        // i32::MAX, flipping the exponent negative and exploding the
        // correction. f64 `powf` is exact enough (β < 1, so βᵗ → 0
        // monotonically) and f32 precision is restored on the way out.
        let bc1 = 1.0 - (f64::from(self.beta1).powf(self.t as f64)) as f32;
        let bc2 = 1.0 - (f64::from(self.beta2).powf(self.t as f64)) as f32;
        for p in store.params_mut() {
            // Clip via a multiplier instead of materializing a scaled clone;
            // `gi = grad·clip` is the same f32 product either way.
            let norm = p.grad.norm();
            let clip = if norm > Self::MAX_GRAD_NORM {
                Self::MAX_GRAD_NORM / norm
            } else {
                1.0
            };
            // Zipped slices keep the inner loop free of bounds checks; the
            // per-element arithmetic is unchanged.
            for ((&g, m), (v, w)) in p
                .grad
                .as_slice()
                .iter()
                .zip(p.adam_m.as_mut_slice().iter_mut())
                .zip(
                    p.adam_v
                        .as_mut_slice()
                        .iter_mut()
                        .zip(p.value.as_mut_slice().iter_mut()),
                )
            {
                let gi = g * clip;
                *m = self.beta1 * *m + (1.0 - self.beta1) * gi;
                *v = self.beta2 * *v + (1.0 - self.beta2) * gi * gi;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.grad.zero();
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::{ParamStore, Tensor};

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w − 3)² starting from w = 0
        let mut store = ParamStore::with_seed(0);
        let w = store.add(Tensor::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let t = g.input(Tensor::from_vec(1, 1, vec![3.0]));
            let loss = g.mse(wp, t);
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
            adam.step(&mut store);
        }
        assert!((store.value(w).get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::with_seed(0);
        let w = store.add(Tensor::from_vec(1, 1, vec![1.0]));
        store.accumulate_grad(w, &Tensor::from_vec(1, 1, vec![2.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        assert_eq!(store.param_mut(w).grad, Tensor::zeros(1, 1));
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn bias_correction_survives_timesteps_beyond_i32() {
        // Regression: `powi(t as i32)` truncated t past i32::MAX, flipping
        // the exponent negative (βᵗ ≫ 1 → bc ≤ 0) and corrupting updates.
        let mut store = ParamStore::with_seed(0);
        let w = store.add(Tensor::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(0.01);
        adam.t = i32::MAX as u64 + 7;
        store.accumulate_grad(w, &Tensor::from_vec(1, 1, vec![1.0]));
        adam.step(&mut store);
        // At huge t the corrections are exactly 1 (βᵗ underflows to 0), so
        // the step is finite and ≈ lr·m̂/√v̂ = lr·(1−β₁)/√(1−β₂) here.
        let got = store.value(w).get(0, 0);
        assert!(got.is_finite());
        let expect = -0.01 * (1.0 - 0.9) / (1.0f32 - 0.999).sqrt();
        assert!((got - expect).abs() < 1e-5, "got {got}, expected {expect}");
        assert_eq!(adam.steps(), i32::MAX as u64 + 8);
    }

    #[test]
    fn first_step_magnitude_close_to_lr() {
        // With bias correction, the first Adam step ≈ lr in the gradient
        // direction regardless of gradient scale.
        let mut store = ParamStore::with_seed(0);
        let w = store.add(Tensor::from_vec(1, 1, vec![0.0]));
        store.accumulate_grad(w, &Tensor::from_vec(1, 1, vec![1234.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        assert!((store.value(w).get(0, 0) + 0.01).abs() < 1e-4);
    }
}
