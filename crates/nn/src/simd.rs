//! Runtime-dispatched SIMD lane kernels for the hot tensor paths.
//!
//! This is the only module in the workspace allowed to contain `unsafe`
//! code (enforced by av-analyze's `unsafe-scope` lint): the `core::arch`
//! intrinsics below take raw pointers. Everything else stays
//! `deny(unsafe_code)`.
//!
//! # The fixed-order reduction contract
//!
//! Every kernel here commits to a *semantic* definition of each output
//! element that is independent of vector width, strip size, or backend,
//! so results are bitwise identical between the AVX2 path, the portable
//! fallback, and the scalar reference functions used by the property
//! tests:
//!
//! - **axpy family** ([`matmul_rows`], [`scatter_at`]): each output
//!   element is a chain of fused multiply-adds over the shared dimension
//!   in ascending order, `out = fma(a, b, out)`, with the term *skipped*
//!   when the broadcast scalar `a` is exactly `0.0` (embedding one-hots
//!   and ReLU-sparse activations make this skip profitable, and skipping
//!   is not a no-op under FMA semantics — `fma(0, ±inf, x)` is NaN — so
//!   all paths must skip identically). Vectorizing over the *output*
//!   index never reorders a per-element chain, which is what makes the
//!   register-tiled AVX2 strips bitwise-equal to the scalar loop.
//! - **dot family** ([`dot_bt`]): each output element is reduced through
//!   8 fixed lane accumulators — lane `l` sums the terms with index
//!   `t ≡ l (mod 8)` in ascending order via fma — and the lanes are then
//!   folded sequentially `((l0+l1)+l2)…+l7`. An 8-wide vector
//!   accumulator implements exactly this, so the SIMD dot is bitwise
//!   identical to [`dot_lanes_ref`].
//!
//! Both backends use fused multiply-add semantics (`f32::mul_add` in the
//! portable path compiles to the hardware FMA wherever one exists), so a
//! given process produces the same bytes regardless of which backend the
//! dispatcher picks. `AV_NN_SIMD=portable` forces the fallback, which the
//! property tests use to cross-check the two paths on AVX2 hosts.

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Which kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `core::arch::x86_64` AVX2 + FMA intrinsics (runtime-detected).
    Avx2Fma,
    /// Portable `f32::mul_add` loops with the same reduction order.
    Portable,
}

/// The backend every kernel in this module dispatches to, decided once
/// per process: AVX2+FMA when the CPU has it, unless `AV_NN_SIMD=portable`
/// pins the fallback (the property tests use that to compare both paths).
pub fn backend() -> Backend {
    static CHOICE: OnceLock<Backend> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        if std::env::var("AV_NN_SIMD").as_deref() == Ok("portable") {
            return Backend::Portable;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Backend::Avx2Fma;
            }
        }
        Backend::Portable
    })
}

/// `out += A × B` over row-major slices (`A` is `m×k`, `B` is `k×n`,
/// `out` is `m×n` and must be pre-zeroed by the caller). Ascending-`k`
/// fma chain per output element with zero-skip — see the module docs.
pub fn matmul_rows(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::matmul_rows(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2Fma => unreachable!("Avx2Fma backend selected off x86_64"),
        Backend::Portable => portable::matmul_rows(a, m, k, b, n, out),
    }
}

/// One row of the axpy family: `out_row += v × B` for a `1×k` vector over
/// a `k×n` matrix (`out_row` pre-zeroed). Bitwise identical to
/// [`matmul_rows`] with `m = 1`.
pub fn vecmat_row(v: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    matmul_rows(v, 1, v.len(), b, n, out_row);
}

/// `out = A × Bᵀ` over row-major slices (`A` is `m×k`, `B` is `p×k`,
/// `out` is `m×p`; fully overwritten). Each element is a lane-accumulator
/// dot of two rows — see [`dot_lanes_ref`] for the exact reduction order.
pub fn dot_bt(a: &[f32], m: usize, k: usize, b: &[f32], p: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), p * k);
    debug_assert_eq!(out.len(), m * p);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::dot_bt(a, m, k, b, p, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2Fma => unreachable!("Avx2Fma backend selected off x86_64"),
        Backend::Portable => portable::dot_bt(a, m, k, b, p, out),
    }
}

/// `out += Aᵀ × B` over row-major slices (`A` is `m×k`, `B` is `m×n`,
/// `out` is `k×n` and must be pre-zeroed). Ascending-row fma chain per
/// output element with zero-skip.
pub fn scatter_at(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::scatter_at(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2Fma => unreachable!("Avx2Fma backend selected off x86_64"),
        Backend::Portable => portable::scatter_at(a, m, k, b, n, out),
    }
}

// ---------------------------------------------------------------------------
// Scalar references — the semantic ground truth the property tests pin the
// SIMD kernels against. Deliberately the simplest possible expression of the
// fixed-order contract; no unsafe, no unrolling.
// ---------------------------------------------------------------------------

/// Scalar reference for the axpy family: `out += A × B` with per-element
/// ascending-`k` `f32::mul_add` chains and zero-skip.
pub fn matmul_rows_ref(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

/// Scalar reference for the dot family's per-element reduction: 8 fixed
/// lane accumulators by `t mod 8` (each advanced with `f32::mul_add` in
/// ascending `t`), folded sequentially lane 0 → 7.
pub fn dot_lanes_ref(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut lane = [0.0f32; 8];
    for (t, (&a, &b)) in x.iter().zip(y).enumerate() {
        lane[t % 8] = a.mul_add(b, lane[t % 8]);
    }
    let mut acc = lane[0];
    for &l in &lane[1..] {
        acc += l;
    }
    acc
}

/// Scalar reference for [`dot_bt`].
pub fn dot_bt_ref(a: &[f32], m: usize, k: usize, b: &[f32], p: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..p {
            let brow = &b[j * k..(j + 1) * k];
            out[i * p + j] = dot_lanes_ref(arow, brow);
        }
    }
}

/// Scalar reference for [`scatter_at`]: `out += Aᵀ × B` with per-element
/// ascending-row `f32::mul_add` chains and zero-skip.
pub fn scatter_at_ref(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let brow = &b[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable backend: same loops as the references, with the row kernel
// unrolled into fixed-width strips so autovectorizers have something to
// chew on even without the intrinsics path.
// ---------------------------------------------------------------------------

mod portable {
    /// Strip width of the portable unrolled row kernel. Matches one AVX2
    /// register so both backends tile the same way (the contract makes
    /// tiling invisible to results either way).
    const LANES: usize = 8;

    pub fn matmul_rows(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            axpy_row(arow, b, n, orow);
        }
    }

    /// `orow += arow × B`, unrolled into [`LANES`]-wide strips.
    fn axpy_row(arow: &[f32], b: &[f32], n: usize, orow: &mut [f32]) {
        let strips = n / LANES * LANES;
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let mut j = 0;
            while j < strips {
                let o = &mut orow[j..j + LANES];
                let bv = &brow[j..j + LANES];
                for l in 0..LANES {
                    o[l] = av.mul_add(bv[l], o[l]);
                }
                j += LANES;
            }
            while j < n {
                orow[j] = av.mul_add(brow[j], orow[j]);
                j += 1;
            }
        }
    }

    pub fn dot_bt(a: &[f32], m: usize, k: usize, b: &[f32], p: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..p {
                let brow = &b[j * k..(j + 1) * k];
                out[i * p + j] = dot_lanes(arow, brow);
            }
        }
    }

    /// The 8-lane dot with the loop structured as whole [`LANES`]-wide
    /// chunks plus a tail, which is the same association as
    /// [`super::dot_lanes_ref`]'s `t mod 8` assignment.
    fn dot_lanes(x: &[f32], y: &[f32]) -> f32 {
        let mut lane = [0.0f32; LANES];
        let chunks = x.len() / LANES * LANES;
        let mut t = 0;
        while t < chunks {
            for l in 0..LANES {
                lane[l] = x[t + l].mul_add(y[t + l], lane[l]);
            }
            t += LANES;
        }
        while t < x.len() {
            lane[t % LANES] = x[t].mul_add(y[t], lane[t % LANES]);
            t += 1;
        }
        let mut acc = lane[0];
        for &l in &lane[1..] {
            acc += l;
        }
        acc
    }

    pub fn scatter_at(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let brow = &b[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[kk * n..(kk + 1) * n];
                let strips = n / LANES * LANES;
                let mut j = 0;
                while j < strips {
                    let o = &mut orow[j..j + LANES];
                    let bv = &brow[j..j + LANES];
                    for l in 0..LANES {
                        o[l] = av.mul_add(bv[l], o[l]);
                    }
                    j += LANES;
                }
                while j < n {
                    orow[j] = av.mul_add(brow[j], orow[j]);
                    j += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA backend. Register-tiled: the row kernel holds 8 ymm
// accumulators (a 64-float output strip) across the whole k loop, so each
// k step is one broadcast + 8 loads + 8 fmadds with no output traffic.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// Shared-dimension panel height: a 32-column strip of a `KC`-row B
    /// panel is 16 KiB, which stays L1-resident while every row pair of A
    /// sweeps it. Panelling never reorders a per-element fma chain (each
    /// panel resumes the chain from the stored partial, and an f32
    /// store/reload round-trip is exact), so the contract holds for any
    /// `KC`.
    const KC: usize = 256;

    /// Row count from which a B tile is packed into a contiguous scratch
    /// buffer before the row sweep. Packing defeats the L1 set-aliasing
    /// that power-of-two row strides cause (a 1 KiB stride maps every tile
    /// row to the same handful of cache sets), and its cost — one copy of
    /// the tile — is amortized over `m` rows. Below the threshold the copy
    /// would rival the math, so tiles read B in place. Packing only moves
    /// bytes; it cannot change any fma chain.
    const PACK_MIN_M: usize = 8;

    /// # Safety
    /// Caller must have verified `avx2` and `fma` CPU support, and slice
    /// lengths must satisfy the shapes documented on [`super::matmul_rows`].
    ///
    /// Loop nest: k-panel → 32-column B tile (packed) → A row pair → k.
    /// The packed tile (≤16 KiB, sequential) is the innermost reuse unit,
    /// hot in L1 across all row pairs; per k step a pair costs 4 shared B
    /// loads + 2 broadcasts feeding 8 independent fma chains. Zero-skip is
    /// applied per (row, k) term, exactly like the scalar reference.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_rows(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let mut pack: Vec<f32> = if m >= PACK_MIN_M && n >= 8 {
            vec![0.0; KC.min(k) * 32]
        } else {
            Vec::new()
        };
        let mut k0 = 0;
        while k0 < k {
            let kc = (k - k0).min(KC);
            let arow = |i: usize| &a[i * k + k0..i * k + k0 + kc];
            let mut j = 0;
            while j + 32 <= n {
                let (bt, bstride) = if pack.is_empty() {
                    (b.as_ptr().add(k0 * n + j), n)
                } else {
                    for kk in 0..kc {
                        pack[kk * 32..kk * 32 + 32]
                            .copy_from_slice(&b[(k0 + kk) * n + j..(k0 + kk) * n + j + 32]);
                    }
                    (pack.as_ptr(), 32)
                };
                let mut i = 0;
                while i + 2 <= m {
                    tile32_pair(arow(i), arow(i + 1), bt, bstride, out.as_mut_ptr().add(i * n + j), n);
                    i += 2;
                }
                if i < m {
                    tile32_one(arow(i), bt, bstride, out.as_mut_ptr().add(i * n + j));
                }
                j += 32;
            }
            while j + 8 <= n {
                let (bt, bstride) = if pack.is_empty() {
                    (b.as_ptr().add(k0 * n + j), n)
                } else {
                    for kk in 0..kc {
                        pack[kk * 8..kk * 8 + 8]
                            .copy_from_slice(&b[(k0 + kk) * n + j..(k0 + kk) * n + j + 8]);
                    }
                    (pack.as_ptr(), 8)
                };
                let mut i = 0;
                while i + 2 <= m {
                    tile8_pair(arow(i), arow(i + 1), bt, bstride, out.as_mut_ptr().add(i * n + j), n);
                    i += 2;
                }
                if i < m {
                    tile8_one(arow(i), bt, bstride, out.as_mut_ptr().add(i * n + j));
                }
                j += 8;
            }
            // Scalar tail columns (n mod 8), plain mul_add chains.
            while j < n {
                for i in 0..m {
                    let mut s = out[i * n + j];
                    for (kk, &av) in arow(i).iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        s = av.mul_add(b[(k0 + kk) * n + j], s);
                    }
                    out[i * n + j] = s;
                }
                j += 1;
            }
            k0 += kc;
        }
    }

    /// One 2-row × 32-column register tile: 8 accumulators held across the
    /// whole k panel. `bt` points at the tile's B data (packed or in
    /// place) advancing by `bstride` per k; `p0` at the first of the two
    /// output strips, the second `n` floats later.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile32_pair(
        ar0: &[f32],
        ar1: &[f32],
        bt: *const f32,
        bstride: usize,
        p0: *mut f32,
        n: usize,
    ) {
        let bp = bt;
        let p1 = p0.add(n);
        let mut c00 = _mm256_loadu_ps(p0);
        let mut c01 = _mm256_loadu_ps(p0.add(8));
        let mut c02 = _mm256_loadu_ps(p0.add(16));
        let mut c03 = _mm256_loadu_ps(p0.add(24));
        let mut c10 = _mm256_loadu_ps(p1);
        let mut c11 = _mm256_loadu_ps(p1.add(8));
        let mut c12 = _mm256_loadu_ps(p1.add(16));
        let mut c13 = _mm256_loadu_ps(p1.add(24));
        for kk in 0..ar0.len() {
            let a0 = *ar0.get_unchecked(kk);
            let a1 = *ar1.get_unchecked(kk);
            if a0 == 0.0 && a1 == 0.0 {
                continue;
            }
            let r = bp.add(kk * bstride);
            let b0 = _mm256_loadu_ps(r);
            let b1 = _mm256_loadu_ps(r.add(8));
            let b2 = _mm256_loadu_ps(r.add(16));
            let b3 = _mm256_loadu_ps(r.add(24));
            if a0 != 0.0 {
                let v = _mm256_set1_ps(a0);
                c00 = _mm256_fmadd_ps(v, b0, c00);
                c01 = _mm256_fmadd_ps(v, b1, c01);
                c02 = _mm256_fmadd_ps(v, b2, c02);
                c03 = _mm256_fmadd_ps(v, b3, c03);
            }
            if a1 != 0.0 {
                let v = _mm256_set1_ps(a1);
                c10 = _mm256_fmadd_ps(v, b0, c10);
                c11 = _mm256_fmadd_ps(v, b1, c11);
                c12 = _mm256_fmadd_ps(v, b2, c12);
                c13 = _mm256_fmadd_ps(v, b3, c13);
            }
        }
        _mm256_storeu_ps(p0, c00);
        _mm256_storeu_ps(p0.add(8), c01);
        _mm256_storeu_ps(p0.add(16), c02);
        _mm256_storeu_ps(p0.add(24), c03);
        _mm256_storeu_ps(p1, c10);
        _mm256_storeu_ps(p1.add(8), c11);
        _mm256_storeu_ps(p1.add(16), c12);
        _mm256_storeu_ps(p1.add(24), c13);
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile32_one(ar: &[f32], bt: *const f32, bstride: usize, p: *mut f32) {
        let mut c0 = _mm256_loadu_ps(p);
        let mut c1 = _mm256_loadu_ps(p.add(8));
        let mut c2 = _mm256_loadu_ps(p.add(16));
        let mut c3 = _mm256_loadu_ps(p.add(24));
        for (kk, &av) in ar.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let v = _mm256_set1_ps(av);
            let r = bt.add(kk * bstride);
            c0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(r), c0);
            c1 = _mm256_fmadd_ps(v, _mm256_loadu_ps(r.add(8)), c1);
            c2 = _mm256_fmadd_ps(v, _mm256_loadu_ps(r.add(16)), c2);
            c3 = _mm256_fmadd_ps(v, _mm256_loadu_ps(r.add(24)), c3);
        }
        _mm256_storeu_ps(p, c0);
        _mm256_storeu_ps(p.add(8), c1);
        _mm256_storeu_ps(p.add(16), c2);
        _mm256_storeu_ps(p.add(24), c3);
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile8_pair(
        ar0: &[f32],
        ar1: &[f32],
        bt: *const f32,
        bstride: usize,
        p0: *mut f32,
        n: usize,
    ) {
        let p1 = p0.add(n);
        let mut c0 = _mm256_loadu_ps(p0);
        let mut c1 = _mm256_loadu_ps(p1);
        for kk in 0..ar0.len() {
            let a0 = *ar0.get_unchecked(kk);
            let a1 = *ar1.get_unchecked(kk);
            if a0 == 0.0 && a1 == 0.0 {
                continue;
            }
            let bv = _mm256_loadu_ps(bt.add(kk * bstride));
            if a0 != 0.0 {
                c0 = _mm256_fmadd_ps(_mm256_set1_ps(a0), bv, c0);
            }
            if a1 != 0.0 {
                c1 = _mm256_fmadd_ps(_mm256_set1_ps(a1), bv, c1);
            }
        }
        _mm256_storeu_ps(p0, c0);
        _mm256_storeu_ps(p1, c1);
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile8_one(ar: &[f32], bt: *const f32, bstride: usize, p: *mut f32) {
        let mut c0 = _mm256_loadu_ps(p);
        for (kk, &av) in ar.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            c0 = _mm256_fmadd_ps(_mm256_set1_ps(av), _mm256_loadu_ps(bt.add(kk * bstride)), c0);
        }
        _mm256_storeu_ps(p, c0);
    }

    /// # Safety
    /// Caller must have verified `avx2` and `fma` CPU support, and slice
    /// lengths must satisfy the shapes documented on [`super::dot_bt`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_bt(a: &[f32], m: usize, k: usize, b: &[f32], p: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * p..(i + 1) * p];
            // Four output columns at a time: four independent accumulator
            // chains hide the fma latency; each chain is still the 8-lane
            // reduction of the contract.
            let mut j = 0;
            while j + 4 <= p {
                let (d0, d1, d2, d3) = dot4(
                    arow,
                    &b[j * k..(j + 1) * k],
                    &b[(j + 1) * k..(j + 2) * k],
                    &b[(j + 2) * k..(j + 3) * k],
                    &b[(j + 3) * k..(j + 4) * k],
                );
                orow[j] = d0;
                orow[j + 1] = d1;
                orow[j + 2] = d2;
                orow[j + 3] = d3;
                j += 4;
            }
            while j < p {
                orow[j] = dot1(arow, &b[j * k..(j + 1) * k]);
                j += 1;
            }
        }
    }

    /// Sequential lane fold `((l0+l1)+l2)…+l7` of a ymm accumulator plus a
    /// scalar tail folded into the same lanes by `t mod 8`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn reduce_lanes(acc: __m256, x: &[f32], y: &[f32], from: usize) -> f32 {
        let mut lane = [0.0f32; 8];
        _mm256_storeu_ps(lane.as_mut_ptr(), acc);
        for t in from..x.len() {
            lane[t % 8] = x[t].mul_add(y[t], lane[t % 8]);
        }
        let mut s = lane[0];
        for &l in &lane[1..] {
            s += l;
        }
        s
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot1(x: &[f32], y: &[f32]) -> f32 {
        let chunks = x.len() / 8 * 8;
        let mut acc = _mm256_setzero_ps();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut t = 0;
        while t < chunks {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(xp.add(t)), _mm256_loadu_ps(yp.add(t)), acc);
            t += 8;
        }
        reduce_lanes(acc, x, y, chunks)
    }

    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::many_single_char_names)]
    unsafe fn dot4(x: &[f32], y0: &[f32], y1: &[f32], y2: &[f32], y3: &[f32]) -> (f32, f32, f32, f32) {
        let chunks = x.len() / 8 * 8;
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        let xp = x.as_ptr();
        let mut t = 0;
        while t < chunks {
            let xv = _mm256_loadu_ps(xp.add(t));
            a0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y0.as_ptr().add(t)), a0);
            a1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y1.as_ptr().add(t)), a1);
            a2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y2.as_ptr().add(t)), a2);
            a3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y3.as_ptr().add(t)), a3);
            t += 8;
        }
        (
            reduce_lanes(a0, x, y0, chunks),
            reduce_lanes(a1, x, y1, chunks),
            reduce_lanes(a2, x, y2, chunks),
            reduce_lanes(a3, x, y3, chunks),
        )
    }

    /// # Safety
    /// Caller must have verified `avx2` and `fma` CPU support, and slice
    /// lengths must satisfy the shapes documented on [`super::scatter_at`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scatter_at(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        let strips = n / 8 * 8;
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let brow = &b[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[kk * n..(kk + 1) * n];
                let a8 = _mm256_set1_ps(av);
                let op = orow.as_mut_ptr();
                let bp = brow.as_ptr();
                let mut j = 0;
                while j < strips {
                    let o = _mm256_loadu_ps(op.add(j));
                    _mm256_storeu_ps(op.add(j), _mm256_fmadd_ps(a8, _mm256_loadu_ps(bp.add(j)), o));
                    j += 8;
                }
                while j < n {
                    orow[j] = av.mul_add(brow[j], orow[j]);
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: f32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                if i % 7 == 3 {
                    0.0
                } else {
                    ((i as f32) * 0.37 + seed).sin()
                }
            })
            .collect()
    }

    #[test]
    fn matmul_rows_matches_reference_on_awkward_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 5), (3, 17, 9), (4, 8, 64), (5, 33, 71), (1, 19, 130)] {
            let a = pattern(m * k, 0.1);
            let b = pattern(k * n, 0.9);
            let mut fast = vec![0.0; m * n];
            let mut slow = vec![0.0; m * n];
            matmul_rows(&a, m, k, &b, n, &mut fast);
            matmul_rows_ref(&a, m, k, &b, n, &mut slow);
            assert_eq!(fast, slow, "matmul_rows diverged at {m}x{k}x{n}");
        }
    }

    #[test]
    fn dot_bt_matches_reference_on_awkward_shapes() {
        for &(m, k, p) in &[(1, 1, 1), (2, 5, 3), (3, 16, 4), (2, 23, 7), (4, 40, 6), (1, 9, 13)] {
            let a = pattern(m * k, 0.2);
            let b = pattern(p * k, 0.8);
            let mut fast = vec![0.0; m * p];
            let mut slow = vec![0.0; m * p];
            dot_bt(&a, m, k, &b, p, &mut fast);
            dot_bt_ref(&a, m, k, &b, p, &mut slow);
            assert_eq!(fast, slow, "dot_bt diverged at {m}x{k}x{p}");
        }
    }

    #[test]
    fn scatter_at_matches_reference_on_awkward_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 2, 5), (5, 16, 9), (7, 4, 40), (2, 6, 13)] {
            let a = pattern(m * k, 0.3);
            let b = pattern(m * n, 0.7);
            let mut fast = vec![0.0; k * n];
            let mut slow = vec![0.0; k * n];
            scatter_at(&a, m, k, &b, n, &mut fast);
            scatter_at_ref(&a, m, k, &b, n, &mut slow);
            assert_eq!(fast, slow, "scatter_at diverged at {m}x{k}x{n}");
        }
    }

    #[test]
    fn lane_dot_handles_special_values_via_zero_skip() {
        // fma(0, inf, x) would poison the axpy chain; the contract skips it.
        let a = vec![0.0, 1.0];
        let b = vec![f32::INFINITY, 2.0, f32::NEG_INFINITY, 3.0];
        let mut fast = vec![0.0; 2];
        let mut slow = vec![0.0; 2];
        matmul_rows(&a, 1, 2, &b, 2, &mut fast);
        matmul_rows_ref(&a, 1, 2, &b, 2, &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![f32::NEG_INFINITY, 3.0]);
    }
}
