//! Finite-difference gradient checks for every autograd op.
//!
//! For a scalar loss L(x), the analytic gradient from `backward` must match
//! (L(x+h) − L(x−h)) / 2h elementwise. Each op is exercised inside a small
//! composite graph so chain-rule interactions are covered too.

use av_nn::{Graph, NodeId, ParamStore, Tensor};
use proptest::prelude::*;

/// Build-loss callback: given a graph and the perturbable input node, return
/// the scalar loss node.
type LossBuilder = dyn Fn(&mut Graph, NodeId) -> NodeId;

/// Check analytic vs numeric gradient of `loss(x)` at `x0`.
fn gradcheck(x0: Tensor, build: &LossBuilder) {
    let mut g = Graph::new();
    let x = g.input(x0.clone());
    let loss = build(&mut g, x);
    assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
    g.backward(loss);
    let analytic = g.grad(x);

    let h = 1e-2f32;
    let (rows, cols) = x0.shape();
    for r in 0..rows {
        for c in 0..cols {
            let eval = |delta: f32| {
                let mut t = x0.clone();
                *t.get_mut(r, c) += delta;
                let mut g = Graph::new();
                let x = g.input(t);
                let loss = build(&mut g, x);
                g.value(loss).get(0, 0)
            };
            let numeric = (eval(h) - eval(-h)) / (2.0 * h);
            let a = analytic.get(r, c);
            let tol = 2e-2 * (1.0 + a.abs().max(numeric.abs()));
            assert!(
                (a - numeric).abs() <= tol,
                "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
            );
        }
    }
}

fn small_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.0f32..1.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_grad(x0 in small_tensor(2, 3), w in small_tensor(3, 2)) {
        gradcheck(x0, &move |g, x| {
            let w = g.input(w.clone());
            let y = g.matmul(x, w);
            g.mean_all(y)
        });
    }

    #[test]
    fn affine_grad(x0 in small_tensor(2, 3), w in small_tensor(3, 2), b in small_tensor(1, 2)) {
        gradcheck(x0, &move |g, x| {
            let w = g.input(w.clone());
            let b = g.input(b.clone());
            let y = g.affine(x, w, b);
            let t = g.tanh(y);
            g.mean_all(t)
        });
    }

    #[test]
    fn sigmoid_tanh_chain_grad(x0 in small_tensor(2, 2)) {
        gradcheck(x0, &|g, x| {
            let s = g.sigmoid(x);
            let t = g.tanh(s);
            g.mean_all(t)
        });
    }

    #[test]
    fn mul_sub_grad(x0 in small_tensor(2, 2), other in small_tensor(2, 2)) {
        gradcheck(x0, &move |g, x| {
            let o = g.input(other.clone());
            let m = g.mul(x, o);
            let d = g.sub(m, o);
            g.mean_all(d)
        });
    }

    #[test]
    fn add_row_grad(x0 in small_tensor(3, 2), row in small_tensor(1, 2)) {
        gradcheck(x0, &move |g, x| {
            let r = g.input(row.clone());
            let y = g.add_row(x, r);
            let t = g.tanh(y);
            g.mean_all(t)
        });
    }

    #[test]
    fn concat_slice_grad(x0 in small_tensor(2, 3)) {
        gradcheck(x0, &|g, x| {
            let left = g.slice_cols(x, 0, 2);
            let right = g.slice_cols(x, 1, 2);
            let cat = g.concat_cols(&[left, right]);
            let t = g.tanh(cat);
            g.mean_all(t)
        });
    }

    #[test]
    fn concat_rows_grad(x0 in small_tensor(2, 2), other in small_tensor(1, 2)) {
        gradcheck(x0, &move |g, x| {
            let o = g.input(other.clone());
            let cat = g.concat_rows(&[x, o]);
            let s = g.sigmoid(cat);
            g.mean_all(s)
        });
    }

    #[test]
    fn mean_rows_grad(x0 in small_tensor(4, 3)) {
        gradcheck(x0, &|g, x| {
            let p = g.mean_rows(x);
            let t = g.tanh(p);
            g.mean_all(t)
        });
    }

    #[test]
    fn conv3x1_grad_wrt_input(x0 in small_tensor(5, 2), w in small_tensor(3, 2), b in small_tensor(1, 2)) {
        gradcheck(x0, &move |g, x| {
            let w = g.input(w.clone());
            let b = g.input(b.clone());
            let y = g.conv3x1(x, w, b);
            let t = g.tanh(y);
            g.mean_all(t)
        });
    }

    #[test]
    fn conv3x1_grad_wrt_kernel(w0 in small_tensor(3, 2), x in small_tensor(5, 2), b in small_tensor(1, 2)) {
        gradcheck(w0, &move |g, w| {
            let x = g.input(x.clone());
            let b = g.input(b.clone());
            let y = g.conv3x1(x, w, b);
            let t = g.tanh(y);
            g.mean_all(t)
        });
    }

    #[test]
    fn norm_rows_grad(x0 in small_tensor(4, 2)) {
        // Keep inputs away from degenerate equal-column values where the
        // batchnorm gradient becomes numerically unstable in f32.
        prop_assume!({
            let mut ok = true;
            for c in 0..2 {
                let vals: Vec<f32> = (0..4).map(|r| x0.get(r, c)).collect();
                let mean = vals.iter().sum::<f32>() / 4.0;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
                ok &= var > 0.05;
            }
            ok
        });
        gradcheck(x0, &|g, x| {
            let gamma = g.input(Tensor::from_rows(&[&[1.2, 0.8]]));
            let beta = g.input(Tensor::from_rows(&[&[0.1, -0.1]]));
            let y = g.norm_rows(x, gamma, beta);
            let t = g.tanh(y);
            g.mean_all(t)
        });
    }

    #[test]
    fn relu_grad_away_from_kink(x0 in small_tensor(2, 3)) {
        // Finite differences are invalid exactly at 0; nudge values away.
        let mut t = x0.clone();
        for v in t.as_mut_slice() {
            if v.abs() < 0.05 {
                *v += 0.1;
            }
        }
        gradcheck(t, &|g, x| {
            let y = g.relu(x);
            g.mean_all(y)
        });
    }

    #[test]
    fn scale_grad(x0 in small_tensor(2, 2)) {
        gradcheck(x0, &|g, x| {
            let y = g.scale(x, -2.5);
            let t = g.tanh(y);
            g.mean_all(t)
        });
    }
}

#[test]
fn lstm_gradcheck_through_params() {
    // Check LSTM end-to-end: gradient w.r.t. the input-to-hidden weights
    // matches finite differences.
    let mut store = ParamStore::with_seed(11);
    let lstm = av_nn::Lstm::new(&mut store, 2, 3);
    let seq = [
        Tensor::from_rows(&[&[0.3, -0.2]]),
        Tensor::from_rows(&[&[-0.5, 0.8]]),
    ];

    // Analytic gradient.
    let mut g = Graph::new();
    let steps: Vec<NodeId> = seq.iter().map(|t| g.input(t.clone())).collect();
    let h = lstm.forward_with(&mut g, &store, &steps);
    let loss = g.mean_all(h);
    g.backward(loss);
    g.accumulate_param_grads(&mut store);
    let analytic = store.param_mut(lstm.wx).grad.clone();

    let h_step = 5e-3f32;
    for probe in [(0usize, 0usize), (1, 3), (0, 7)] {
        let (r, c) = probe;
        let base = store.value(lstm.wx).get(r, c);
        let mut eval = |v: f32| {
            store.param_mut(lstm.wx).value.set(r, c, v);
            let mut g = Graph::new();
            let steps: Vec<NodeId> = seq.iter().map(|t| g.input(t.clone())).collect();
            let h = lstm.forward_with(&mut g, &store, &steps);
            let l = g.mean_all(h);
            g.value(l).get(0, 0)
        };
        let up = eval(base + h_step);
        let down = eval(base - h_step);
        store.param_mut(lstm.wx).value.set(r, c, base);
        let numeric = (up - down) / (2.0 * h_step);
        let a = analytic.get(r, c);
        assert!(
            (a - numeric).abs() <= 2e-2 * (1.0 + a.abs().max(numeric.abs())),
            "LSTM wx grad mismatch at {probe:?}: analytic {a}, numeric {numeric}"
        );
    }
}

#[test]
fn embedding_gradcheck() {
    let mut store = ParamStore::with_seed(5);
    let emb = av_nn::Embedding::new(&mut store, 6, 3);
    let indices = [1usize, 4, 1];

    let mut g = Graph::new();
    let e = emb.forward_with(&mut g, &store, &indices);
    let t = g.tanh(e);
    let loss = g.mean_all(t);
    g.backward(loss);
    g.accumulate_param_grads(&mut store);
    let analytic = store.param_mut(emb.table).grad.clone();

    let h = 5e-3f32;
    for (r, c) in [(1usize, 0usize), (4, 2), (0, 0)] {
        let base = store.value(emb.table).get(r, c);
        let mut eval = |v: f32| {
            store.param_mut(emb.table).value.set(r, c, v);
            let mut g = Graph::new();
            let e = emb.forward_with(&mut g, &store, &indices);
            let t = g.tanh(e);
            let l = g.mean_all(t);
            g.value(l).get(0, 0)
        };
        let numeric = (eval(base + h) - eval(base - h)) / (2.0 * h);
        store.param_mut(emb.table).value.set(r, c, base);
        let a = analytic.get(r, c);
        assert!(
            (a - numeric).abs() <= 2e-2 * (1.0 + a.abs()),
            "embedding grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
        );
    }
}
