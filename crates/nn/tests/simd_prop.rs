//! SIMD kernels vs. scalar references: bitwise determinism.
//!
//! Every kernel in `av_nn::simd` promises the *fixed-order* reduction
//! contract — not approximate equality, the exact same f32 at every output
//! position as the scalar reference that spells the contract out. These
//! properties compare raw bit patterns (`f32::to_bits`), so a reassociated
//! accumulation, a dropped zero-skip, or an FMA/non-FMA mismatch in the
//! intrinsics path fails loudly even when the values agree to many ulps.
//!
//! On AVX2+FMA hardware the dispatched backend is the intrinsics path, so
//! this pins SIMD == scalar; elsewhere it pins the portable unrolled path,
//! which `AV_NN_SIMD=portable` also forces on SIMD hardware (CI runs both).

use proptest::prelude::*;

fn assert_bits_eq(simd: &[f32], scalar: &[f32], kernel: &str) {
    assert_eq!(simd.len(), scalar.len());
    for (i, (s, r)) in simd.iter().zip(scalar).enumerate() {
        assert!(
            s.to_bits() == r.to_bits(),
            "{kernel}: bit mismatch at {i}: simd {s} ({:#010x}) vs scalar {r} ({:#010x}) \
             [backend {:?}]",
            s.to_bits(),
            r.to_bits(),
            av_nn::simd::backend(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `out += A × B` (axpy family): dispatched kernel == scalar reference,
    /// bit for bit, including accumulation into a non-zero `out`.
    #[test]
    fn matmul_rows_matches_scalar_bitwise(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u32..4,
    ) {
        let a = grid_vec(m * k, seed);
        let b = grid_vec(k * n, seed.wrapping_add(1));
        let init = grid_vec(m * n, seed.wrapping_add(2));
        let mut simd = init.clone();
        let mut scalar = init;
        av_nn::simd::matmul_rows(&a, m, k, &b, n, &mut simd);
        av_nn::simd::matmul_rows_ref(&a, m, k, &b, n, &mut scalar);
        assert_bits_eq(&simd, &scalar, "matmul_rows");
    }

    /// `out = A × Bᵀ` (dot family): the 8-lane fixed accumulator order of
    /// `dot_lanes_ref` must survive the intrinsics path exactly.
    #[test]
    fn dot_bt_matches_scalar_bitwise(
        m in 1usize..16,
        k in 1usize..80,
        p in 1usize..16,
        seed in 0u32..4,
    ) {
        let a = grid_vec(m * k, seed);
        let b = grid_vec(p * k, seed.wrapping_add(9));
        let mut simd = vec![f32::NAN; m * p]; // fully overwritten by contract
        let mut scalar = vec![f32::NAN; m * p];
        av_nn::simd::dot_bt(&a, m, k, &b, p, &mut simd);
        av_nn::simd::dot_bt_ref(&a, m, k, &b, p, &mut scalar);
        assert_bits_eq(&simd, &scalar, "dot_bt");
    }

    /// `out += Aᵀ × B` (gradient scatter): ascending-row chains with
    /// zero-skip, bit for bit.
    #[test]
    fn scatter_at_matches_scalar_bitwise(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..48,
        seed in 0u32..4,
    ) {
        let a = grid_vec(m * k, seed);
        let b = grid_vec(m * n, seed.wrapping_add(3));
        let init = grid_vec(k * n, seed.wrapping_add(5));
        let mut simd = init.clone();
        let mut scalar = init;
        av_nn::simd::scatter_at(&a, m, k, &b, n, &mut simd);
        av_nn::simd::scatter_at_ref(&a, m, k, &b, n, &mut scalar);
        assert_bits_eq(&simd, &scalar, "scatter_at");
    }

    /// `vecmat_row` is defined as `matmul_rows` with m = 1; hold it to that.
    #[test]
    fn vecmat_row_is_matmul_rows_m1(k in 1usize..64, n in 1usize..64, seed in 0u32..4) {
        let v = grid_vec(k, seed);
        let b = grid_vec(k * n, seed.wrapping_add(1));
        let mut via_vecmat = vec![0.0f32; n];
        let mut via_matmul = vec![0.0f32; n];
        av_nn::simd::vecmat_row(&v, &b, n, &mut via_vecmat);
        av_nn::simd::matmul_rows(&v, 1, k, &b, n, &mut via_matmul);
        assert_bits_eq(&via_vecmat, &via_matmul, "vecmat_row");
    }
}

/// Deterministic fill from a small exact grid, zero included: zeros
/// exercise the axpy family's zero-skip, and the 0.37 scale keeps
/// mantissas non-trivial so reduction-order bugs actually change bits.
/// xorshift (rather than a proptest strategy) because the vector length
/// depends on generated shapes; the proptest seeds still vary the data.
fn grid_vec(len: usize, seed: u32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(747_796_405).wrapping_add(2_891_336_453) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            ((s % 17) as i32 - 8) as f32 * 0.37
        })
        .collect()
}

/// The tensor-level contract in one shot: `Tensor::matmul` (whatever
/// backend dispatch picked) equals `Tensor::matmul_reference` bitwise.
#[test]
fn tensor_matmul_matches_reference_bitwise() {
    use av_nn::Tensor;
    for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (8, 33, 40), (17, 64, 65)] {
        let a = Tensor::from_vec(m, k, grid_vec(m * k, 42));
        let b = Tensor::from_vec(k, n, grid_vec(k * n, 43));
        let fast = a.matmul(&b);
        let slow = a.matmul_reference(&b);
        assert_bits_eq(fast.as_slice(), slow.as_slice(), "Tensor::matmul");
    }
}
