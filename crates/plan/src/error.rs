//! Typed plan errors shared by the builder's structural checks and the
//! schema verifier in `av-analyze`.

use std::fmt;

/// A well-formedness violation in a logical plan.
///
/// Structural variants (empty projections, duplicate output names) are
/// checkable without a catalog and are enforced at plan-builder exit in
/// debug builds; binding and typing variants require a catalog and are
/// produced by the schema verifier in `av-analyze`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A scan references a table the catalog does not know.
    UnknownTable { table: String },
    /// An expression references a column not produced by its input.
    UnboundColumn {
        column: String,
        /// Operator keyword of the node whose scope was searched.
        operator: &'static str,
        /// Columns that were in scope, for the diagnostic.
        available: Vec<String>,
    },
    /// Two sides of a comparison, join key or arithmetic node have
    /// incompatible types.
    TypeMismatch {
        context: String,
        left: String,
        right: String,
    },
    /// A predicate position holds a non-boolean-coercible expression
    /// (strings are never truthy in the engine).
    NonBooleanPredicate { context: String },
    /// An aggregate is applied to a column its function cannot consume.
    BadAggregate { agg: String, reason: String },
    /// An operator was built in a degenerate shape (empty projection,
    /// empty table name, ...).
    Malformed {
        operator: &'static str,
        reason: String,
    },
    /// Two output columns of one operator share a name.
    DuplicateColumn {
        column: String,
        operator: &'static str,
    },
    /// A rewrite substitution changed the plan's output arity or schema.
    ArityMismatch {
        context: String,
        expected: usize,
        actual: usize,
    },
}

impl PlanError {
    /// Stable diagnostic code, used by tests asserting *which* violation
    /// was detected.
    pub fn code(&self) -> &'static str {
        match self {
            PlanError::UnknownTable { .. } => "unknown-table",
            PlanError::UnboundColumn { .. } => "unbound-column",
            PlanError::TypeMismatch { .. } => "type-mismatch",
            PlanError::NonBooleanPredicate { .. } => "non-boolean-predicate",
            PlanError::BadAggregate { .. } => "bad-aggregate",
            PlanError::Malformed { .. } => "malformed",
            PlanError::DuplicateColumn { .. } => "duplicate-column",
            PlanError::ArityMismatch { .. } => "arity-mismatch",
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable { table } => write!(f, "unknown table: {table}"),
            PlanError::UnboundColumn {
                column,
                operator,
                available,
            } => write!(
                f,
                "unbound column {column} in {operator} (in scope: {})",
                available.join(", ")
            ),
            PlanError::TypeMismatch {
                context,
                left,
                right,
            } => write!(f, "type mismatch in {context}: {left} vs {right}"),
            PlanError::NonBooleanPredicate { context } => {
                write!(f, "non-boolean predicate in {context}")
            }
            PlanError::BadAggregate { agg, reason } => {
                write!(f, "bad aggregate {agg}: {reason}")
            }
            PlanError::Malformed { operator, reason } => {
                write!(f, "malformed {operator}: {reason}")
            }
            PlanError::DuplicateColumn { column, operator } => {
                write!(f, "duplicate output column {column} in {operator}")
            }
            PlanError::ArityMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch in {context}: expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct() {
        let errs = [
            PlanError::UnknownTable { table: "t".into() },
            PlanError::UnboundColumn {
                column: "c".into(),
                operator: "Filter",
                available: vec![],
            },
            PlanError::TypeMismatch {
                context: "x".into(),
                left: "Int".into(),
                right: "String".into(),
            },
            PlanError::NonBooleanPredicate { context: "x".into() },
            PlanError::BadAggregate {
                agg: "SUM".into(),
                reason: "r".into(),
            },
            PlanError::Malformed {
                operator: "Project",
                reason: "r".into(),
            },
            PlanError::DuplicateColumn {
                column: "c".into(),
                operator: "Project",
            },
            PlanError::ArityMismatch {
                context: "x".into(),
                expected: 1,
                actual: 2,
            },
        ];
        let mut codes: Vec<&str> = errs.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }

    #[test]
    fn display_mentions_the_offender() {
        let e = PlanError::UnboundColumn {
            column: "t1.ghost".into(),
            operator: "Filter",
            available: vec!["t1.id".into()],
        };
        let s = e.to_string();
        assert!(s.contains("t1.ghost") && s.contains("t1.id"));
    }
}
