//! Fluent builder for logical plans.

use crate::expr::{AggExpr, AggFunc, Expr};
use crate::node::{JoinType, PlanNode, PlanRef, ProjExpr};

/// Fluent plan builder.
///
/// ```
/// use av_plan::{PlanBuilder, Expr};
///
/// let plan = PlanBuilder::scan("user_memo", "t1")
///     .filter(Expr::col("t1.dt").eq(Expr::str("1010")))
///     .project(&[("t1.user_id", "uid")])
///     .build();
/// assert_eq!(plan.node_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: PlanRef,
}

impl PlanBuilder {
    /// Start from a base-table scan with an alias.
    pub fn scan(table: impl Into<String>, alias: impl Into<String>) -> PlanBuilder {
        PlanBuilder {
            plan: PlanNode::TableScan {
                table: table.into(),
                alias: alias.into(),
            }
            .into_ref(),
        }
    }

    /// Continue building from an existing subtree.
    pub fn from_plan(plan: PlanRef) -> PlanBuilder {
        PlanBuilder { plan }
    }

    /// Add a filter. Consecutive filters are merged into one conjunction so
    /// structurally-equal predicates produce structurally-equal plans.
    pub fn filter(self, predicate: Expr) -> PlanBuilder {
        let plan = match self.plan.as_ref() {
            PlanNode::Filter {
                input,
                predicate: existing,
            } => PlanNode::Filter {
                input: input.clone(),
                predicate: existing.clone().and(predicate),
            },
            _ => PlanNode::Filter {
                input: self.plan,
                predicate,
            },
        };
        PlanBuilder {
            plan: plan.into_ref(),
        }
    }

    /// Project columns given as `(input_column, output_alias)` pairs.
    pub fn project(self, cols: &[(&str, &str)]) -> PlanBuilder {
        PlanBuilder {
            plan: PlanNode::Project {
                input: self.plan,
                exprs: cols
                    .iter()
                    .map(|(c, a)| ProjExpr::column(*c, *a))
                    .collect(),
            }
            .into_ref(),
        }
    }

    /// Project arbitrary expressions.
    pub fn project_exprs(self, exprs: Vec<ProjExpr>) -> PlanBuilder {
        PlanBuilder {
            plan: PlanNode::Project {
                input: self.plan,
                exprs,
            }
            .into_ref(),
        }
    }

    /// Inner-join with another subtree on `(left_col, right_col)` pairs.
    pub fn join(self, right: PlanBuilder, on: &[(&str, &str)]) -> PlanBuilder {
        self.join_typed(right, on, JoinType::Inner)
    }

    /// Join with an explicit join type.
    pub fn join_typed(
        self,
        right: PlanBuilder,
        on: &[(&str, &str)],
        join_type: JoinType,
    ) -> PlanBuilder {
        PlanBuilder {
            plan: PlanNode::Join {
                left: self.plan,
                right: right.plan,
                on: on
                    .iter()
                    .map(|(l, r)| (l.to_string(), r.to_string()))
                    .collect(),
                join_type,
            }
            .into_ref(),
        }
    }

    /// Group by `group_by` columns and compute the given aggregates.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggExpr>) -> PlanBuilder {
        PlanBuilder {
            plan: PlanNode::Aggregate {
                input: self.plan,
                group_by: group_by.iter().map(|s| s.to_string()).collect(),
                aggs,
            }
            .into_ref(),
        }
    }

    /// Shorthand for `COUNT(*) AS alias` grouped by the given columns.
    pub fn count_star(self, group_by: &[&str], alias: &str) -> PlanBuilder {
        self.aggregate(
            group_by,
            vec![AggExpr {
                func: AggFunc::Count,
                input: None,
                output: alias.to_string(),
            }],
        )
    }

    /// Finish and return the shared plan.
    ///
    /// In debug builds this is a gate: the structural checks of
    /// [`crate::check`] run on the finished tree and a violation panics
    /// with the typed [`crate::PlanError`] diagnostic. Release builds skip
    /// the walk; use [`PlanBuilder::try_build`] to get the error as a
    /// value in any profile.
    pub fn build(self) -> PlanRef {
        #[cfg(debug_assertions)]
        if let Err(e) = crate::check::check_structure(&self.plan) {
            panic!("plan builder produced an ill-formed plan: {e}");
        }
        self.plan
    }

    /// Finish, returning a typed error if the plan is structurally
    /// ill-formed (see [`crate::check::check_structure`]).
    pub fn try_build(self) -> Result<PlanRef, crate::PlanError> {
        crate::check::check_structure(&self.plan)?;
        Ok(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn consecutive_filters_merge() {
        let p = PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.x").eq(Expr::int(1)))
            .filter(Expr::col("a.y").cmp(CmpOp::Gt, Expr::int(2)))
            .build();
        assert_eq!(p.node_count(), 2, "merged filter keeps plan at scan+filter");
        match p.as_ref() {
            PlanNode::Filter { predicate, .. } => match predicate {
                Expr::And(v) => assert_eq!(v.len(), 2),
                other => panic!("expected conjunction, got {other}"),
            },
            other => panic!("expected filter root, got {other:?}"),
        }
    }

    #[test]
    fn join_builder_produces_join_node() {
        let p = PlanBuilder::scan("t1", "a")
            .join(PlanBuilder::scan("t2", "b"), &[("a.id", "b.id")])
            .build();
        match p.as_ref() {
            PlanNode::Join { on, join_type, .. } => {
                assert_eq!(on, &[("a.id".to_string(), "b.id".to_string())]);
                assert_eq!(*join_type, JoinType::Inner);
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn count_star_emits_count_aggregate() {
        let p = PlanBuilder::scan("t", "a").count_star(&["a.k"], "cnt").build();
        match p.as_ref() {
            PlanNode::Aggregate { group_by, aggs, .. } => {
                assert_eq!(group_by, &["a.k".to_string()]);
                assert_eq!(aggs[0].output, "cnt");
                assert!(aggs[0].input.is_none());
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }
}
