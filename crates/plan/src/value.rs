//! Scalar values flowing through expressions and plans.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A scalar value. Floats are compared by their bit pattern for hashing and
/// by numeric value for ordering, so `Value` can serve as a grouping key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (also used for dates encoded as `yyyymmdd`).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Numeric view of the value; strings and NULL have no numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) | Value::Null => None,
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used for sorting, grouping and min/max aggregation.
    ///
    /// NULL sorts first; numeric types compare numerically with each other;
    /// strings compare lexicographically; numbers sort before strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }

    /// SQL equality: NULL equals nothing (including NULL); ints and floats
    /// compare numerically.
    pub fn sql_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => false,
            (Int(a), Int(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            _ => false,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                // Hash ints and whole floats identically so Int(2) and
                // Float(2.0), which are equal, land in the same bucket.
                state.write_u8(0);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(0);
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(1);
                s.hash(state);
            }
            Value::Null => state.write_u8(2),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn null_sorts_first_and_never_sql_equals() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert_eq!(Value::Null, Value::Null); // grouping equality differs
    }

    #[test]
    fn strings_sort_after_numbers() {
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(9999)),
            Ordering::Greater
        );
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::Str("x".into()).to_string(), "'x'");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn as_f64_only_for_numerics() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("3".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }
}
