//! Feature serialization of plans (Section IV-A / Fig. 4 of the paper).
//!
//! Each plan becomes a *two-dimensional sequence*: the outer sequence is the
//! pre-order list of operators, the inner sequence is each operator's
//! attribute list in prefix notation. Tokens are either *keywords* (operator
//! names, comparison ops, column and table names — a closed vocabulary drawn
//! from the database) or *strings* (literal constants — an open vocabulary
//! encoded char-by-char by the cost model's string encoder).

use crate::expr::Expr;
use crate::node::PlanNode;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One token of a feature row.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token {
    /// Closed-vocabulary symbol: operator/aggregate/comparison keyword, or a
    /// table/column name from the schema.
    Keyword(String),
    /// Open-vocabulary literal rendered as text, encoded char-level.
    Str(String),
}

impl Token {
    /// Keyword constructor.
    pub fn kw(s: impl Into<String>) -> Token {
        Token::Keyword(s.into())
    }

    /// String-literal constructor.
    pub fn s(s: impl Into<String>) -> Token {
        Token::Str(s.into())
    }

    /// The textual payload of the token.
    pub fn text(&self) -> &str {
        match self {
            Token::Keyword(s) | Token::Str(s) => s,
        }
    }
}

/// The attribute sequence of one operator, e.g.
/// `[Filter, AND, EQ, dt, '1010', EQ, memo_type, 'pen']`.
pub type FeatureRow = Vec<Token>;

/// Serialize a plan into its two-dimensional feature sequence: one
/// [`FeatureRow`] per operator, in pre-order (root first), matching the
/// flattened plan listing in the paper's Fig. 4.
pub fn plan_feature_rows(plan: &PlanNode) -> Vec<FeatureRow> {
    let mut rows = Vec::with_capacity(plan.node_count());
    plan.visit_preorder(&mut |n| rows.push(operator_feature_row(n)));
    rows
}

/// Serialize a single operator into its attribute sequence.
pub fn operator_feature_row(node: &PlanNode) -> FeatureRow {
    let mut row = vec![Token::kw(node.op_keyword())];
    match node {
        PlanNode::TableScan { table, .. } => row.push(Token::kw(table)),
        PlanNode::Filter { predicate, .. } => expr_tokens(predicate, &mut row),
        PlanNode::Project { exprs, .. } => {
            for p in exprs {
                expr_tokens(&p.expr, &mut row);
            }
        }
        PlanNode::Join { on, join_type, .. } => {
            for (l, r) in on {
                row.push(Token::kw("EQ"));
                row.push(Token::kw(l));
                row.push(Token::kw(r));
            }
            row.push(Token::kw(join_type.keyword()));
        }
        PlanNode::Aggregate { group_by, aggs, .. } => {
            for g in group_by {
                row.push(Token::kw(g));
            }
            for a in aggs {
                row.push(Token::kw(a.func.keyword()));
                if let Some(c) = &a.input {
                    row.push(Token::kw(c));
                }
                row.push(Token::kw(&a.output));
            }
        }
    }
    row
}

/// Prefix-notation serialization of an expression: operator keyword first,
/// then operand tokens.
fn expr_tokens(expr: &Expr, out: &mut FeatureRow) {
    match expr {
        Expr::Column(c) => out.push(Token::kw(c)),
        Expr::Literal(v) => out.push(match v {
            Value::Str(s) => Token::s(s.clone()),
            other => Token::s(other.to_string()),
        }),
        Expr::Cmp { op, left, right } => {
            out.push(Token::kw(op.keyword()));
            expr_tokens(left, out);
            expr_tokens(right, out);
        }
        Expr::And(v) => {
            out.push(Token::kw("AND"));
            for e in v {
                expr_tokens(e, out);
            }
        }
        Expr::Or(v) => {
            out.push(Token::kw("OR"));
            for e in v {
                expr_tokens(e, out);
            }
        }
        Expr::Not(e) => {
            out.push(Token::kw("NOT"));
            expr_tokens(e, out);
        }
        Expr::Arith { op, left, right } => {
            out.push(Token::kw(op.keyword()));
            expr_tokens(left, out);
            expr_tokens(right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::Expr;

    fn texts(row: &FeatureRow) -> Vec<&str> {
        row.iter().map(|t| t.text()).collect()
    }

    #[test]
    fn filter_row_is_prefix_notation() {
        let p = PlanBuilder::scan("user_memo", "t1")
            .filter(
                Expr::col("dt")
                    .eq(Expr::str("1010"))
                    .and(Expr::col("memo_type").eq(Expr::str("pen"))),
            )
            .build();
        let rows = plan_feature_rows(&p);
        // Pre-order: Filter first, then Scan.
        assert_eq!(
            texts(&rows[0]),
            vec!["Filter", "AND", "EQ", "dt", "1010", "EQ", "memo_type", "pen"]
        );
        assert_eq!(texts(&rows[1]), vec!["Scan", "user_memo"]);
    }

    #[test]
    fn literal_tokens_are_strings_columns_are_keywords() {
        let p = PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.x").eq(Expr::int(7)))
            .build();
        let rows = plan_feature_rows(&p);
        assert_eq!(rows[0][2], Token::kw("a.x"));
        assert_eq!(rows[0][3], Token::s("7"));
    }

    #[test]
    fn row_count_equals_operator_count() {
        let p = PlanBuilder::scan("a", "a")
            .join(PlanBuilder::scan("b", "b"), &[("a.k", "b.k")])
            .count_star(&["a.k"], "cnt")
            .build();
        assert_eq!(plan_feature_rows(&p).len(), p.node_count());
    }

    #[test]
    fn aggregate_row_contains_func_keyword() {
        let p = PlanBuilder::scan("a", "a").count_star(&["a.k"], "cnt").build();
        let rows = plan_feature_rows(&p);
        assert_eq!(
            texts(&rows[0]),
            vec!["Aggregate", "a.k", "COUNT", "cnt"]
        );
    }

    #[test]
    fn join_row_lists_condition_and_type() {
        let p = PlanBuilder::scan("a", "a")
            .join(PlanBuilder::scan("b", "b"), &[("a.k", "b.k")])
            .build();
        let rows = plan_feature_rows(&p);
        assert_eq!(texts(&rows[0]), vec!["Join", "EQ", "a.k", "b.k", "inner"]);
    }
}
