//! Logical plan nodes.

use crate::expr::{AggExpr, Expr};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Shared, immutable reference to a plan subtree.
///
/// Plans are persistent trees: rewrites build new spines and share unchanged
/// subtrees, so enumerating and comparing subqueries is cheap.
pub type PlanRef = Arc<PlanNode>;

/// Join types. The workloads in the paper use inner joins; left joins are
/// supported so the equivalence detector has a non-commutative case to reason
/// about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinType {
    Inner,
    Left,
}

impl JoinType {
    /// Keyword used in display and feature rows.
    pub fn keyword(self) -> &'static str {
        match self {
            JoinType::Inner => "inner",
            JoinType::Left => "left",
        }
    }
}

/// One projected column: an expression plus its output name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProjExpr {
    pub expr: Expr,
    pub alias: String,
}

impl ProjExpr {
    /// Projection that renames (or simply forwards) a column.
    pub fn column(name: impl Into<String>, alias: impl Into<String>) -> ProjExpr {
        ProjExpr {
            expr: Expr::Column(name.into()),
            alias: alias.into(),
        }
    }
}

/// A logical plan operator. Subtrees are the paper's *subqueries*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanNode {
    /// Scan of a base table (or of a materialized view, after rewriting).
    /// Output columns are qualified as `alias.column`.
    TableScan { table: String, alias: String },
    /// Row filter.
    Filter { input: PlanRef, predicate: Expr },
    /// Column projection / renaming / computed columns.
    Project { input: PlanRef, exprs: Vec<ProjExpr> },
    /// Equi-join on column pairs.
    Join {
        left: PlanRef,
        right: PlanRef,
        /// Pairs of (left column, right column) joined with equality.
        on: Vec<(String, String)>,
        join_type: JoinType,
    },
    /// Hash aggregation.
    Aggregate {
        input: PlanRef,
        group_by: Vec<String>,
        aggs: Vec<AggExpr>,
    },
}

impl PlanNode {
    /// Wrap in a shared reference.
    pub fn into_ref(self) -> PlanRef {
        Arc::new(self)
    }

    /// Operator keyword, as shown in plan displays (`Scan`, `Filter`, ...).
    pub fn op_keyword(&self) -> &'static str {
        match self {
            PlanNode::TableScan { .. } => "Scan",
            PlanNode::Filter { .. } => "Filter",
            PlanNode::Project { .. } => "Project",
            PlanNode::Join { .. } => "Join",
            PlanNode::Aggregate { .. } => "Aggregate",
        }
    }

    /// Child subtrees, left to right.
    pub fn children(&self) -> Vec<&PlanRef> {
        match self {
            PlanNode::TableScan { .. } => vec![],
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. } => vec![input],
            PlanNode::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Names of the columns this operator produces, in output order.
    ///
    /// Scans cannot know their table's columns without a catalog, so callers
    /// provide `table_columns`; every other operator derives its schema
    /// structurally.
    pub fn output_columns(&self, table_columns: &dyn Fn(&str) -> Vec<String>) -> Vec<String> {
        match self {
            PlanNode::TableScan { table, alias } => {
                // An empty alias marks a materialized-view scan: the stored
                // column names are already qualified by the defining plan and
                // must pass through unchanged.
                let cols = table_columns(table);
                if alias.is_empty() {
                    cols
                } else {
                    cols.into_iter().map(|c| format!("{alias}.{c}")).collect()
                }
            }
            PlanNode::Filter { input, .. } => input.output_columns(table_columns),
            PlanNode::Project { exprs, .. } => {
                exprs.iter().map(|p| p.alias.clone()).collect()
            }
            PlanNode::Join { left, right, .. } => {
                let mut cols = left.output_columns(table_columns);
                cols.extend(right.output_columns(table_columns));
                cols
            }
            PlanNode::Aggregate { group_by, aggs, .. } => {
                let mut cols = group_by.clone();
                cols.extend(aggs.iter().map(|a| a.output.clone()));
                cols
            }
        }
    }

    /// Base tables referenced anywhere in the subtree, in scan order,
    /// duplicates preserved (a self-join scans the table twice).
    pub fn base_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_preorder(&mut |n| {
            if let PlanNode::TableScan { table, .. } = n {
                out.push(table.clone());
            }
        });
        out
    }

    /// Number of operators in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Depth-first pre-order visit.
    pub fn visit_preorder(&self, f: &mut dyn FnMut(&PlanNode)) {
        f(self);
        for c in self.children() {
            c.visit_preorder(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp};

    fn sample() -> PlanRef {
        // Mirrors the paper's Fig. 2 query.
        let memo = PlanNode::TableScan {
            table: "user_memo".into(),
            alias: "t1".into(),
        }
        .into_ref();
        let left = PlanNode::Project {
            input: PlanNode::Filter {
                input: memo,
                predicate: Expr::col("t1.dt")
                    .eq(Expr::str("1010"))
                    .and(Expr::col("t1.memo_type").eq(Expr::str("pen"))),
            }
            .into_ref(),
            exprs: vec![
                ProjExpr::column("t1.user_id", "t1.user_id"),
                ProjExpr::column("t1.memo", "t1.memo"),
            ],
        }
        .into_ref();
        let action = PlanNode::TableScan {
            table: "user_action".into(),
            alias: "t2".into(),
        }
        .into_ref();
        let right = PlanNode::Project {
            input: PlanNode::Filter {
                input: action,
                predicate: Expr::col("t2.type")
                    .eq(Expr::int(1))
                    .and(Expr::col("t2.dt").eq(Expr::str("1010"))),
            }
            .into_ref(),
            exprs: vec![
                ProjExpr::column("t2.user_id", "t2.user_id"),
                ProjExpr::column("t2.action", "t2.action"),
            ],
        }
        .into_ref();
        let join = PlanNode::Join {
            left,
            right,
            on: vec![("t1.user_id".into(), "t2.user_id".into())],
            join_type: JoinType::Inner,
        }
        .into_ref();
        PlanNode::Aggregate {
            input: join,
            group_by: vec!["t1.user_id".into()],
            aggs: vec![AggExpr {
                func: AggFunc::Count,
                input: None,
                output: "cnt".into(),
            }],
        }
        .into_ref()
    }

    #[test]
    fn node_count_matches_structure() {
        // Aggregate + Join + 2×(Project + Filter + Scan) = 8
        assert_eq!(sample().node_count(), 8);
    }

    #[test]
    fn base_tables_in_scan_order() {
        assert_eq!(sample().base_tables(), vec!["user_memo", "user_action"]);
    }

    #[test]
    fn output_columns_of_aggregate() {
        let cols = sample().output_columns(&|_| vec![]);
        assert_eq!(cols, vec!["t1.user_id", "cnt"]);
    }

    #[test]
    fn output_columns_of_scan_qualify_alias() {
        let scan = PlanNode::TableScan {
            table: "user_memo".into(),
            alias: "m".into(),
        };
        let cols = scan.output_columns(&|t| {
            assert_eq!(t, "user_memo");
            vec!["user_id".into(), "memo".into()]
        });
        assert_eq!(cols, vec!["m.user_id", "m.memo"]);
    }

    #[test]
    fn join_concatenates_child_schemas() {
        let plan = sample();
        if let PlanNode::Aggregate { input, .. } = plan.as_ref() {
            let cols = input.output_columns(&|_| vec![]);
            assert_eq!(
                cols,
                vec!["t1.user_id", "t1.memo", "t2.user_id", "t2.action"]
            );
        } else {
            panic!("expected aggregate root");
        }
    }

    #[test]
    fn filter_predicate_on_comparison_keyword() {
        let e = Expr::col("a").cmp(CmpOp::Ge, Expr::int(10));
        assert_eq!(e.to_string(), "GE(a, 10)");
    }
}
