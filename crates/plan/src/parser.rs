//! A recursive-descent parser for the SQL subset the workloads use.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! query     := SELECT select_list FROM from_item (JOIN from_item ON eq_list)*
//!              (WHERE predicate)? (GROUP BY column_list)?
//! from_item := ident (ident)? | '(' query ')' ident
//! select    := '*' | item (',' item)*
//! item      := expr (AS ident)? | agg '(' ('*'|column) ')' (AS ident)?
//! ```
//!
//! Single-table WHERE conjuncts are pushed below joins onto their scan, so
//! parsed plans take the Filter-above-Scan / Join-above-Project shape shown
//! in the paper's Fig. 2.

use crate::expr::{AggExpr, AggFunc, ArithOp, CmpOp, Expr};
use crate::node::{JoinType, PlanNode, PlanRef, ProjExpr};
use crate::value::Value;
use std::fmt;

/// Parse error with byte offset into the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a SQL query into a logical plan.
pub fn parse_query(sql: &str) -> Result<PlanRef, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let plan = p.query(None)?;
    p.expect_end()?;
    Ok(plan)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(char),
    // two-char comparison symbols are folded into these
    Le,
    Ge,
    Ne,
}

struct Lexed {
    tok: Tok,
    offset: usize,
}

fn lex(sql: &str) -> Result<Vec<Lexed>, ParseError> {
    let b = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            while j < b.len()
                && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.')
            {
                j += 1;
            }
            out.push(Lexed {
                tok: Tok::Ident(sql[i..j].to_string()),
                offset: start,
            });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i;
            let mut is_float = false;
            while j < b.len() && ((b[j] as char).is_ascii_digit() || b[j] == b'.') {
                if b[j] == b'.' {
                    is_float = true;
                }
                j += 1;
            }
            let text = &sql[i..j];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| ParseError {
                    message: format!("bad float literal {text}"),
                    offset: start,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| ParseError {
                    message: format!("bad int literal {text}"),
                    offset: start,
                })?)
            };
            out.push(Lexed { tok, offset: start });
            i = j;
        } else if c == '\'' {
            let mut j = i + 1;
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            if j >= b.len() {
                return Err(ParseError {
                    message: "unterminated string literal".into(),
                    offset: start,
                });
            }
            out.push(Lexed {
                tok: Tok::Str(sql[i + 1..j].to_string()),
                offset: start,
            });
            i = j + 1;
        } else if c == '<' && i + 1 < b.len() && b[i + 1] == b'=' {
            out.push(Lexed { tok: Tok::Le, offset: start });
            i += 2;
        } else if c == '>' && i + 1 < b.len() && b[i + 1] == b'=' {
            out.push(Lexed { tok: Tok::Ge, offset: start });
            i += 2;
        } else if (c == '<' && i + 1 < b.len() && b[i + 1] == b'>')
            || (c == '!' && i + 1 < b.len() && b[i + 1] == b'=')
        {
            out.push(Lexed { tok: Tok::Ne, offset: start });
            i += 2;
        } else if "(),*=<>+-/".contains(c) {
            out.push(Lexed {
                tok: Tok::Sym(c),
                offset: start,
            });
            i += 1;
        } else {
            return Err(ParseError {
                message: format!("unexpected character {c:?}"),
                offset: start,
            });
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Lexed>,
    pos: usize,
}

/// One item in the FROM clause: a plan plus the alias its columns carry.
struct FromItem {
    plan: PlanRef,
    alias: String,
}

enum SelectItem {
    Star,
    Expr(Expr, Option<String>),
    Agg(AggFunc, Option<String>, Option<String>),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|l| &l.tok)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|l| l.offset)
            .unwrap_or(usize::MAX)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|l| l.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            self.err(format!("expected {c:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if !is_reserved(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("trailing tokens after query")
        }
    }

    /// Parse a full SELECT query. `default_alias` is used for a bare table in
    /// FROM when the query is a derived table `( ... ) alias`.
    fn query(&mut self, default_alias: Option<&str>) -> Result<PlanRef, ParseError> {
        self.expect_kw("select")?;
        let items = self.select_list()?;
        self.expect_kw("from")?;

        let mut from_items = vec![self.parse_from_item(default_alias)?];
        let mut join_conds = Vec::new();
        while self.eat_kw("join") || {
            if self.eat_kw("inner") {
                self.expect_kw("join")?;
                true
            } else {
                false
            }
        } {
            from_items.push(self.parse_from_item(None)?);
            self.expect_kw("on")?;
            join_conds.push(self.eq_list()?);
        }

        let predicate = if self.eat_kw("where") {
            Some(self.predicate()?)
        } else {
            None
        };

        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            Some(self.column_list()?)
        } else {
            None
        };

        self.assemble(from_items, join_conds, predicate, group_by, items)
    }

    fn parse_from_item(&mut self, default_alias: Option<&str>) -> Result<FromItem, ParseError> {
        if self.eat_sym('(') {
            let alias_peek = None; // alias comes after the ')'
            let plan = self.query(alias_peek)?;
            self.expect_sym(')')?;
            let alias = self.ident()?;
            Ok(FromItem { plan, alias })
        } else {
            let table = self.ident()?;
            let alias = match self.peek() {
                Some(Tok::Ident(s)) if !is_reserved(s) => self.ident()?,
                _ => default_alias.map(|s| s.to_string()).unwrap_or_else(|| table.clone()),
            };
            Ok(FromItem {
                plan: PlanNode::TableScan {
                    table,
                    alias: alias.clone(),
                }
                .into_ref(),
                alias,
            })
        }
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            if self.eat_sym('*') {
                items.push(SelectItem::Star);
            } else if let Some(Tok::Ident(s)) = self.peek() {
                if let Some(func) = agg_func(s) {
                    self.pos += 1;
                    self.expect_sym('(')?;
                    let input = if self.eat_sym('*') {
                        None
                    } else {
                        Some(self.ident()?)
                    };
                    self.expect_sym(')')?;
                    let alias = if self.eat_kw("as") {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    items.push(SelectItem::Agg(func, input, alias));
                } else {
                    let expr = self.add_expr()?;
                    let alias = if self.eat_kw("as") {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    items.push(SelectItem::Expr(expr, alias));
                }
            } else {
                return self.err("expected select item");
            }
            if !self.eat_sym(',') {
                break;
            }
        }
        Ok(items)
    }

    fn column_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut cols = vec![self.ident()?];
        while self.eat_sym(',') {
            cols.push(self.ident()?);
        }
        Ok(cols)
    }

    fn eq_list(&mut self) -> Result<Vec<(String, String)>, ParseError> {
        let mut pairs = Vec::new();
        loop {
            let l = self.ident()?;
            self.expect_sym('=')?;
            let r = self.ident()?;
            pairs.push((l, r));
            if !self.eat_kw("and") {
                break;
            }
        }
        Ok(pairs)
    }

    // predicate := and_term (OR and_term)*
    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let first = self.and_term()?;
        if !self.eat_kw("or") {
            return Ok(first);
        }
        let mut terms = vec![first, self.and_term()?];
        while self.eat_kw("or") {
            terms.push(self.and_term()?);
        }
        Ok(Expr::Or(terms))
    }

    fn and_term(&mut self) -> Result<Expr, ParseError> {
        let first = self.atom()?;
        if !self.eat_kw("and") {
            return Ok(first);
        }
        let mut terms = vec![first, self.atom()?];
        while self.eat_kw("and") {
            terms.push(self.atom()?);
        }
        Ok(Expr::And(terms))
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            return Ok(Expr::Not(Box::new(self.atom()?)));
        }
        if self.eat_sym('(') {
            let e = self.predicate()?;
            self.expect_sym(')')?;
            return Ok(e);
        }
        let left = self.add_expr()?;
        let op = match self.bump() {
            Some(Tok::Sym('=')) => CmpOp::Eq,
            Some(Tok::Sym('<')) => CmpOp::Lt,
            Some(Tok::Sym('>')) => CmpOp::Gt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Ne) => CmpOp::Ne,
            _ => return self.err("expected comparison operator"),
        };
        let right = self.add_expr()?;
        Ok(left.cmp(op, right))
    }

    // add_expr := mul_expr (('+'|'-') mul_expr)*
    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = if self.eat_sym('+') {
                ArithOp::Add
            } else if self.eat_sym('-') {
                ArithOp::Sub
            } else {
                break;
            };
            let rhs = self.mul_expr()?;
            e = Expr::Arith {
                op,
                left: Box::new(e),
                right: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let op = if self.eat_sym('*') {
                ArithOp::Mul
            } else if self.eat_sym('/') {
                ArithOp::Div
            } else {
                break;
            };
            let rhs = self.primary()?;
            e = Expr::Arith {
                op,
                left: Box::new(e),
                right: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        // Unary minus on a numeric literal.
        if self.eat_sym('-') {
            return match self.bump() {
                Some(Tok::Int(i)) => Ok(Expr::Literal(Value::Int(-i))),
                Some(Tok::Float(f)) => Ok(Expr::Literal(Value::Float(-f))),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    self.err("expected numeric literal after '-'")
                }
            };
        }
        match self.bump() {
            Some(Tok::Ident(s)) if !is_reserved(&s) => Ok(Expr::Column(s)),
            Some(Tok::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Tok::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected value expression")
            }
        }
    }

    /// Assemble the parsed pieces into a plan: push single-alias WHERE
    /// conjuncts onto their FROM item, left-deep join the items, apply the
    /// residual predicate, then Aggregate or Project for the select list.
    fn assemble(
        &self,
        from_items: Vec<FromItem>,
        join_conds: Vec<Vec<(String, String)>>,
        predicate: Option<Expr>,
        group_by: Option<Vec<String>>,
        items: Vec<SelectItem>,
    ) -> Result<PlanRef, ParseError> {
        let aliases: Vec<String> = from_items.iter().map(|f| f.alias.clone()).collect();

        // Split the WHERE conjunction into per-alias pushdowns + residual.
        let mut pushed: Vec<Option<Expr>> = vec![None; from_items.len()];
        let mut residual: Option<Expr> = None;
        if let Some(pred) = predicate {
            let conjuncts = match pred {
                Expr::And(v) => v,
                other => vec![other],
            };
            for c in conjuncts {
                let owner = single_owner(&c, &aliases);
                match owner {
                    Some(idx) => {
                        pushed[idx] = Some(match pushed[idx].take() {
                            Some(p) => p.and(c),
                            None => c,
                        })
                    }
                    None => {
                        residual = Some(match residual.take() {
                            Some(p) => p.and(c),
                            None => c,
                        })
                    }
                }
            }
        }

        let mut plans: Vec<PlanRef> = Vec::with_capacity(from_items.len());
        for (item, push) in from_items.into_iter().zip(pushed) {
            let plan = match push {
                Some(p) => PlanNode::Filter {
                    input: item.plan,
                    predicate: p,
                }
                .into_ref(),
                None => item.plan,
            };
            plans.push(plan);
        }

        let mut iter = plans.into_iter();
        let Some(mut plan) = iter.next() else {
            return self.err("query has no FROM items");
        };
        for (right, on) in iter.zip(join_conds) {
            plan = PlanNode::Join {
                left: plan,
                right,
                on,
                join_type: JoinType::Inner,
            }
            .into_ref();
        }

        if let Some(p) = residual {
            plan = PlanNode::Filter {
                input: plan,
                predicate: p,
            }
            .into_ref();
        }

        // Select list → Aggregate or Project.
        let has_agg = items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg(..)));
        if has_agg || group_by.is_some() {
            let group_by = group_by.unwrap_or_default();
            let mut aggs = Vec::new();
            for item in &items {
                match item {
                    SelectItem::Agg(func, input, alias) => {
                        let output = alias.clone().unwrap_or_else(|| {
                            format!("{}_{}", func.keyword().to_lowercase(), aggs.len())
                        });
                        aggs.push(AggExpr {
                            func: *func,
                            input: input.clone(),
                            output,
                        });
                    }
                    SelectItem::Expr(Expr::Column(c), _) => {
                        if !group_by.contains(c) {
                            return self.err(format!(
                                "non-aggregated column {c} must appear in GROUP BY"
                            ));
                        }
                    }
                    SelectItem::Expr(..) => {
                        return self.err("computed select items not allowed with GROUP BY")
                    }
                    SelectItem::Star => {
                        return self.err("SELECT * not allowed with aggregation")
                    }
                }
            }
            plan = PlanNode::Aggregate {
                input: plan,
                group_by,
                aggs,
            }
            .into_ref();
        } else if !items.iter().any(|i| matches!(i, SelectItem::Star)) {
            let mut exprs = Vec::with_capacity(items.len());
            for item in items {
                // `has_agg` and the Star scan above make these arms
                // impossible, but a typed error beats a panic if the
                // select-list grammar ever grows.
                let SelectItem::Expr(expr, alias) = item else {
                    return self.err("aggregate or * mixed into a plain select list");
                };
                let alias = alias.unwrap_or_else(|| match &expr {
                    Expr::Column(c) => c.clone(),
                    other => other.to_string(),
                });
                exprs.push(ProjExpr { expr, alias });
            }
            plan = PlanNode::Project { input: plan, exprs }.into_ref();
        }
        Ok(plan)
    }
}

/// If every column in `e` belongs to exactly one alias, return its index.
fn single_owner(e: &Expr, aliases: &[String]) -> Option<usize> {
    let cols = e.referenced_columns();
    if cols.is_empty() {
        return None;
    }
    let mut owner: Option<usize> = None;
    for c in cols {
        let prefix = c.split('.').next()?;
        let idx = aliases.iter().position(|a| a == prefix)?;
        match owner {
            None => owner = Some(idx),
            Some(o) if o == idx => {}
            Some(_) => return None,
        }
    }
    owner
}

fn agg_func(s: &str) -> Option<AggFunc> {
    match s.to_ascii_lowercase().as_str() {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        "avg" => Some(AggFunc::Avg),
        _ => None,
    }
}

fn is_reserved(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "select"
            | "from"
            | "where"
            | "group"
            | "by"
            | "join"
            | "inner"
            | "on"
            | "and"
            | "or"
            | "not"
            | "as"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlanNode;

    #[test]
    fn parses_fig2_query_shape() {
        let sql = "select t1.user_id, count(*) as cnt from ( \
                     select t1.user_id, t1.memo from user_memo t1 \
                     where t1.dt = '1010' and t1.memo_type = 'pen' ) t1 \
                   inner join ( \
                     select t2.user_id, t2.action from user_action t2 \
                     where t2.type = 1 and t2.dt = '1010' ) t2 \
                   on t1.user_id = t2.user_id \
                   group by t1.user_id";
        let plan = parse_query(sql).expect("fig2 query parses");
        let s = plan.display_indent();
        assert!(s.starts_with("Aggregate"));
        assert!(s.contains("Join"));
        assert_eq!(s.matches("Project").count(), 2);
        assert_eq!(s.matches("Filter").count(), 2);
        assert_eq!(s.matches("TableScan").count(), 2);
    }

    #[test]
    fn pushes_single_table_predicates_below_join() {
        let plan = parse_query(
            "select a.x, b.y from t1 a join t2 b on a.id = b.id \
             where a.x > 5 and b.y = 'k'",
        )
        .expect("parses");
        // Expected shape: Project → Join → (Filter→Scan, Filter→Scan)
        if let PlanNode::Project { input, .. } = plan.as_ref() {
            if let PlanNode::Join { left, right, .. } = input.as_ref() {
                assert!(matches!(left.as_ref(), PlanNode::Filter { .. }));
                assert!(matches!(right.as_ref(), PlanNode::Filter { .. }));
                return;
            }
        }
        panic!("unexpected shape:\n{}", plan.display_indent());
    }

    #[test]
    fn cross_table_predicate_stays_above_join() {
        let plan = parse_query(
            "select a.x from t1 a join t2 b on a.id = b.id where a.x > b.y",
        )
        .expect("parses");
        if let PlanNode::Project { input, .. } = plan.as_ref() {
            assert!(matches!(input.as_ref(), PlanNode::Filter { .. }));
        } else {
            panic!("expected project root");
        }
    }

    #[test]
    fn select_star_produces_no_project() {
        let plan = parse_query("select * from t1 a where a.x = 1").expect("parses");
        assert!(matches!(plan.as_ref(), PlanNode::Filter { .. }));
    }

    #[test]
    fn aggregate_without_group_by() {
        let plan = parse_query("select count(*) as n from t a").expect("parses");
        match plan.as_ref() {
            PlanNode::Aggregate { group_by, aggs, .. } => {
                assert!(group_by.is_empty());
                assert_eq!(aggs[0].output, "n");
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn default_alias_is_table_name() {
        let plan = parse_query("select user_memo.x from user_memo").expect("parses");
        let mut found = false;
        plan.visit_preorder(&mut |n| {
            if let PlanNode::TableScan { alias, .. } = n {
                assert_eq!(alias, "user_memo");
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn rejects_unaggregated_column_outside_group_by() {
        let err = parse_query("select a.x, count(*) as n from t a group by a.y")
            .expect_err("must reject");
        assert!(err.message.contains("GROUP BY"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("select a.x from t a extra").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(parse_query("select a.x from t a where a.s = 'oops").is_err());
    }

    #[test]
    fn parses_comparison_operators() {
        for (op_text, kw) in [
            ("=", "EQ"),
            ("<", "LT"),
            (">", "GT"),
            ("<=", "LE"),
            (">=", "GE"),
            ("<>", "NE"),
            ("!=", "NE"),
        ] {
            let plan =
                parse_query(&format!("select a.x from t a where a.x {op_text} 3"))
                    .expect("parses");
            assert!(
                plan.display_indent().contains(kw),
                "{op_text} should render as {kw}"
            );
        }
    }

    #[test]
    fn parses_or_and_not_predicates() {
        let plan = parse_query(
            "select a.x from t a where not (a.x = 1 or a.y = 2) and a.z = 3",
        )
        .expect("parses");
        let s = plan.display_indent();
        assert!(s.contains("NOT(OR("));
        assert!(s.contains("EQ(a.z, 3)"));
    }

    #[test]
    fn parses_arithmetic_in_predicates() {
        let plan = parse_query("select a.x from t a where a.x + 1 > a.y * 2")
            .expect("parses");
        assert!(plan.display_indent().contains("GT(ADD(a.x, 1), MUL(a.y, 2))"));
    }
}
