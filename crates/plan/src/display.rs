//! Human-readable plan rendering in the indented style the paper uses.

use crate::node::{PlanNode, ProjExpr};
use std::fmt::Write as _;

impl PlanNode {
    /// Render the plan as an indented tree, one operator per line, e.g.
    ///
    /// ```text
    /// Aggregate(group=[{t1.user_id}], cnt=[COUNT()])
    ///   Join(condition=[EQ(t1.user_id, t2.user_id)], joinType=[inner])
    ///     Filter(condition=[EQ(t1.dt, '1010')])
    ///       TableScan(table=[user_memo])
    /// ```
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            PlanNode::TableScan { table, alias } => {
                let _ = writeln!(out, "TableScan(table=[{table}], alias=[{alias}])");
            }
            PlanNode::Filter { input, predicate } => {
                let _ = writeln!(out, "Filter(condition=[{predicate}])");
                input.fmt_indent(out, depth + 1);
            }
            PlanNode::Project { input, exprs } => {
                let _ = writeln!(out, "Project({})", fmt_projs(exprs));
                input.fmt_indent(out, depth + 1);
            }
            PlanNode::Join {
                left,
                right,
                on,
                join_type,
            } => {
                let cond = on
                    .iter()
                    .map(|(l, r)| format!("EQ({l}, {r})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "Join(condition=[{cond}], joinType=[{}])",
                    join_type.keyword()
                );
                left.fmt_indent(out, depth + 1);
                right.fmt_indent(out, depth + 1);
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let aggs_s = aggs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "Aggregate(group=[{{{}}}], {aggs_s})",
                    group_by.join(", ")
                );
                input.fmt_indent(out, depth + 1);
            }
        }
    }
}

fn fmt_projs(exprs: &[ProjExpr]) -> String {
    exprs
        .iter()
        .map(|p| format!("{}=[{}]", p.alias, p.expr))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use crate::builder::PlanBuilder;
    use crate::expr::Expr;

    #[test]
    fn indentation_reflects_depth() {
        let p = PlanBuilder::scan("user_memo", "t1")
            .filter(Expr::col("t1.dt").eq(Expr::str("1010")))
            .project(&[("t1.user_id", "uid")])
            .build();
        let s = p.display_indent();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Project("));
        assert!(lines[1].starts_with("  Filter("));
        assert!(lines[2].starts_with("    TableScan("));
    }

    #[test]
    fn join_renders_both_children() {
        let p = PlanBuilder::scan("a", "a")
            .join(PlanBuilder::scan("b", "b"), &[("a.k", "b.k")])
            .build();
        let s = p.display_indent();
        assert!(s.contains("joinType=[inner]"));
        assert_eq!(s.matches("TableScan").count(), 2);
    }
}
