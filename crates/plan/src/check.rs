//! Catalog-free structural well-formedness checks.
//!
//! These run at plan-builder exit (debug builds) and cover everything that
//! can be decided without a catalog: degenerate operator shapes and
//! duplicate output names. Binding and typing — which need table schemas —
//! live in the full verifier in `av-analyze`.

use crate::error::PlanError;
use crate::node::PlanNode;

/// Check structural invariants of every operator in the subtree.
pub fn check_structure(plan: &PlanNode) -> Result<(), PlanError> {
    check_node(plan)?;
    for c in plan.children() {
        check_structure(c)?;
    }
    Ok(())
}

fn check_node(plan: &PlanNode) -> Result<(), PlanError> {
    match plan {
        PlanNode::TableScan { table, .. } => {
            if table.is_empty() {
                return Err(PlanError::Malformed {
                    operator: "Scan",
                    reason: "empty table name".into(),
                });
            }
        }
        PlanNode::Filter { .. } => {}
        PlanNode::Project { exprs, .. } => {
            if exprs.is_empty() {
                return Err(PlanError::Malformed {
                    operator: "Project",
                    reason: "no projected columns".into(),
                });
            }
            check_unique(exprs.iter().map(|p| p.alias.as_str()), "Project")?;
        }
        PlanNode::Join { on, .. } => {
            for (l, r) in on {
                if l.is_empty() || r.is_empty() {
                    return Err(PlanError::Malformed {
                        operator: "Join",
                        reason: "empty join-key name".into(),
                    });
                }
            }
        }
        PlanNode::Aggregate { group_by, aggs, .. } => {
            if group_by.is_empty() && aggs.is_empty() {
                return Err(PlanError::Malformed {
                    operator: "Aggregate",
                    reason: "no group keys and no aggregates".into(),
                });
            }
            check_unique(
                group_by
                    .iter()
                    .map(|s| s.as_str())
                    .chain(aggs.iter().map(|a| a.output.as_str())),
                "Aggregate",
            )?;
        }
    }
    Ok(())
}

fn check_unique<'a>(
    names: impl Iterator<Item = &'a str>,
    operator: &'static str,
) -> Result<(), PlanError> {
    let mut seen: Vec<&str> = Vec::new();
    for n in names {
        if seen.contains(&n) {
            return Err(PlanError::DuplicateColumn {
                column: n.to_string(),
                operator,
            });
        }
        seen.push(n);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, AggFunc, Expr};
    use crate::node::ProjExpr;
    use crate::PlanBuilder;

    #[test]
    fn well_formed_plan_passes() {
        let p = PlanBuilder::scan("t", "a")
            .filter(Expr::col("a.x").eq(Expr::int(1)))
            .project(&[("a.x", "x")])
            .build();
        assert!(check_structure(&p).is_ok());
    }

    #[test]
    fn empty_projection_rejected() {
        let p = PlanNode::Project {
            input: PlanBuilder::scan("t", "a").build(),
            exprs: vec![],
        };
        assert_eq!(check_structure(&p).unwrap_err().code(), "malformed");
    }

    #[test]
    fn duplicate_project_alias_rejected() {
        let p = PlanNode::Project {
            input: PlanBuilder::scan("t", "a").build(),
            exprs: vec![
                ProjExpr::column("a.x", "x"),
                ProjExpr::column("a.y", "x"),
            ],
        };
        assert_eq!(
            check_structure(&p).unwrap_err().code(),
            "duplicate-column"
        );
    }

    #[test]
    fn duplicate_aggregate_output_rejected() {
        let p = PlanNode::Aggregate {
            input: PlanBuilder::scan("t", "a").build(),
            group_by: vec!["a.k".into()],
            aggs: vec![AggExpr {
                func: AggFunc::Count,
                input: None,
                output: "a.k".into(),
            }],
        };
        assert_eq!(
            check_structure(&p).unwrap_err().code(),
            "duplicate-column"
        );
    }

    #[test]
    fn empty_table_name_rejected_deep_in_tree() {
        let p = PlanNode::Filter {
            input: PlanNode::TableScan {
                table: String::new(),
                alias: "a".into(),
            }
            .into_ref(),
            predicate: Expr::col("a.x").eq(Expr::int(1)),
        };
        assert_eq!(check_structure(&p).unwrap_err().code(), "malformed");
    }
}
