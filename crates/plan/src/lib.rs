//! # av-plan — logical plans for AutoView
//!
//! Logical query plans, a small expression language, a SQL-ish parser and the
//! feature serialization used by the cost estimator (Fig. 4 of the paper).
//!
//! A SQL query is parsed into a tree of [`PlanNode`]s. Every subtree rooted at
//! an `Aggregate`, `Join` or `Project` is a *subquery* in the paper's sense and
//! is a candidate for materialization. The crate is engine-agnostic: execution
//! and costing live in `av-engine`, equivalence reasoning in `av-equiv`.
//!
//! ```
//! use av_plan::parser::parse_query;
//!
//! let plan = parse_query(
//!     "SELECT t1.user_id, COUNT(*) AS cnt \
//!      FROM user_memo t1 JOIN user_action t2 ON t1.user_id = t2.user_id \
//!      WHERE t1.dt = '1010' AND t2.type = 1 \
//!      GROUP BY t1.user_id",
//! ).unwrap();
//! assert!(plan.display_indent().contains("Join"));
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod check;
pub mod display;
pub mod error;
pub mod expr;
pub mod features;
pub mod node;
pub mod parser;
pub mod subquery;
pub mod value;

pub use builder::PlanBuilder;
pub use check::check_structure;
pub use error::PlanError;
pub use expr::{AggExpr, AggFunc, CmpOp, Expr};
pub use features::{plan_feature_rows, FeatureRow, Token};
pub use node::{JoinType, PlanNode, PlanRef, ProjExpr};
pub use parser::{parse_query, ParseError};
pub use subquery::{common_subtree_exists, enumerate_subqueries, Fingerprint};
pub use value::Value;
