//! Subquery enumeration, structural fingerprints and common-subtree
//! (overlap) detection.
//!
//! The paper defines a *subquery* as any subplan rooted at an `Aggregate`,
//! `Join` or `Project` operator, and calls two subqueries *overlapping*
//! (Def. 5) when their plan trees share a common subtree — such views cannot
//! both be used to rewrite the same query.

use crate::node::{PlanNode, PlanRef};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Structural fingerprint of a plan subtree.
///
/// Two subtrees with equal fingerprints are structurally identical with
/// overwhelming probability (64-bit hash over the full tree). Semantic
/// equivalence beyond structural identity is `av-equiv`'s job; fingerprints
/// are its fast path and the basis of overlap detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprint a subtree.
    pub fn of(plan: &PlanNode) -> Fingerprint {
        let mut h = DefaultHasher::new();
        plan.hash(&mut h);
        Fingerprint(h.finish())
    }
}

/// A subquery extracted from a larger query plan.
#[derive(Debug, Clone)]
pub struct ExtractedSubquery {
    /// The subplan itself (shared with the parent plan).
    pub plan: PlanRef,
    /// Structural fingerprint of `plan`.
    pub fingerprint: Fingerprint,
    /// Depth of the subquery root below the query root (root = 0).
    pub depth: usize,
}

/// Enumerate all subqueries of `plan`: every subtree rooted at Aggregate,
/// Join or Project, including the root itself if it qualifies.
///
/// Scans and bare filters are not considered worth materializing (a view on a
/// raw scan is just a table copy), matching the paper's pre-process rule.
pub fn enumerate_subqueries(plan: &PlanRef) -> Vec<ExtractedSubquery> {
    let mut out = Vec::new();
    walk(plan, 0, &mut out);
    out
}

fn walk(plan: &PlanRef, depth: usize, out: &mut Vec<ExtractedSubquery>) {
    if matches!(
        plan.as_ref(),
        PlanNode::Aggregate { .. } | PlanNode::Join { .. } | PlanNode::Project { .. }
    ) {
        out.push(ExtractedSubquery {
            plan: plan.clone(),
            fingerprint: Fingerprint::of(plan),
            depth,
        });
    }
    match plan.as_ref() {
        PlanNode::TableScan { .. } => {}
        PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Aggregate { input, .. } => walk(input, depth + 1, out),
        PlanNode::Join { left, right, .. } => {
            walk(left, depth + 1, out);
            walk(right, depth + 1, out);
        }
    }
}

/// Fingerprints of *all* subtrees (every operator, not just subquery roots).
/// Used for overlap detection: two plans overlap iff these sets intersect.
pub fn all_subtree_fingerprints(plan: &PlanNode) -> HashSet<Fingerprint> {
    let mut set = HashSet::with_capacity(plan.node_count());
    collect_fps(plan, &mut set);
    set
}

fn collect_fps(plan: &PlanNode, set: &mut HashSet<Fingerprint>) {
    set.insert(Fingerprint::of(plan));
    for c in plan.children() {
        collect_fps(c, set);
    }
}

/// Overlap test (paper Def. 5): do the two plan trees share any common
/// subtree? Scan-only sharing counts, mirroring the paper's conservative
/// rule that views derived from the same scanned partition conflict.
pub fn common_subtree_exists(a: &PlanNode, b: &PlanNode) -> bool {
    let fa = all_subtree_fingerprints(a);
    let fb = all_subtree_fingerprints(b);
    !fa.is_disjoint(&fb)
}

/// Check whether `sub` occurs as a subtree of `plan` (structural identity).
pub fn contains_subtree(plan: &PlanNode, sub_fp: Fingerprint) -> bool {
    if Fingerprint::of(plan) == sub_fp {
        return true;
    }
    plan.children()
        .iter()
        .any(|c| contains_subtree(c, sub_fp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::Expr;

    fn fig2_query() -> PlanRef {
        let left = PlanBuilder::scan("user_memo", "t1")
            .filter(
                Expr::col("t1.dt")
                    .eq(Expr::str("1010"))
                    .and(Expr::col("t1.memo_type").eq(Expr::str("pen"))),
            )
            .project(&[("t1.user_id", "t1.user_id"), ("t1.memo", "t1.memo")]);
        let right = PlanBuilder::scan("user_action", "t2")
            .filter(
                Expr::col("t2.type")
                    .eq(Expr::int(1))
                    .and(Expr::col("t2.dt").eq(Expr::str("1010"))),
            )
            .project(&[("t2.user_id", "t2.user_id"), ("t2.action", "t2.action")]);
        left.join(right, &[("t1.user_id", "t2.user_id")])
            .count_star(&["t1.user_id"], "cnt")
            .build()
    }

    #[test]
    fn fig2_has_three_subqueries_plus_root() {
        // s1 (left Project), s2 (right Project), s3 (Join), and the root
        // Aggregate also qualifies — the paper's Fig. 2 draws s1, s2, s3
        // inside q.
        let subs = enumerate_subqueries(&fig2_query());
        assert_eq!(subs.len(), 4);
        let ops: Vec<&str> = subs.iter().map(|s| s.plan.op_keyword()).collect();
        assert_eq!(ops, vec!["Aggregate", "Join", "Project", "Project"]);
    }

    #[test]
    fn identical_subtrees_share_fingerprints() {
        let a = PlanBuilder::scan("t", "x")
            .filter(Expr::col("x.a").eq(Expr::int(1)))
            .project(&[("x.a", "a")])
            .build();
        let b = PlanBuilder::scan("t", "x")
            .filter(Expr::col("x.a").eq(Expr::int(1)))
            .project(&[("x.a", "a")])
            .build();
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn different_literals_change_fingerprint() {
        let a = PlanBuilder::scan("t", "x")
            .filter(Expr::col("x.a").eq(Expr::int(1)))
            .build();
        let b = PlanBuilder::scan("t", "x")
            .filter(Expr::col("x.a").eq(Expr::int(2)))
            .build();
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn overlap_detected_between_join_and_its_input() {
        let q = fig2_query();
        let subs = enumerate_subqueries(&q);
        let join = &subs[1]; // s3
        let left_proj = &subs[2]; // s1
        assert!(common_subtree_exists(&join.plan, &left_proj.plan));
    }

    #[test]
    fn disjoint_plans_do_not_overlap() {
        let a = PlanBuilder::scan("t1", "a")
            .project(&[("a.x", "x")])
            .build();
        let b = PlanBuilder::scan("t2", "b")
            .project(&[("b.y", "y")])
            .build();
        assert!(!common_subtree_exists(&a, &b));
    }

    #[test]
    fn contains_subtree_finds_nested_node() {
        let q = fig2_query();
        let subs = enumerate_subqueries(&q);
        for s in &subs {
            assert!(contains_subtree(&q, s.fingerprint));
        }
        let unrelated = PlanBuilder::scan("zzz", "z").project(&[("z.a", "a")]).build();
        assert!(!contains_subtree(&q, Fingerprint::of(&unrelated)));
    }

    #[test]
    fn depths_increase_down_the_tree() {
        let subs = enumerate_subqueries(&fig2_query());
        assert_eq!(subs[0].depth, 0); // Aggregate root
        assert_eq!(subs[1].depth, 1); // Join
        assert!(subs[2].depth > subs[1].depth);
    }
}
