//! Expression language: column references, literals, comparisons, boolean
//! connectives and arithmetic.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Keyword used in feature rows and display, matching the paper's plan
    /// rendering (`EQ(dt, '1010')`).
    pub fn keyword(self) -> &'static str {
        match self {
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
        }
    }

    /// Apply the comparison under SQL semantics (NULL compares to nothing).
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => a.sql_eq(b),
            CmpOp::Ne => !a.sql_eq(b),
            CmpOp::Lt => a.total_cmp(b).is_lt(),
            CmpOp::Le => a.total_cmp(b).is_le(),
            CmpOp::Gt => a.total_cmp(b).is_gt(),
            CmpOp::Ge => a.total_cmp(b).is_ge(),
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    /// Keyword used in feature rows and display.
    pub fn keyword(self) -> &'static str {
        match self {
            ArithOp::Add => "ADD",
            ArithOp::Sub => "SUB",
            ArithOp::Mul => "MUL",
            ArithOp::Div => "DIV",
        }
    }
}

/// A scalar expression over named columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a column by qualified name (e.g. `t1.user_id`).
    Column(String),
    /// Literal constant.
    Literal(Value),
    /// Binary comparison.
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// N-ary conjunction.
    And(Vec<Expr>),
    /// N-ary disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Binary arithmetic.
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Convenience constructor for a string literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Value::Str(v.into()))
    }

    /// Build `self op other`.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Build `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// Conjoin two predicates, flattening nested ANDs.
    pub fn and(self, other: Expr) -> Expr {
        let mut parts = Vec::new();
        for e in [self, other] {
            match e {
                Expr::And(v) => parts.extend(v),
                other => parts.push(other),
            }
        }
        Expr::And(parts)
    }

    /// All column names referenced by this expression, in first-seen order.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| {
            if !out.iter().any(|o| o == c) {
                out.push(c.to_string());
            }
        });
        out
    }

    fn visit_columns(&self, f: &mut dyn FnMut(&str)) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::And(v) | Expr::Or(v) => v.iter().for_each(|e| e.visit_columns(f)),
            Expr::Not(e) => e.visit_columns(f),
        }
    }

    /// Evaluate the expression against a row, where `resolve` maps a column
    /// name to its value. Used by the engine's interpreter and by the
    /// randomized semantic checks in `av-equiv`.
    pub fn eval(&self, resolve: &dyn Fn(&str) -> Value) -> Value {
        match self {
            Expr::Column(c) => resolve(c),
            Expr::Literal(v) => v.clone(),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(resolve);
                let r = right.eval(resolve);
                Value::Int(op.apply(&l, &r) as i64)
            }
            Expr::And(v) => Value::Int(v.iter().all(|e| e.eval_bool(resolve)) as i64),
            Expr::Or(v) => Value::Int(v.iter().any(|e| e.eval_bool(resolve)) as i64),
            Expr::Not(e) => Value::Int(!e.eval_bool(resolve) as i64),
            Expr::Arith { op, left, right } => {
                let l = left.eval(resolve);
                let r = right.eval(resolve);
                match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => {
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => {
                                if b == 0.0 {
                                    return Value::Null;
                                }
                                a / b
                            }
                        };
                        // Preserve integer-ness when both inputs were ints
                        // and the result is exact.
                        if matches!((&l, &r), (Value::Int(_), Value::Int(_)))
                            && out.fract() == 0.0
                            && !matches!(op, ArithOp::Div)
                        {
                            Value::Int(out as i64)
                        } else {
                            Value::Float(out)
                        }
                    }
                    _ => Value::Null,
                }
            }
        }
    }

    /// Evaluate as a boolean predicate; NULL and non-truthy values are false.
    pub fn eval_bool(&self, resolve: &dyn Fn(&str) -> Value) -> bool {
        match self.eval(resolve) {
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
            _ => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Cmp { op, left, right } => {
                write!(f, "{}({left}, {right})", op.keyword())
            }
            Expr::And(v) => {
                write!(f, "AND(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(v) => {
                write!(f, "OR(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT({e})"),
            Expr::Arith { op, left, right } => {
                write!(f, "{}({left}, {right})", op.keyword())
            }
        }
    }
}

/// Aggregate functions supported by the `Aggregate` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// Keyword used in feature rows and display (`COUNT`, `SUM`, ...).
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate output: `func(input_column) AS output_name`.
///
/// `COUNT(*)` is represented with `input: None`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggExpr {
    pub func: AggFunc,
    pub input: Option<String>,
    pub output: String,
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(c) => write!(f, "{}=[{}({})]", self.output, self.func.keyword(), c),
            None => write!(f, "{}=[{}()]", self.output, self.func.keyword()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(resolve: &'a [(&'a str, Value)]) -> impl Fn(&str) -> Value + 'a {
        move |c: &str| {
            resolve
                .iter()
                .find(|(n, _)| *n == c)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null)
        }
    }

    #[test]
    fn cmp_flip_is_involutive_on_ordering_ops() {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn eval_comparison_and_conjunction() {
        let e = Expr::col("a")
            .cmp(CmpOp::Gt, Expr::int(3))
            .and(Expr::col("b").eq(Expr::str("x")));
        let r = [("a", Value::Int(5)), ("b", Value::Str("x".into()))];
        assert!(e.eval_bool(&row(&r)));
        let r2 = [("a", Value::Int(2)), ("b", Value::Str("x".into()))];
        assert!(!e.eval_bool(&row(&r2)));
    }

    #[test]
    fn and_flattens_nested_conjunctions() {
        let e = Expr::col("a")
            .eq(Expr::int(1))
            .and(Expr::col("b").eq(Expr::int(2)))
            .and(Expr::col("c").eq(Expr::int(3)));
        match e {
            Expr::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn null_comparisons_are_false() {
        let e = Expr::col("a").eq(Expr::int(1));
        assert!(!e.eval_bool(&row(&[("a", Value::Null)])));
        let ne = Expr::col("a").cmp(CmpOp::Ne, Expr::int(1));
        assert!(!ne.eval_bool(&row(&[("a", Value::Null)])));
    }

    #[test]
    fn division_by_zero_yields_null() {
        let e = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::int(1)),
            right: Box::new(Expr::int(0)),
        };
        assert!(e.eval(&row(&[])).is_null());
    }

    #[test]
    fn display_uses_prefix_notation() {
        let e = Expr::col("dt")
            .eq(Expr::str("1010"))
            .and(Expr::col("memo_type").eq(Expr::str("pen")));
        assert_eq!(
            e.to_string(),
            "AND(EQ(dt, '1010'), EQ(memo_type, 'pen'))"
        );
    }

    #[test]
    fn referenced_columns_deduplicates_in_order() {
        let e = Expr::col("b")
            .eq(Expr::col("a"))
            .and(Expr::col("b").cmp(CmpOp::Lt, Expr::int(4)));
        assert_eq!(e.referenced_columns(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let e = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::int(2)),
            right: Box::new(Expr::int(3)),
        };
        assert_eq!(e.eval(&row(&[])), Value::Int(5));
    }
}
