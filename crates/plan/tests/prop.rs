//! Property tests for plans: fingerprint stability, feature-row totality,
//! expression evaluation totality, and parser determinism.

use av_plan::{
    parse_query, plan_feature_rows, CmpOp, Expr, Fingerprint, PlanBuilder, PlanRef, Value,
};
use proptest::prelude::*;

/// Strategy: a random scalar predicate over a fixed column set.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..4usize).prop_map(|i| Expr::col(format!("a.c{i}"))),
        (-20i64..20).prop_map(Expr::int),
        "[a-z]{1,6}".prop_map(Expr::str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(l, r, op)| {
                let op = match op % 6 {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                l.cmp(op, r)
            }),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

/// Strategy: a random small plan over one or two tables.
fn arb_plan() -> impl Strategy<Value = PlanRef> {
    (arb_expr(), arb_expr(), any::<bool>(), any::<bool>()).prop_map(
        |(p1, p2, join, agg)| {
            let left = PlanBuilder::scan("t1", "a").filter(p1).project(&[
                ("a.c0", "a.c0"),
                ("a.c1", "a.c1"),
            ]);
            let b = if join {
                let right = PlanBuilder::scan("t2", "b")
                    .filter(p2)
                    .project(&[("b.c0", "b.c0")]);
                left.join(right, &[("a.c0", "b.c0")])
            } else {
                left
            };
            if agg {
                b.count_star(&["a.c1"], "n").build()
            } else {
                b.build()
            }
        },
    )
}

proptest! {
    #[test]
    fn fingerprint_is_stable_and_clone_invariant(plan in arb_plan()) {
        let fp1 = Fingerprint::of(&plan);
        let fp2 = Fingerprint::of(&plan.as_ref().clone().into_ref());
        prop_assert_eq!(fp1, fp2);
    }

    #[test]
    fn feature_rows_cover_every_operator(plan in arb_plan()) {
        let rows = plan_feature_rows(&plan);
        prop_assert_eq!(rows.len(), plan.node_count());
        // Every row starts with the operator keyword, which is non-empty.
        for row in rows {
            prop_assert!(!row.is_empty());
            prop_assert!(!row[0].text().is_empty());
        }
    }

    #[test]
    fn expr_eval_is_total(e in arb_expr(), v in -25i64..25) {
        // No panic for any expression over any binding, including NULLs.
        let resolve = |name: &str| {
            if name.ends_with("c0") {
                Value::Int(v)
            } else if name.ends_with("c1") {
                Value::Str(format!("s{v}"))
            } else {
                Value::Null
            }
        };
        let _ = e.eval(&resolve);
        let _ = e.eval_bool(&resolve);
    }

    #[test]
    fn display_then_parse_round_trips_filters(v in -50i64..50, c in 0..3usize) {
        // A constrained round-trip: simple filters survive display→SQL→parse
        // with identical structure.
        let sql = format!("select a.c{c} from t a where a.c{c} > {v}");
        let p1 = parse_query(&sql).expect("parses");
        let p2 = parse_query(&sql).expect("parses again");
        prop_assert_eq!(Fingerprint::of(&p1), Fingerprint::of(&p2));
    }

    #[test]
    fn subquery_enumeration_is_consistent(plan in arb_plan()) {
        let subs = av_plan::enumerate_subqueries(&plan);
        for s in &subs {
            prop_assert_eq!(s.fingerprint, Fingerprint::of(&s.plan));
            prop_assert!(av_plan::subquery::contains_subtree(&plan, s.fingerprint));
        }
    }
}
