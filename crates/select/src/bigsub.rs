//! BigSub baseline (Jindal et al., PVLDB'18): iterative bipartite labeling
//! with a convergence freeze.
//!
//! BigSub runs the same alternating optimization as IterView, but — to force
//! convergence — forbids turning *selected* subqueries back to unselected
//! once the iteration count passes a threshold. The paper observes this
//! makes it degenerate toward a greedy method with correspondingly poorer
//! utility, which is the motivation for RLView.

use crate::iterview::{IterView, IterViewConfig};
use crate::SelectionResult;
use av_ilp::MvsInstance;

/// Configuration for [`BigSub`].
#[derive(Debug, Clone)]
pub struct BigSubConfig {
    /// Total iterations.
    pub iterations: usize,
    /// Iteration after which 1→0 flips are forbidden. Defaults to a third
    /// of the run, mirroring BigSub's early-freeze behaviour.
    pub freeze_after: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BigSubConfig {
    fn default() -> Self {
        BigSubConfig {
            iterations: 100,
            freeze_after: None,
            seed: 42,
        }
    }
}

/// The BigSub solver.
pub struct BigSub;

impl BigSub {
    /// Run BigSub on an instance.
    pub fn run(instance: &MvsInstance, config: BigSubConfig) -> SelectionResult {
        let freeze = config.freeze_after.unwrap_or(config.iterations / 3);
        IterView::new(
            instance,
            IterViewConfig {
                iterations: config.iterations,
                seed: config.seed,
                freeze_after: Some(freeze),
            },
        )
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_instance;

    #[test]
    fn bigsub_is_deterministic() {
        let m = random_instance(20, 10, 12);
        let a = BigSub::run(&m, BigSubConfig::default());
        let b = BigSub::run(&m, BigSubConfig::default());
        assert_eq!(a.z, b.z);
        assert!((a.utility - b.utility).abs() < 1e-12);
    }

    #[test]
    fn trajectory_stabilizes_after_freeze() {
        // After the freeze the selected set only grows, so the set of
        // distinct utilities in the frozen tail should be small relative to
        // the pre-freeze churn on a contended instance.
        let m = random_instance(21, 16, 20);
        let cfg = BigSubConfig {
            iterations: 80,
            freeze_after: Some(20),
            seed: 3,
        };
        let r = BigSub::run(&m, cfg);
        assert_eq!(r.trajectory.len(), 80);
        let tail = &r.trajectory[60..];
        let tail_range = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - tail.iter().copied().fold(f64::INFINITY, f64::min);
        let head = &r.trajectory[..20];
        let head_range = head.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - head.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            tail_range <= head_range + 1e-9,
            "frozen tail should churn no more than the head (tail {tail_range}, head {head_range})"
        );
    }

    #[test]
    fn utility_is_consistent_with_instance() {
        let m = random_instance(22, 8, 10);
        let r = BigSub::run(&m, BigSubConfig::default());
        assert!((m.utility(&r.z, &r.y) - r.utility).abs() < 1e-9);
    }
}
