//! RLView (paper Algorithm 2): the iterative MVS optimization recast as a
//! Markov Decision Process and driven by a Deep Q-Network.
//!
//! - **State** `e = ⟨Z, Y⟩`: the current materialization and usage labels.
//! - **Action** `a_j`: flip `z_j`; the environment (the exact per-query ILP
//!   `Y-Opt`) then recomputes `Y`.
//! - **Reward** `r_t = U(e_{t+1}) − U(e_t)`: the utility change.
//! - **Q-network** `μ(e, a | θ)`: a 16→64→16→1 MLP over a 16-dimensional
//!   per-action feature vector (the paper's four fully-connected layers with
//!   16, 64, 16, 1 neurons and ReLU activations).
//! - **Experience replay**: transitions `⟨e_t, a_t, r_t, e_{t+1}⟩` stored as
//!   feature vectors; once the memory reaches `n_m` entries, minibatches
//!   fine-tune θ with the Q-learning target `r + γ·max_a' Q(e', a')`.
//!
//! The warm start is the paper's own recipe: run `IterView` for `n₁`
//! iterations and take its final state as `e₀`. One engineering addition on
//! top of the paper's text: ε-greedy exploration with a decaying ε (the
//! standard DQN practice; with pure argmax an untrained network can lock
//! into a poor flip cycle).

use crate::iterview::{IterView, IterViewConfig};
use crate::SelectionResult;
use av_ilp::MvsInstance;
use av_nn::{Adam, Graph, Linear, ParamStore, Tensor};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Dimensionality of the per-action state feature vector.
pub const FEATURE_DIM: usize = 16;

/// Configuration for [`RlView`] (paper Table II: `n₁`, `n₂`, `n_m`, γ).
#[derive(Debug, Clone)]
pub struct RlViewConfig {
    /// IterView warm-start iterations (`n₁`).
    pub n1: usize,
    /// RL epochs (`n₂`).
    pub n2: usize,
    /// Replay-memory threshold and sliding-window size (`n_m`).
    pub memory_size: usize,
    /// Reward decay rate γ.
    pub gamma: f64,
    /// Adam learning rate for the DQN.
    pub lr: f32,
    /// Minibatch size for fine-tuning.
    pub batch_size: usize,
    /// Fine-tune the DQN every this many environment steps (1 = the paper's
    /// per-step update; larger values amortize training on big instances).
    pub train_every: usize,
    /// Initial exploration rate (decays linearly to 0 over the epochs).
    pub epsilon: f64,
    /// Safety cap on steps per epoch (the paper's loop is bounded by the
    /// reward-positivity condition; the cap guards degenerate instances).
    pub max_steps_per_epoch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RlViewConfig {
    fn default() -> Self {
        RlViewConfig {
            n1: 10,
            n2: 90,
            memory_size: 20,
            gamma: 0.9,
            lr: 1e-3,
            batch_size: 32,
            train_every: 1,
            epsilon: 0.2,
            max_steps_per_epoch: 200,
            seed: 42,
        }
    }
}

/// One replay transition, stored as features so training never re-runs the
/// (expensive) environment.
struct Transition {
    /// φ(e_t, a_t).
    phi: [f32; FEATURE_DIM],
    /// r_t.
    reward: f64,
    /// φ(e_{t+1}, a_j) for every action j, for the bootstrap max.
    next_phis: Vec<[f32; FEATURE_DIM]>,
}

/// The 16→64→16→1 Q-network.
struct QNet {
    store: ParamStore,
    l1: Linear,
    l2: Linear,
    l3: Linear,
    l4: Linear,
    adam: Adam,
}

impl QNet {
    fn new(seed: u64, lr: f32) -> QNet {
        let mut store = ParamStore::with_seed(seed);
        let l1 = Linear::new(&mut store, FEATURE_DIM, 16);
        let l2 = Linear::new(&mut store, 16, 64);
        let l3 = Linear::new(&mut store, 64, 16);
        let l4 = Linear::new(&mut store, 16, 1);
        QNet {
            store,
            l1,
            l2,
            l3,
            l4,
            adam: Adam::new(lr),
        }
    }

    fn forward(&self, g: &mut Graph, x: av_nn::NodeId) -> av_nn::NodeId {
        let h = self.l1.forward_with(g, &self.store, x);
        let h = g.relu(h);
        let h = self.l2.forward_with(g, &self.store, h);
        let h = g.relu(h);
        let h = self.l3.forward_with(g, &self.store, h);
        let h = g.relu(h);
        self.l4.forward_with(g, &self.store, h)
    }

    /// Q-values for a batch of feature rows (no gradient).
    fn q_values(&self, phis: &[[f32; FEATURE_DIM]]) -> Vec<f64> {
        if phis.is_empty() {
            return Vec::new();
        }
        let rows: Vec<&[f32]> = phis.iter().map(|p| p.as_slice()).collect();
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&rows));
        let q = self.forward(&mut g, x);
        (0..phis.len()).map(|i| g.value(q).get(i, 0) as f64).collect()
    }

    /// One minibatch Q-learning update (paper Function DQN): predictions
    /// for the taken actions regress toward `r + γ·max Q(next)`. Returns
    /// the minibatch MSE, for telemetry.
    fn train_batch(&mut self, batch: &[&Transition], gamma: f64) -> f64 {
        // Target-Q pass: every transition's next-state rows go through ONE
        // batched forward (rows are independent, so each Q-value is
        // identical to a per-transition forward), then the per-transition
        // max is taken over its own slice of the output.
        let all_next: Vec<[f32; FEATURE_DIM]> = batch
            .iter()
            .flat_map(|t| t.next_phis.iter().copied())
            .collect();
        let all_q = self.q_values(&all_next);
        let mut at = 0usize;
        let targets: Vec<f32> = batch
            .iter()
            .map(|t| {
                let qs = &all_q[at..at + t.next_phis.len()];
                at += t.next_phis.len();
                let next_best = qs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let next_best = if next_best.is_finite() { next_best } else { 0.0 };
                (t.reward + gamma * next_best) as f32
            })
            .collect();
        let rows: Vec<&[f32]> = batch.iter().map(|t| t.phi.as_slice()).collect();
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&rows));
        let pred = self.forward(&mut g, x);
        let target = g.input(Tensor::from_vec(targets.len(), 1, targets));
        let loss = g.mse(pred, target);
        let loss_value = g.value(loss).get(0, 0) as f64;
        g.backward(loss);
        g.accumulate_param_grads(&mut self.store);
        self.adam.step(&mut self.store);
        loss_value
    }
}

/// The RLView solver.
pub struct RlView;

impl RlView {
    /// Run RLView on an instance (paper Algorithm 2). The returned
    /// trajectory concatenates the IterView warm start with the RL steps.
    pub fn run(instance: &MvsInstance, config: RlViewConfig) -> SelectionResult {
        Self::run_traced(instance, config, &av_trace::Tracer::disabled())
    }

    /// [`RlView::run`] with episode telemetry: one `select.episode` span
    /// per RL epoch (epsilon, steps, episode reward), `select.q_loss` and
    /// `select.episode_reward` histograms, and `select.epsilon` /
    /// `select.replay_size` gauges.
    pub fn run_traced(
        instance: &MvsInstance,
        config: RlViewConfig,
        tracer: &av_trace::Tracer,
    ) -> SelectionResult {
        let nc = instance.num_candidates();
        if nc == 0 {
            return SelectionResult::from_z(instance, Vec::new());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed);

        // Warm start: IterView for n₁ iterations, keeping its final state.
        let mut iv = IterView::new(
            instance,
            IterViewConfig {
                iterations: config.n1,
                seed: config.seed,
                freeze_after: None,
            },
        );
        let mut trajectory = Vec::new();
        for _ in 0..config.n1 {
            let tau: f64 = rng.gen_range(0.0..1.0);
            iv.z_opt(tau, false);
            iv.y_opt();
            trajectory.push(iv.utility());
        }
        iv.y_opt();

        let mut qnet = QNet::new(config.seed, config.lr);
        let mut memory: VecDeque<Transition> = VecDeque::new();
        let mut best = (
            iv.utility(),
            iv.z.clone(),
            iv.y.clone(),
            trajectory.len().max(1),
        );

        let freq: Vec<f64> = (0..nc)
            .map(|j| {
                instance
                    .benefits
                    .iter()
                    .filter(|row| row[j] > 0.0)
                    .count() as f64
            })
            .collect();
        let degree = overlap_degrees(instance);

        for ep in 0..config.n2 {
            let eps = config.epsilon * (1.0 - ep as f64 / config.n2.max(1) as f64);
            let span = tracer.span("select.episode");
            let epoch_start_utility = iv.utility();
            if tracer.is_enabled() {
                span.record_num("epoch", ep as f64);
                span.record_num("epsilon", eps);
                tracer.metrics().set_gauge("select.epsilon", eps);
            }
            let mut t = 0usize;
            loop {
                let r_prev = iv.utility();
                let phis = featurize_all(instance, &iv, &freq, &degree, t);
                let action = if rng.gen_bool(eps.clamp(0.0, 1.0)) {
                    rng.gen_range(0..nc)
                } else {
                    argmax(&qnet.q_values(&phis))
                };
                let phi_taken = phis[action];
                iv.apply_flip(action);
                let r_next = iv.utility();
                trajectory.push(r_next);
                let reward = r_next - r_prev;
                let next_phis = featurize_all(instance, &iv, &freq, &degree, t + 1);
                memory.push_back(Transition {
                    phi: phi_taken,
                    reward,
                    next_phis,
                });
                while memory.len() > config.memory_size.max(config.batch_size) * 4 {
                    memory.pop_front();
                }

                if r_next > best.0 {
                    best = (r_next, iv.z.clone(), iv.y.clone(), trajectory.len());
                }

                // Fine-tune once the memory is warm (Algorithm 2 line 16).
                if memory.len() >= config.memory_size
                    && t.is_multiple_of(config.train_every.max(1))
                {
                    let bs = config.batch_size.min(memory.len());
                    let picks: Vec<&Transition> = (0..bs)
                        .map(|_| {
                            let i = rng.gen_range(0..memory.len());
                            &memory[i]
                        })
                        .collect();
                    let q_loss = qnet.train_batch(&picks, config.gamma);
                    if tracer.is_enabled() {
                        tracer.metrics().observe("select.q_loss", q_loss);
                    }
                }

                t += 1;
                // Paper line 17: repeat while t < |Z| ∨ r_t > 0.
                let continue_loop = (t < nc || reward > 0.0) && t < config.max_steps_per_epoch;
                if !continue_loop {
                    break;
                }
            }
            if tracer.is_enabled() {
                let episode_reward = iv.utility() - epoch_start_utility;
                span.record_num("steps", t as f64);
                span.record_num("episode_reward", episode_reward);
                let metrics = tracer.metrics();
                metrics.observe("select.episode_reward", episode_reward);
                metrics.set_gauge("select.replay_size", memory.len() as f64);
            }
        }

        let (utility, z, y, best_iteration) = best;
        SelectionResult {
            z,
            y,
            utility,
            trajectory,
            best_iteration,
        }
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

fn overlap_degrees(instance: &MvsInstance) -> Vec<f64> {
    let mut d = vec![0.0; instance.num_candidates()];
    for &(j, k) in &instance.overlaps {
        d[j] += 1.0;
        d[k] += 1.0;
    }
    d
}

/// Per-action features φ(e, a_j) for every candidate j.
fn featurize_all(
    instance: &MvsInstance,
    iv: &IterView<'_>,
    freq: &[f64],
    degree: &[f64],
    t: usize,
) -> Vec<[f32; FEATURE_DIM]> {
    let nc = instance.num_candidates();
    let nq = instance.num_queries().max(1) as f64;
    let o_max = iv.max_overhead().max(1e-9);
    let b_max_total: f64 = (0..nc).map(|j| iv.max_benefit(j)).sum::<f64>().max(1e-9);
    let b_cur_total: f64 = (0..nc).map(|j| iv.realized_benefit(j)).sum();
    let utility = iv.utility();
    let max_net = (0..nc)
        .map(|j| (iv.max_benefit(j) - instance.overheads[j]).abs())
        .fold(1e-9, f64::max);
    let z_frac = iv.z.iter().filter(|&&b| b).count() as f64 / nc.max(1) as f64;

    (0..nc)
        .map(|j| {
            let net = (iv.max_benefit(j) - instance.overheads[j]) / max_net;
            let direction = if iv.z[j] { -net } else { net };
            [
                iv.z[j] as u8 as f32,
                (instance.overheads[j] / o_max) as f32,
                (iv.max_benefit(j) / b_max_total) as f32,
                (iv.realized_benefit(j) / (b_cur_total + 1e-9)) as f32,
                (iv.realized_benefit(j) / (iv.max_benefit(j) + 1e-9)) as f32,
                (degree[j] / nc as f64) as f32,
                (freq[j] / nq) as f32,
                net as f32,
                direction as f32,
                (iv.current_overhead() / o_max) as f32,
                (b_cur_total / b_max_total) as f32,
                z_frac as f32,
                (utility / b_max_total) as f32,
                ((t as f64) / nc as f64).min(1.0) as f32,
                ((instance.overheads[j] / o_max) * z_frac) as f32,
                1.0,
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_instance;

    fn quick_config(seed: u64) -> RlViewConfig {
        RlViewConfig {
            n1: 5,
            n2: 8,
            memory_size: 10,
            batch_size: 8,
            max_steps_per_epoch: 30,
            seed,
            ..RlViewConfig::default()
        }
    }

    #[test]
    fn runs_and_reports_consistent_utility() {
        let m = random_instance(30, 8, 10);
        let r = RlView::run(&m, quick_config(1));
        assert!((m.utility(&r.z, &r.y) - r.utility).abs() < 1e-9);
        assert!(r.trajectory.len() >= 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = random_instance(31, 8, 10);
        let a = RlView::run(&m, quick_config(2));
        let b = RlView::run(&m, quick_config(2));
        assert_eq!(a.z, b.z);
        assert!((a.utility - b.utility).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_is_handled() {
        let m = MvsInstance {
            benefits: vec![],
            overheads: vec![],
            overlaps: vec![],
        };
        let r = RlView::run(&m, quick_config(3));
        assert_eq!(r.utility, 0.0);
        assert!(r.z.is_empty());
    }

    #[test]
    fn beats_or_matches_empty_selection() {
        let m = random_instance(32, 12, 14);
        let r = RlView::run(&m, quick_config(4));
        assert!(r.utility >= 0.0, "best-seen must dominate the empty set");
    }

    #[test]
    fn finds_obvious_single_candidate() {
        // One hugely-profitable candidate among junk: RLView must select it.
        let nc = 6;
        let benefits = vec![
            (0..nc)
                .map(|j| if j == 2 { 100.0 } else { 0.05 })
                .collect::<Vec<f64>>();
            5
        ];
        let overheads = (0..nc).map(|j| if j == 2 { 1.0 } else { 20.0 }).collect();
        let m = MvsInstance {
            benefits,
            overheads,
            overlaps: vec![],
        };
        let r = RlView::run(&m, quick_config(5));
        assert!(r.z[2], "the profitable candidate must be selected");
        assert!(r.utility > 400.0);
    }

    #[test]
    fn late_trajectory_is_more_stable_than_iterview() {
        // The headline claim of Fig. 10: RLView's utility stabilizes while
        // IterView keeps oscillating. Compare tail variance on a contended
        // instance with matched iteration budgets.
        let m = random_instance(33, 16, 20);
        let rl = RlView::run(
            &m,
            RlViewConfig {
                n1: 10,
                n2: 30,
                memory_size: 15,
                batch_size: 16,
                max_steps_per_epoch: 40,
                seed: 6,
                ..RlViewConfig::default()
            },
        );
        let iter = crate::iterview::IterView::new(
            &m,
            crate::iterview::IterViewConfig {
                iterations: rl.trajectory.len(),
                seed: 6,
                freeze_after: None,
            },
        )
        .run();
        let tail_var = |t: &[f64]| {
            let tail = &t[t.len() - t.len() / 4..];
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64
        };
        assert!(
            tail_var(&rl.trajectory) <= tail_var(&iter.trajectory) + 1e-9,
            "RLView tail variance {} vs IterView {}",
            tail_var(&rl.trajectory),
            tail_var(&iter.trajectory)
        );
    }
}
