//! Greedy top-k baselines (paper Section VI-A, after Nectar [10]).

use crate::SelectionResult;
use av_ilp::MvsInstance;

/// Candidate ranking strategy for the top-k baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GreedyRank {
    /// Frequency in the workload: the more queries can use the candidate,
    /// the higher the rank.
    TopkFreq,
    /// Materialization overhead: the bigger the overhead, the lower the rank.
    TopkOver,
    /// Total potential benefit: the bigger, the higher.
    TopkBen,
    /// Ratio of (potential utility) to overhead: the bigger, the higher.
    TopkNorm,
}

impl GreedyRank {
    /// All four strategies, in the paper's order.
    pub const ALL: [GreedyRank; 4] = [
        GreedyRank::TopkFreq,
        GreedyRank::TopkOver,
        GreedyRank::TopkBen,
        GreedyRank::TopkNorm,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            GreedyRank::TopkFreq => "TopkFreq",
            GreedyRank::TopkOver => "TopkOver",
            GreedyRank::TopkBen => "TopkBen",
            GreedyRank::TopkNorm => "TopkNorm",
        }
    }

    /// Candidate order (best first) under this strategy.
    pub fn order(self, instance: &MvsInstance) -> Vec<usize> {
        let nc = instance.num_candidates();
        let score: Vec<f64> = (0..nc)
            .map(|j| match self {
                GreedyRank::TopkFreq => instance
                    .benefits
                    .iter()
                    .filter(|row| row[j] > 0.0)
                    .count() as f64,
                GreedyRank::TopkOver => -instance.overheads[j],
                GreedyRank::TopkBen => instance.max_benefit(j),
                GreedyRank::TopkNorm => {
                    let o = instance.overheads[j].max(1e-12);
                    (instance.max_benefit(j) - instance.overheads[j]) / o
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..nc).collect();
        order.sort_by(|&a, &b| score[b].total_cmp(&score[a]).then(a.cmp(&b)));
        order
    }
}

/// Materialize the top-k candidates under `rank` and solve `Y` exactly.
pub fn greedy_topk(instance: &MvsInstance, rank: GreedyRank, k: usize) -> SelectionResult {
    let order = rank.order(instance);
    let mut z = vec![false; instance.num_candidates()];
    for &j in order.iter().take(k) {
        z[j] = true;
    }
    SelectionResult::from_z(instance, z)
}

/// Utility for every `k ∈ [0, |Z|]` (the curves of the paper's Fig. 9).
/// Returns `(k, utility)` pairs.
pub fn greedy_sweep(instance: &MvsInstance, rank: GreedyRank) -> Vec<(usize, f64)> {
    let order = rank.order(instance);
    let mut z = vec![false; instance.num_candidates()];
    let mut out = Vec::with_capacity(order.len() + 1);
    out.push((0, instance.utility_of_z(&z)));
    for (idx, &j) in order.iter().enumerate() {
        z[j] = true;
        out.push((idx + 1, instance.utility_of_z(&z)));
    }
    out
}

/// Best `k` and its utility under a ranking (the paper's Table IV rows).
pub fn greedy_best(instance: &MvsInstance, rank: GreedyRank) -> (usize, SelectionResult) {
    let sweep = greedy_sweep(instance, rank);
    let (best_k, _) = sweep
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep non-empty");
    (best_k, greedy_topk(instance, rank, best_k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_instance;

    #[test]
    fn k_zero_selects_nothing() {
        let m = random_instance(1, 6, 8);
        let r = greedy_topk(&m, GreedyRank::TopkBen, 0);
        assert_eq!(r.num_materialized(), 0);
        assert_eq!(r.utility, 0.0);
    }

    #[test]
    fn k_counts_match() {
        let m = random_instance(2, 6, 8);
        for k in 0..=8 {
            let r = greedy_topk(&m, GreedyRank::TopkFreq, k);
            assert_eq!(r.num_materialized(), k.min(8));
        }
    }

    #[test]
    fn topkover_prefers_cheap_candidates() {
        let m = MvsInstance {
            benefits: vec![vec![1.0, 1.0, 1.0]],
            overheads: vec![5.0, 1.0, 3.0],
            overlaps: vec![],
        };
        let order = GreedyRank::TopkOver.order(&m);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn topkben_prefers_high_benefit() {
        let m = MvsInstance {
            benefits: vec![vec![1.0, 9.0], vec![1.0, 0.0]],
            overheads: vec![1.0, 1.0],
            overlaps: vec![],
        };
        assert_eq!(GreedyRank::TopkBen.order(&m), vec![1, 0]);
        // but TopkFreq prefers the widely-shared one
        assert_eq!(GreedyRank::TopkFreq.order(&m), vec![0, 1]);
    }

    #[test]
    fn sweep_has_len_z_plus_one_and_starts_at_zero() {
        let m = random_instance(3, 5, 7);
        let s = greedy_sweep(&m, GreedyRank::TopkNorm);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], (0, 0.0));
    }

    #[test]
    fn sweep_rises_then_falls_on_skewed_instance() {
        // A few great candidates, many lousy ones: the utility curve must
        // peak strictly inside (0, |Z|) — the paper's Fig. 9 shape.
        let nc = 10;
        let benefits = vec![(0..nc)
            .map(|j| if j < 3 { 50.0 } else { 0.1 })
            .collect::<Vec<f64>>(); 4];
        let overheads = (0..nc).map(|j| if j < 3 { 1.0 } else { 30.0 }).collect();
        let m = MvsInstance {
            benefits,
            overheads,
            overlaps: vec![],
        };
        let s = greedy_sweep(&m, GreedyRank::TopkNorm);
        let peak = s.iter().max_by(|a, b| a.1.total_cmp(&b.1)).expect("some");
        assert!(peak.0 > 0 && peak.0 < nc);
        assert!(s.last().expect("last").1 < peak.1);
    }

    #[test]
    fn greedy_best_returns_argmax_of_sweep() {
        let m = random_instance(4, 8, 10);
        for rank in GreedyRank::ALL {
            let sweep = greedy_sweep(&m, rank);
            let (k, r) = greedy_best(&m, rank);
            let max_u = sweep
                .iter()
                .map(|&(_, u)| u)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((r.utility - max_u).abs() < 1e-9, "{}: k={k}", rank.name());
        }
    }
}
