//! # av-select — materialized view selection
//!
//! Solvers for the MVS problem (paper Section V), all over the shared
//! [`av_ilp::MvsInstance`] formulation:
//!
//! - [`greedy`]: the four top-k baselines **TopkFreq**, **TopkOver**,
//!   **TopkBen**, **TopkNorm** (Nectar-style ranking heuristics);
//! - [`iterview`]: the paper's iterative optimizer — probabilistic Z-Opt
//!   flips (Eq. 3) alternating with exact per-query Y-Opt;
//! - [`bigsub`]: the BigSub baseline — IterView plus the freeze rule that
//!   forbids unselecting after a threshold iteration (degenerates greedy);
//! - [`rlview`]: **RLView** (Algorithm 2) — the iterative process recast as
//!   an MDP and driven by a DQN with experience replay.
//!
//! Every solver returns a [`SelectionResult`] with the chosen `z`/`y`, the
//! achieved utility, and the per-iteration utility trajectory used by the
//! paper's convergence study (Fig. 10).

#![forbid(unsafe_code)]

pub mod bigsub;
pub mod greedy;
pub mod iterview;
pub mod rlview;

pub use bigsub::{BigSub, BigSubConfig};
pub use greedy::{greedy_best, greedy_sweep, greedy_topk, GreedyRank};
pub use iterview::{IterView, IterViewConfig};
pub use rlview::{RlView, RlViewConfig};

use av_ilp::MvsInstance;

/// Outcome of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Candidates chosen to materialize.
    pub z: Vec<bool>,
    /// Per-query view usage, `y[i][j]`.
    pub y: Vec<Vec<bool>>,
    /// Utility of `(z, y)` — the paper's `U_{Q,V_S}`.
    pub utility: f64,
    /// Utility after each iteration/step, for convergence plots.
    pub trajectory: Vec<f64>,
    /// Iteration (1-based index into `trajectory`) that reached `utility`.
    pub best_iteration: usize,
}

impl SelectionResult {
    /// Build a result from a `z` assignment, solving `Y` exactly.
    pub fn from_z(instance: &MvsInstance, z: Vec<bool>) -> SelectionResult {
        let y = instance.solve_y(&z);
        let utility = instance.utility(&z, &y);
        SelectionResult {
            z,
            y,
            utility,
            trajectory: vec![utility],
            best_iteration: 1,
        }
    }

    /// Number of materialized views.
    pub fn num_materialized(&self) -> usize {
        self.z.iter().filter(|&&b| b).count()
    }

    /// Number of (query, view) rewrite pairs.
    pub fn num_rewrites(&self) -> usize {
        self.y
            .iter()
            .map(|row| row.iter().filter(|&&b| b).count())
            .sum()
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    fn instance() -> MvsInstance {
        MvsInstance {
            benefits: vec![vec![3.0, 0.0], vec![2.0, 4.0]],
            overheads: vec![1.0, 1.5],
            overlaps: vec![],
        }
    }

    #[test]
    fn from_z_solves_y_and_counts() {
        let m = instance();
        let r = SelectionResult::from_z(&m, vec![true, true]);
        assert_eq!(r.num_materialized(), 2);
        assert_eq!(r.num_rewrites(), 3); // q0 uses v0; q1 uses v0 and v1
        assert!((r.utility - (3.0 + 2.0 + 4.0 - 2.5)).abs() < 1e-12);
        assert_eq!(r.trajectory, vec![r.utility]);
        assert_eq!(r.best_iteration, 1);
    }

    #[test]
    fn empty_selection_has_zero_everything() {
        let m = instance();
        let r = SelectionResult::from_z(&m, vec![false, false]);
        assert_eq!(r.num_materialized(), 0);
        assert_eq!(r.num_rewrites(), 0);
        assert_eq!(r.utility, 0.0);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use av_ilp::MvsInstance;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Deterministic random instance with mild sharing and conflicts.
    pub fn random_instance(seed: u64, nq: usize, nc: usize) -> MvsInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let benefits = (0..nq)
            .map(|_| {
                (0..nc)
                    .map(|_| {
                        if rng.gen_bool(0.35) {
                            rng.gen_range(0.5..6.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let overheads = (0..nc).map(|_| rng.gen_range(0.5..8.0)).collect();
        let mut overlaps = Vec::new();
        for j in 0..nc {
            for k in j + 1..nc {
                if rng.gen_bool(0.15) {
                    overlaps.push((j, k));
                }
            }
        }
        MvsInstance {
            benefits,
            overheads,
            overlaps,
        }
    }
}
