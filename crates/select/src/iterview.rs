//! The paper's Function `IterView`: alternating probabilistic Z-Opt and
//! exact Y-Opt (Section V-A2).

use crate::SelectionResult;
use av_ilp::MvsInstance;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Best-seen state during the loop: (utility, z, y, iteration).
type BestState = (f64, Vec<bool>, Vec<Vec<bool>>, usize);

/// Configuration for [`IterView`].
#[derive(Debug, Clone)]
pub struct IterViewConfig {
    /// Number of Z-Opt/Y-Opt iterations (`n` in the paper, `n₁` inside
    /// RLView).
    pub iterations: usize,
    /// RNG seed for the random initialization and flip thresholds.
    pub seed: u64,
    /// BigSub-style freeze: after this iteration, 1→0 flips are forbidden.
    /// `None` (the default) is pure IterView.
    pub freeze_after: Option<usize>,
}

impl Default for IterViewConfig {
    fn default() -> Self {
        IterViewConfig {
            iterations: 100,
            seed: 42,
            freeze_after: None,
        }
    }
}

/// Iterative optimizer state (also the substrate of BigSub and the warm
/// start of RLView).
pub struct IterView<'a> {
    instance: &'a MvsInstance,
    config: IterViewConfig,
    rng: ChaCha8Rng,
    /// `B_max[j]` — benefit if every applicable query used view j.
    b_max: Vec<f64>,
    /// Current assignment.
    pub z: Vec<bool>,
    pub y: Vec<Vec<bool>>,
    /// `B_cur[j]` — realized benefit of view j under current `y`.
    b_cur: Vec<f64>,
    /// `O_cur` — current total overhead.
    o_cur: f64,
    o_max: f64,
    /// Queries each candidate can benefit (`B_ij > 0`), for incremental
    /// Y-Opt: flipping `z_j` only perturbs these rows of `Y`.
    affected: Vec<Vec<usize>>,
}

impl<'a> IterView<'a> {
    /// Initialize `Z` and `Y` randomly (IterView lines 2–9).
    pub fn new(instance: &'a MvsInstance, config: IterViewConfig) -> IterView<'a> {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let nc = instance.num_candidates();
        let nq = instance.num_queries();

        let mut z = vec![false; nc];
        let mut o_cur = 0.0;
        let mut b_max = vec![0.0; nc];
        for j in 0..nc {
            z[j] = rng.gen_bool(0.5);
            if z[j] {
                o_cur += instance.overheads[j];
            }
            b_max[j] = instance.max_benefit(j);
        }

        // Random feasible Y: y_ij may be 1 only when z_j, positive benefit,
        // and no conflict with already-set views of the same query.
        let overlap = overlap_matrix(instance);
        let mut y = vec![vec![false; nc]; nq];
        for (i, row) in y.iter_mut().enumerate() {
            for j in 0..nc {
                let conflict = (0..nc).any(|k| k != j && row[k] && overlap[j][k]);
                if z[j] && instance.benefits[i][j] > 0.0 && !conflict {
                    row[j] = rng.gen_bool(0.5);
                }
            }
        }
        let b_cur = realized_benefits(instance, &y);
        let o_max: f64 = instance.overheads.iter().sum();
        let mut affected = vec![Vec::new(); nc];
        for (i, row) in instance.benefits.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                if b > 0.0 {
                    affected[j].push(i);
                }
            }
        }

        IterView {
            instance,
            config,
            rng,
            b_max,
            z,
            y,
            b_cur,
            o_cur,
            o_max,
            affected,
        }
    }

    /// Current utility `Σ y·B − Σ z·O`.
    pub fn utility(&self) -> f64 {
        let b: f64 = self.b_cur.iter().sum();
        b - self.o_cur
    }

    /// One Z-Opt pass (paper Function Z-Opt): flip each `z_j` whose flip
    /// probability (Eq. 3) reaches the round's random threshold `tau`.
    pub fn z_opt(&mut self, tau: f64, frozen: bool) {
        let b_cur_total: f64 = self.b_cur.iter().sum();
        let b_max_total: f64 = self.b_max.iter().sum();
        for j in 0..self.instance.num_candidates() {
            let o_j = self.instance.overheads[j];
            let p_overhead = if self.z[j] {
                safe_div(o_j, self.o_cur)
            } else {
                1.0 - safe_div(self.o_cur, self.o_max)
            };
            let p_benefit = if self.z[j] {
                1.0 - safe_div(self.b_cur[j], b_cur_total)
            } else {
                safe_div(
                    safe_div(self.b_max[j], o_j),
                    safe_div(b_max_total, self.o_max),
                )
            };
            let p_flip = (p_overhead.clamp(0.0, 1.0)) * (p_benefit.clamp(0.0, 1.0));
            if p_flip >= tau {
                if self.z[j] && frozen {
                    continue; // BigSub freeze: selected stays selected
                }
                self.z[j] = !self.z[j];
                if self.z[j] {
                    self.o_cur += o_j;
                } else {
                    self.o_cur -= o_j;
                }
            }
        }
    }

    /// One Y-Opt pass: exact per-query local ILP given the current `Z`.
    pub fn y_opt(&mut self) {
        self.y = self.instance.solve_y(&self.z);
        // Views that are no longer materialized lose their usages; realized
        // benefits are recomputed from scratch.
        self.b_cur = realized_benefits(self.instance, &self.y);
    }

    /// Flip one specific candidate (the RLView action) and re-solve `Y`
    /// incrementally: only queries with `B_ij > 0` can change their optimal
    /// view set when `z_j` flips, so only those rows are re-solved.
    pub fn apply_flip(&mut self, j: usize) {
        self.z[j] = !self.z[j];
        if self.z[j] {
            self.o_cur += self.instance.overheads[j];
        } else {
            self.o_cur -= self.instance.overheads[j];
        }
        let affected = std::mem::take(&mut self.affected);
        for &i in &affected[j] {
            // Retract the old row's contribution, re-solve, re-apply.
            for (k, &used) in self.y[i].iter().enumerate() {
                if used {
                    self.b_cur[k] -= self.instance.benefits[i][k];
                }
            }
            let row = self.instance.solve_y_for_query(i, &self.z);
            for (k, &used) in row.iter().enumerate() {
                if used {
                    self.b_cur[k] += self.instance.benefits[i][k];
                }
            }
            self.y[i] = row;
        }
        self.affected = affected;
    }

    /// Realized benefit of candidate `j` under current `y`.
    pub fn realized_benefit(&self, j: usize) -> f64 {
        self.b_cur[j]
    }

    /// `B_max[j]`.
    pub fn max_benefit(&self, j: usize) -> f64 {
        self.b_max[j]
    }

    /// Current total overhead.
    pub fn current_overhead(&self) -> f64 {
        self.o_cur
    }

    /// Total overhead of materializing everything.
    pub fn max_overhead(&self) -> f64 {
        self.o_max
    }

    /// Run the full loop (paper IterView lines 10–13), returning the final
    /// state and recording the utility trajectory. The reported `z`/`y` are
    /// the *best seen*, since the raw process oscillates (the observation
    /// motivating RLView).
    pub fn run(self) -> SelectionResult {
        self.run_traced(&av_trace::Tracer::disabled())
    }

    /// [`IterView::run`] with iteration telemetry: one `select.iterview`
    /// span carrying the iteration count and best utility, plus a
    /// `select.iter_utility` histogram of every iteration's utility.
    pub fn run_traced(mut self, tracer: &av_trace::Tracer) -> SelectionResult {
        let span = tracer.span("select.iterview");
        let mut trajectory = Vec::with_capacity(self.config.iterations);
        let mut best: Option<BestState> = None;
        for iter in 0..self.config.iterations {
            let tau: f64 = self.rng.gen_range(0.0..1.0);
            let frozen = self
                .config
                .freeze_after
                .map(|f| iter >= f)
                .unwrap_or(false);
            self.z_opt(tau, frozen);
            self.y_opt();
            let u = self.utility();
            trajectory.push(u);
            if tracer.is_enabled() {
                tracer.metrics().observe("select.iter_utility", u);
            }
            if best.as_ref().map(|(b, ..)| u > *b).unwrap_or(true) {
                best = Some((u, self.z.clone(), self.y.clone(), iter + 1));
            }
        }
        if tracer.is_enabled() {
            span.record_num("iterations", self.config.iterations as f64);
            if let Some((u, _, _, at)) = &best {
                span.record_num("best_utility", *u);
                span.record_num("best_iteration", *at as f64);
            }
        }
        let (utility, z, y, best_iteration) = best.unwrap_or_else(|| {
            let z = vec![false; self.instance.num_candidates()];
            let y = self.instance.solve_y(&z);
            (0.0, z, y, 0)
        });
        SelectionResult {
            z,
            y,
            utility,
            trajectory,
            best_iteration,
        }
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        0.0
    } else {
        a / b
    }
}

fn realized_benefits(instance: &MvsInstance, y: &[Vec<bool>]) -> Vec<f64> {
    let nc = instance.num_candidates();
    let mut b = vec![0.0; nc];
    for (i, row) in y.iter().enumerate() {
        for (j, &used) in row.iter().enumerate() {
            if used {
                b[j] += instance.benefits[i][j];
            }
        }
    }
    b
}

/// Dense overlap matrix helper shared by the selection algorithms.
pub(crate) fn overlap_matrix(instance: &MvsInstance) -> Vec<Vec<bool>> {
    let n = instance.num_candidates();
    let mut m = vec![vec![false; n]; n];
    for &(j, k) in &instance.overlaps {
        m[j][k] = true;
        m[k][j] = true;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_instance;

    #[test]
    fn init_respects_y_constraints() {
        let m = random_instance(10, 12, 16);
        let iv = IterView::new(&m, IterViewConfig::default());
        let overlap = overlap_matrix(&m);
        for (i, row) in iv.y.iter().enumerate() {
            for j in 0..m.num_candidates() {
                if row[j] {
                    assert!(iv.z[j], "y ≤ z violated");
                    assert!(m.benefits[i][j] > 0.0);
                    for k in 0..m.num_candidates() {
                        assert!(!(k != j && row[k] && overlap[j][k]), "overlap violated");
                    }
                }
            }
        }
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let m = random_instance(11, 10, 12);
        let a = IterView::new(&m, IterViewConfig::default()).run();
        let b = IterView::new(&m, IterViewConfig::default()).run();
        assert_eq!(a.z, b.z);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn best_utility_dominates_trajectory() {
        let m = random_instance(12, 10, 12);
        let r = IterView::new(&m, IterViewConfig::default()).run();
        let max_in_traj = r
            .trajectory
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((r.utility - max_in_traj).abs() < 1e-9);
        assert!((m.utility(&r.z, &r.y) - r.utility).abs() < 1e-9);
    }

    #[test]
    fn utility_bookkeeping_matches_instance() {
        let m = random_instance(13, 8, 10);
        let mut iv = IterView::new(&m, IterViewConfig::default());
        iv.y_opt();
        let direct = m.utility(&iv.z, &iv.y);
        assert!((iv.utility() - direct).abs() < 1e-9);
        iv.apply_flip(3);
        let direct = m.utility(&iv.z, &iv.y);
        assert!((iv.utility() - direct).abs() < 1e-9);
    }

    #[test]
    fn oscillation_is_visible_without_freeze() {
        // The raw IterView trajectory on a contended instance should not be
        // monotone — the convergence defect the paper fixes with RLView.
        let m = random_instance(14, 20, 24);
        let r = IterView::new(
            &m,
            IterViewConfig {
                iterations: 60,
                ..IterViewConfig::default()
            },
        )
        .run();
        let drops = r
            .trajectory
            .windows(2)
            .filter(|w| w[1] < w[0] - 1e-9)
            .count();
        assert!(drops > 0, "expected oscillation, trajectory {:?}", r.trajectory);
    }

    #[test]
    fn freeze_prevents_unselecting() {
        let m = random_instance(15, 10, 12);
        let cfg = IterViewConfig {
            iterations: 40,
            freeze_after: Some(0),
            seed: 7,
        };
        let mut iv = IterView::new(&m, cfg);
        let initial: Vec<bool> = iv.z.clone();
        for _ in 0..40 {
            iv.z_opt(0.0, true); // tau 0 → every eligible flip fires
            iv.y_opt();
        }
        for (j, &was_selected) in initial.iter().enumerate() {
            if was_selected {
                assert!(iv.z[j], "frozen candidate {j} was unselected");
            }
        }
    }
}
