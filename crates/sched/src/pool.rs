//! The work-stealing morsel pool.
//!
//! One process-wide set of persistent workers replaces per-query
//! `std::thread::scope` fan-outs. A submitted *job* is a closure over task
//! indices `0..total`; indices are claimed from a single atomic counter, so
//! which thread runs which index is racy, but **what** each index computes
//! and **how results are folded** (by index, on the caller) is not — that is
//! the entire determinism contract, inherited unchanged from the scoped
//! implementation.
//!
//! Scheduling shape: each worker owns a deque; submission pushes one
//! *ticket* per helper round-robin across the deques and wakes parked
//! workers. A worker pops from the back of its own deque (LIFO, cache-warm),
//! then drains the shared injector, then steals from the front of a sibling
//! deque (FIFO, oldest first). A ticket is not a task: it is an invitation
//! to drain the job's claim counter until empty, so a stale ticket for a
//! finished job costs one atomic load. The submitting thread always
//! participates in its own job and blocks on a completion latch — workers
//! being busy can delay a job but never deadlock it.

use crate::task::ErasedTask;
use av_trace::{Clock, MonotonicClock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Log2-bucketed latency histogram size: bucket `i` holds drain latencies in
/// `[2^i, 2^(i+1))` nanoseconds; 40 buckets cover ~18 minutes.
const LAT_BUCKETS: usize = 40;

/// One submitted job: an erased closure plus the claim/completion counters.
struct Job {
    task: ErasedTask,
    /// Next task index to claim. May overshoot `total`; claims at or past
    /// `total` are no-ops.
    next: AtomicUsize,
    /// Completed task count; the job is done when this reaches `total`.
    done: AtomicUsize,
    total: usize,
    /// Set if any task body panicked; the submitter re-panics after the
    /// latch trips so the failure is not swallowed.
    panicked: AtomicBool,
    finished: Mutex<bool>,
    latch: Condvar,
}

impl Job {
    /// Claim and run task indices until the counter is exhausted. Returns
    /// how many tasks this thread executed. Panics in task bodies are
    /// caught and recorded so `done` still reaches `total` — otherwise the
    /// submitter (whose stack owns the closure) could unblock while a
    /// sibling still runs, or never unblock at all.
    fn drain(&self) -> usize {
        let mut ran = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.total {
                break;
            }
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.task.call(i)));
            if outcome.is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            ran += 1;
            if self.done.fetch_add(1, Ordering::SeqCst) + 1 == self.total {
                let mut fin = self.finished.lock().expect("latch poisoned");
                *fin = true;
                self.latch.notify_all();
            }
        }
        ran
    }
}

/// Point-in-time scheduler telemetry, exported through av-trace metrics and
/// the Prometheus endpoint by the serving layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Persistent worker threads owned by the pool.
    pub workers: usize,
    /// Tickets currently queued (injector + all deques).
    pub queue_depth: usize,
    /// Workers currently draining a job.
    pub active_workers: usize,
    /// Tickets taken from a sibling worker's deque.
    pub steals: u64,
    /// Jobs submitted.
    pub jobs: u64,
    /// Tasks (morsels) executed, across workers and submitters.
    pub tasks: u64,
    /// Nanoseconds spent draining jobs, across workers and submitters.
    pub busy_nanos: u64,
    /// Median per-drain latency estimate (log2 histogram midpoint), nanos.
    pub drain_nanos_p50: u64,
    /// p95 per-drain latency estimate, nanos.
    pub drain_nanos_p95: u64,
}

struct Inner {
    /// One deque per worker; `Mutex<VecDeque>` because tickets are coarse
    /// (one per helper, not one per morsel) so contention is negligible.
    deques: Vec<Mutex<VecDeque<Arc<Job>>>>,
    /// Overflow queue drained by any worker when its own deque is empty.
    injector: Mutex<VecDeque<Arc<Job>>>,
    park: Mutex<()>,
    wake: Condvar,
    /// Tickets in `deques` + `injector`; parking gate.
    queued: AtomicUsize,
    shutdown: AtomicBool,
    /// Round-robin cursor for spreading a job's tickets across deques.
    rr: AtomicUsize,
    started: Mutex<Vec<std::thread::JoinHandle<()>>>,
    steals: AtomicU64,
    jobs: AtomicU64,
    tasks: AtomicU64,
    active: AtomicUsize,
    busy_nanos: AtomicU64,
    lat: [AtomicU64; LAT_BUCKETS],
    clock: MonotonicClock,
}

impl Inner {
    /// Pop local (LIFO), else injector, else steal (FIFO) from siblings.
    fn find_work(&self, me: usize) -> Option<Arc<Job>> {
        if let Some(job) = self.deques[me].lock().expect("deque poisoned").pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.steals.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Time one drain and fold it into the busy/latency counters.
    fn timed_drain(&self, job: &Job) {
        let t0 = self.clock.now_nanos();
        let ran = job.drain();
        if ran > 0 {
            let dt = self.clock.now_nanos().saturating_sub(t0);
            self.tasks.fetch_add(ran as u64, Ordering::SeqCst);
            self.busy_nanos.fetch_add(dt, Ordering::SeqCst);
            let bucket = (64 - dt.max(1).leading_zeros() as usize - 1).min(LAT_BUCKETS - 1);
            self.lat[bucket].fetch_add(1, Ordering::SeqCst);
        }
    }

    fn worker_loop(&self, me: usize) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(job) = self.find_work(me) {
                self.active.fetch_add(1, Ordering::SeqCst);
                self.timed_drain(&job);
                self.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            // Park until a submitter posts tickets. `queued` is re-checked
            // under the park lock and submitters bump it *before* taking
            // the lock to notify, so a wakeup can never be lost.
            let guard = self.park.lock().expect("park poisoned");
            if self.queued.load(Ordering::SeqCst) == 0 && !self.shutdown.load(Ordering::SeqCst) {
                drop(self.wake.wait(guard).expect("park poisoned"));
            }
        }
    }

    /// Estimate the `q`-quantile of the drain-latency histogram as the
    /// midpoint of the bucket containing that rank.
    fn lat_quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .lat
            .iter()
            .map(|b| b.load(Ordering::SeqCst))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << i) + (1u64 << i) / 2;
            }
        }
        (1u64 << (LAT_BUCKETS - 1)) * 3 / 2
    }
}

/// A morsel scheduler with a fixed worker count. Use [`Pool::global`] for
/// the process-wide instance; dedicated instances are for tests.
pub struct Pool {
    inner: Arc<Inner>,
    workers: usize,
}

/// Default worker count for the global pool: one per available core, capped
/// to bound stealing fan-out on very wide machines.
pub fn default_workers() -> usize {
    // Cached: `available_parallelism` is a syscall (`sched_getaffinity`),
    // and the serving layer reads this census on every request to split
    // workers across inflight queries.
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

/// The process-wide pool, created (but not yet started) on first use.
/// Worker threads spawn lazily on the first job submission.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_workers()))
}

impl Pool {
    /// A pool with `workers` persistent threads (minimum 1). Threads are
    /// not spawned until the first [`Pool::run`] that needs helpers.
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park: Mutex::new(()),
            wake: Condvar::new(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            started: Mutex::new(Vec::new()),
            steals: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            busy_nanos: AtomicU64::new(0),
            lat: std::array::from_fn(|_| AtomicU64::new(0)),
            clock: MonotonicClock::new(),
        });
        Pool { inner, workers }
    }

    /// Persistent worker threads owned by this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn ensure_started(&self) {
        let mut handles = self.inner.started.lock().expect("start lock poisoned");
        if !handles.is_empty() {
            return;
        }
        for w in 0..self.workers {
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("av-sched-{w}"))
                .spawn(move || inner.worker_loop(w))
                .expect("spawn pool worker");
            handles.push(handle);
        }
    }

    /// Run `total` tasks with up to `dop` participating threads (including
    /// the caller) and block until every task has executed exactly once.
    ///
    /// `f(i)` is invoked once per index in `0..total`; indices are claimed
    /// from one atomic counter so assignment is racy but coverage is exact.
    /// With `dop <= 1` (or a single task) everything runs inline on the
    /// caller in ascending order — byte-for-byte the serial path.
    ///
    /// Panics in `f` are re-raised on the caller *after* all tasks finish,
    /// preserving the borrow-validity invariant of [`crate::task`].
    pub fn run<F>(&self, total: usize, dop: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if total == 0 {
            return;
        }
        let helpers = dop
            .saturating_sub(1)
            .min(self.workers)
            .min(total.saturating_sub(1));
        if helpers == 0 {
            for i in 0..total {
                f(i);
            }
            return;
        }
        self.ensure_started();
        let inner = &self.inner;
        inner.jobs.fetch_add(1, Ordering::SeqCst);
        let job = Arc::new(Job {
            task: ErasedTask::erase(&f),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            total,
            panicked: AtomicBool::new(false),
            finished: Mutex::new(false),
            latch: Condvar::new(),
        });
        // One ticket per helper, spread round-robin so idle workers pick
        // them up without all colliding on one deque.
        let base = inner.rr.fetch_add(helpers, Ordering::SeqCst);
        for k in 0..helpers {
            let target = (base + k) % self.workers;
            inner.deques[target]
                .lock()
                .expect("deque poisoned")
                .push_back(Arc::clone(&job));
        }
        inner.queued.fetch_add(helpers, Ordering::SeqCst);
        // Empty critical section pairs with the re-check in `worker_loop`:
        // `queued` is visible before any parked worker can decide to sleep.
        drop(inner.park.lock().expect("park poisoned"));
        inner.wake.notify_all();

        // The submitter works on its own job too, then blocks on the latch.
        inner.timed_drain(&job);
        let mut fin = job.finished.lock().expect("latch poisoned");
        while !*fin {
            fin = job.latch.wait(fin).expect("latch poisoned");
        }
        drop(fin);
        if job.panicked.load(Ordering::SeqCst) {
            panic!("av-sched: a pooled task panicked (re-raised on submitter)");
        }
    }

    /// Legacy per-job scoped fan-out, kept as the benchmark baseline for
    /// pool-vs-scoped comparisons. Spawns `workers` fresh scoped threads
    /// that claim indices from one counter; the caller does not participate
    /// (matching the pre-pool `map_chunks` shape).
    pub fn run_scoped<F>(total: usize, workers: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if total == 0 {
            return;
        }
        let workers = workers.max(1).min(total);
        if workers == 1 {
            for i in 0..total {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        break;
                    }
                    f(i);
                });
            }
        });
    }

    /// Snapshot the scheduler counters.
    pub fn stats(&self) -> PoolStats {
        let inner = &self.inner;
        PoolStats {
            workers: self.workers,
            queue_depth: inner.queued.load(Ordering::SeqCst),
            active_workers: inner.active.load(Ordering::SeqCst),
            steals: inner.steals.load(Ordering::SeqCst),
            jobs: inner.jobs.load(Ordering::SeqCst),
            tasks: inner.tasks.load(Ordering::SeqCst),
            busy_nanos: inner.busy_nanos.load(Ordering::SeqCst),
            drain_nanos_p50: inner.lat_quantile(0.50),
            drain_nanos_p95: inner.lat_quantile(0.95),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        drop(self.inner.park.lock().expect("park poisoned"));
        self.inner.wake.notify_all();
        let handles = std::mem::take(&mut *self.inner.started.lock().expect("start lock"));
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stale tickets are popped (and discarded) by workers asynchronously
    /// after a job completes; give them a moment before asserting depth 0.
    fn wait_for_drain(pool: &Pool) -> usize {
        for _ in 0..10_000 {
            if pool.stats().queue_depth == 0 {
                return 0;
            }
            std::thread::yield_now();
        }
        pool.stats().queue_depth
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = Pool::new(4);
        for total in [1usize, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            pool.run(total, 4, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "index {i} of {total}");
            }
        }
    }

    #[test]
    fn dop_one_runs_inline_in_order() {
        let pool = Pool::new(4);
        let order = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        pool.run(8, 1, |i| {
            assert_eq!(std::thread::current().id(), caller);
            order.lock().unwrap().push(i);
        });
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
        // No helper tickets were posted, so workers never even started.
        assert_eq!(pool.stats().jobs, 0);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = Pool::new(2);
        pool.run(0, 4, |_| panic!("must not run"));
    }

    #[test]
    fn submitter_panics_after_all_tasks_complete() {
        let pool = Pool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(16, 4, |i| {
                done.fetch_add(1, Ordering::SeqCst);
                if i == 3 {
                    panic!("task 3 fails");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the submitter");
        assert_eq!(done.load(Ordering::SeqCst), 16, "all tasks still ran");
    }

    #[test]
    fn run_scoped_matches_pool_coverage() {
        for total in [1usize, 5, 33] {
            let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            Pool::run_scoped(total, 3, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn stats_count_jobs_and_tasks() {
        let pool = Pool::new(2);
        pool.run(32, 4, |_| {});
        pool.run(32, 4, |_| {});
        let s = pool.stats();
        assert_eq!(s.workers, 2);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.tasks, 64);
        assert_eq!(wait_for_drain(&pool), 0, "no tickets left behind");
    }

    /// Hammer the deques: many submitters race many workers over thousands
    /// of jobs; every task of every job must run exactly once — no lost or
    /// duplicated chunk despite steal-vs-pop races.
    #[test]
    fn hammer_no_lost_or_duplicated_chunks() {
        let pool = Arc::new(Pool::new(4));
        let submitters = 8;
        let rounds = 50;
        std::thread::scope(|s| {
            for t in 0..submitters {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for r in 0..rounds {
                        let total = 1 + (t * 7 + r * 13) % 40;
                        let hits: Vec<AtomicUsize> =
                            (0..total).map(|_| AtomicUsize::new(0)).collect();
                        pool.run(total, 1 + (r % 5), |i| {
                            hits[i].fetch_add(1, Ordering::SeqCst);
                        });
                        for h in &hits {
                            assert_eq!(h.load(Ordering::SeqCst), 1);
                        }
                    }
                });
            }
        });
        assert_eq!(wait_for_drain(&pool), 0, "all tickets consumed");
    }

    /// Stale tickets — a job fully drained by its submitter before any
    /// worker wakes — must be harmless no-ops.
    #[test]
    fn stale_tickets_are_noops() {
        let pool = Pool::new(2);
        for _ in 0..200 {
            let sum = AtomicUsize::new(0);
            pool.run(2, 4, |i| {
                sum.fetch_add(i + 1, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 3);
        }
    }

    #[test]
    fn latency_quantiles_are_monotone() {
        let pool = Pool::new(2);
        for _ in 0..16 {
            pool.run(8, 2, |_| std::hint::black_box(()));
        }
        let s = pool.stats();
        assert!(s.drain_nanos_p95 >= s.drain_nanos_p50);
        assert!(s.busy_nanos > 0);
    }
}
