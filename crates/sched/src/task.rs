//! Lifetime erasure for borrowed morsel jobs.
//!
//! The pool's workers are persistent (`'static`) threads, but the closures
//! submitted by [`crate::Pool::run`] borrow caller stack data — chunk result
//! slots, shared column references, gradient buffers. Bridging the two
//! requires erasing the closure's lifetime, exactly as rayon's and
//! crossbeam's scope internals do. This module is the **only** unsafe code
//! in the crate (the workspace-wide determinism lint pins the allowlist to
//! this file); everything it exposes is safe because the soundness
//! obligation is discharged structurally by the scheduler:
//!
//! **Invariant.** An [`ErasedTask`] created from `&'a dyn Fn(usize)` is only
//! ever *invoked* while the `Pool::run` call that created it is still
//! blocked on the job's completion latch. `run` does not return until
//! `done == total`, and workers never invoke a task after claiming an index
//! `>= total`, so no call can outlive `'a`. Workers may *hold* the dangling
//! pointer inside a stale ticket after the job completes — that is fine;
//! raw pointers are only unsound to dereference, and the claim counter
//! guarantees they never are again.

#![allow(unsafe_code)]

/// A `'static`-erased `&dyn Fn(usize) + Sync` morsel body. See the module
/// docs for the invariant that makes [`ErasedTask::call`] sound.
pub(crate) struct ErasedTask {
    ptr: *const (dyn Fn(usize) + Sync + 'static),
}

// Safety: the referent is `Sync` (shared `&` calls from many threads are
// allowed) and is kept alive by the blocked `Pool::run` caller for as long
// as any call can happen (module invariant above).
unsafe impl Send for ErasedTask {}
unsafe impl Sync for ErasedTask {}

impl ErasedTask {
    /// Erase the borrow's lifetime. Callers inside this crate must uphold
    /// the module invariant: do not return from the submitting frame until
    /// the job's completion latch has tripped.
    pub(crate) fn erase<'a>(f: &'a (dyn Fn(usize) + Sync + 'a)) -> ErasedTask {
        let ptr = f as *const (dyn Fn(usize) + Sync + 'a);
        // Safety: only extends the lifetime marker; validity is enforced by
        // the completion latch (module invariant).
        let ptr = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + 'a),
                *const (dyn Fn(usize) + Sync + 'static),
            >(ptr)
        };
        ErasedTask { ptr }
    }

    /// Invoke the erased closure with a claimed task index.
    pub(crate) fn call(&self, index: usize) {
        // Safety: module invariant — the submitting `Pool::run` frame is
        // still alive, so the referent is too.
        unsafe { (*self.ptr)(index) }
    }
}
