//! av-sched — shared work-stealing morsel scheduler.
//!
//! One process-wide pool of persistent workers replaces the per-query
//! `std::thread::scope` fan-outs that previously burned a spawn/join cycle
//! on every parallel query, minibatch, and dry-run. The design follows the
//! morsel-driven execution model (Leis et al., SIGMOD'14) as specialized by
//! this workspace's determinism contract:
//!
//! - **Tasks are indices, not closures.** A job is one closure over
//!   `0..total`; chunk boundaries are decided by the caller (`CHUNK_ROWS`
//!   in av-engine) and never by the scheduler, so results folded in
//!   ascending index order are bitwise identical at any worker count.
//! - **Submitters participate.** `Pool::run` drains its own claim counter
//!   and blocks on a completion latch, so a saturated pool degrades to
//!   caller-runs-everything instead of deadlocking, and `dop = 1` is
//!   exactly the serial path.
//! - **Elastic degree-of-parallelism.** `dop` is per-job: the serving layer
//!   passes a hint derived from admission-controller inflight counts, so a
//!   lone query fans out while 64 concurrent clients run near-serial
//!   instead of oversubscribing every core 64×.
//!
//! The crate denies unsafe code except for the single lifetime-erasure
//! module ([`task`]) that lets borrowed closures ride on `'static` workers;
//! see that module for the soundness argument. Raw `thread::spawn` /
//! `thread::scope` elsewhere in the workspace libraries is rejected by
//! av-analyze's `raw-spawn` lint — this crate is the allowlisted home for
//! thread creation.

#![deny(unsafe_code)]

mod pool;
mod task;

pub use pool::{default_workers, global, Pool, PoolStats};
