//! Online scenario: the 226-query JOB workload replayed in two shifting
//! phases, streamed through two engines:
//!
//! - **adaptive** — drift detection on, re-selecting views when the window's
//!   candidate cost-mass distribution shifts;
//! - **static** — the same engine with drift detection disabled, so it keeps
//!   the one-shot selection bootstrapped on the first phase.
//!
//! Both pay for their own view materializations; the table reports the
//! cumulative cost each actually spent and the net saving vs. running every
//! query unrewritten. The adaptive engine's metrics snapshot is printed at
//! the end.
//!
//! Deterministic for a fixed seed (`AV_SEED`); scale with `AV_JOB_SCALE`.
//! `--trace-out <path>` dumps the adaptive engine's span tree as
//! chrome://tracing JSON.

use av_bench::{render_table, BenchConfig};
use av_cost::OptimizerEstimator;
use av_engine::Pricing;
use av_online::{DriftConfig, LifecycleConfig, OnlineConfig, OnlineEngine, OnlineSelector};
use av_plan::PlanRef;
use av_select::IterViewConfig;
use av_workload::job::job_workload;

/// Passes over each phase's query list. Phase A streams long enough to
/// bootstrap and settle; phase B long enough for the adaptive engine's
/// re-selection to amortize its new materializations.
const PASSES_PER_PHASE: usize = 2;

fn engine(workload_catalog: &av_engine::Catalog, window: usize, seed: u64, adaptive: bool) -> OnlineEngine {
    OnlineEngine::new(
        workload_catalog.clone(),
        Box::new(OptimizerEstimator::default()),
        OnlineConfig {
            pricing: Pricing::paper_defaults(),
            window_size: window,
            check_every: 16,
            drift: DriftConfig {
                // An infinite threshold never triggers: the static engine
                // keeps whatever the bootstrap selected.
                threshold: if adaptive { 0.3 } else { f64::INFINITY },
                min_queries_between: window as u64 / 2,
            },
            lifecycle: LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            selector: OnlineSelector::IterView(IterViewConfig {
                iterations: 60,
                seed,
                freeze_after: None,
            }),
        },
    )
}

fn stream(eng: &mut OnlineEngine, phases: &[&[PlanRef]]) {
    for phase in phases {
        for _ in 0..PASSES_PER_PHASE {
            for q in *phase {
                eng.ingest(q).expect("query executes");
            }
        }
    }
}

fn main() {
    if cfg!(debug_assertions) {
        av_analyze::install_engine_gate();
    }
    let mut trace_out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(argv.next().expect("--trace-out needs a path")),
            other => panic!("unknown argument {other:?} (expected --trace-out <path>)"),
        }
    }
    let cfg = BenchConfig::from_env();
    let w = job_workload(cfg.job_scale, cfg.seed);
    let plans = w.plans();
    // JOB queries come in template pairs (query 2t, 2t+1), and templates
    // share their reusable subquery through a pool of 24 (edge, filter)
    // combos. Split by combo class — not position — so the two phases have
    // *disjoint* candidate subqueries: a genuine workload shift.
    let mut phase_a: Vec<PlanRef> = Vec::new();
    let mut phase_b: Vec<PlanRef> = Vec::new();
    for (i, p) in plans.iter().enumerate() {
        if (i / 2) % 24 < 12 {
            phase_a.push(p.clone());
        } else {
            phase_b.push(p.clone());
        }
    }
    println!(
        "JOB replay: {} queries, phase A = {} x{PASSES_PER_PHASE}, phase B = {} x{PASSES_PER_PHASE} (seed {})\n",
        plans.len(),
        phase_a.len(),
        phase_b.len(),
        cfg.seed
    );

    let window = phase_a.len().min(phase_b.len());
    let mut adaptive = engine(&w.catalog, window, cfg.seed, true);
    let mut static_ = engine(&w.catalog, window, cfg.seed, false);
    stream(&mut adaptive, &[&phase_a, &phase_b]);
    stream(&mut static_, &[&phase_a, &phase_b]);

    let rows: Vec<Vec<String>> = [("adaptive", &adaptive), ("static", &static_)]
        .into_iter()
        .map(|(name, eng)| {
            let r = eng.report();
            let m = eng.metrics();
            vec![
                name.to_string(),
                format!("{:.4}", r.baseline_cost),
                format!("{:.4}", r.actual_cost),
                format!("{:.4}", r.view_overhead),
                format!("{:.4}", r.net_saving()),
                m.counter("online.views_admitted").to_string(),
                m.counter("online.views_evicted").to_string(),
                m.counter("online.rewrite_hits").to_string(),
                m.counter("online.drift_triggers").to_string(),
                m.counter("online.reopt_runs").to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "engine", "raw $", "paid $", "views $", "net saved $", "admit", "evict", "hits",
                "drifts", "reopts",
            ],
            &rows,
        )
    );

    let gap = adaptive.report().net_saving() - static_.report().net_saving();
    println!("\nadaptive saved {gap:.4} $ more than static one-shot selection");
    assert!(
        gap > 0.0,
        "adaptive must beat static on a phase-shifted workload"
    );

    if let Some(path) = &trace_out {
        let snap = adaptive.tracer().snapshot();
        std::fs::write(path, av_trace::chrome_trace(&snap)).expect("trace written");
        println!(
            "\nwrote {path} ({} spans, {} phases) — open in chrome://tracing",
            snap.spans.len(),
            snap.phase_names().len()
        );
        println!("\nper-phase profile:\n{}", av_trace::profile_tree(&snap));
    }

    println!("\nadaptive metrics snapshot:\n{}", adaptive.metrics_json());
}
