//! Executor micro-benchmark: rows/sec for filter / aggregate micro-ops over
//! JOB-scale tables, comparing the interpreted reference kernels against the
//! default selection-vector + typed-kernel path, plus the plan-result
//! cache's hit-rate and speedup on a full workload replay.
//!
//! The micro tables sit *below* the 16k-row parallel cutover on purpose:
//! that regime gets no help from threading, so whatever the typed kernels
//! buy is exactly what a small-batch query feels. Each micro asserts the
//! two paths produce bitwise-identical batches and execution reports, and
//! the build fails if any optimized micro is slower than its reference —
//! a <1.0x "optimization" can never ship silently.
//!
//! A spawn-overhead section sizes the parallel cutover: the same plan at
//! 8k–64k rows through the serial path, the shared av-sched pool, and the
//! legacy per-batch scoped-spawn backend (parallelism forced on via a zero
//! `min_rows` so the sub-cutover sizes are measured too). On multi-core
//! hosts the pooled path must be profitable (≥1.0x vs serial) from 16k rows
//! up — that is the measurement that justifies lowering `PAR_MIN_ROWS` to
//! 16_384 — and the whole bench fails if it regresses. Single-core hosts
//! report the numbers but skip the gate (parallelism cannot win there).
//! The tracing-overhead budget is also a gate: traced vs untraced over the
//! benched workload must stay under 5%.
//!
//! Writes `BENCH_exec.json` (machine-readable, consumed by CI) next to the
//! working directory and prints the same numbers as a table.
//!
//! Knobs: `AV_JOB_SCALE` (table scale, default 0.05), `AV_EXEC_SCALE`
//! (extra multiplier for the micro tables, default 20 — at the defaults the
//! fact table lands at 12k rows, under the cutover), `AV_EXEC_REPS`
//! (default 20), `AV_EXEC_THREADS` (thread count for the trace/replay
//! sections, default 4), `AV_SEED`.
//!
//! `--trace-out <path>` dumps one traced pass over the benched workload
//! (micro plans + cold replay) as chrome://tracing-compatible JSON. With or
//! without the flag, the report carries the span count and the traced vs.
//! untraced overhead of that workload, plus the replay-only slice.

use av_bench::{render_table, BenchConfig};
use av_engine::{ExecCache, Executor, Pricing};
use av_plan::{AggExpr, AggFunc, CmpOp, Expr, PlanBuilder, PlanRef};
use av_trace::Tracer;
use av_workload::job::job_workload;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct MicroResult {
    op: String,
    /// Input rows driven through the operator per iteration.
    rows: usize,
    /// Interpreted per-row kernels + mask materialization.
    reference_rows_per_sec: f64,
    /// Selection vectors + typed comparison / hoisted aggregate kernels.
    optimized_rows_per_sec: f64,
    /// optimized / reference (>1 means the typed path wins).
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct SpawnResult {
    /// Fact-table rows driven through the plan.
    rows: usize,
    serial_rows_per_sec: f64,
    /// Shared av-sched pool backend.
    pooled_rows_per_sec: f64,
    /// Legacy per-batch scoped-spawn backend.
    scoped_rows_per_sec: f64,
    /// serial time / pooled time (>1: parallelism profitable at this size).
    pooled_speedup: f64,
    /// serial time / scoped time.
    scoped_speedup: f64,
    /// scoped time / pooled time (>1: persistent workers beat fresh spawns).
    pool_vs_scoped: f64,
}

#[derive(Debug, Clone, Serialize)]
struct CacheResult {
    queries: usize,
    cold_seconds: f64,
    warm_seconds: f64,
    hit_rate: f64,
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct TraceResult {
    /// Spans recorded by one traced pass over the benched workload.
    spans: usize,
    /// Best-of-reps wall time of one traced pass (micro plans + cold
    /// replay).
    traced_seconds: f64,
    /// Traced vs. untraced over the full benched workload — the < 5%
    /// acceptance budget applies to this number.
    overhead_pct: f64,
    /// Same comparison restricted to the cold cache replay, the densest
    /// span-per-microsecond slice (tiny queries, ~7 spans each). Expect
    /// this to sit above `overhead_pct`; it is report-only.
    replay_overhead_pct: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ExecBenchReport {
    job_scale: f64,
    exec_scale: f64,
    reps: usize,
    threads: usize,
    /// Serial-fallback cutover: batches under this many rows never go
    /// parallel (see `av_engine::par::PAR_MIN_ROWS`).
    par_min_rows: usize,
    /// Host cores (`available_parallelism`); the spawn gate only applies
    /// when this is > 1.
    cores: usize,
    micro: Vec<MicroResult>,
    spawn: Vec<SpawnResult>,
    cache: CacheResult,
    trace: TraceResult,
}

fn envf(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Interleaved best-of-reps wall times for `plan` under two executors.
/// Alternating rep-by-rep means clock-frequency and allocator drift hits
/// both sides equally; taking each side's minimum rejects shared-core
/// scheduling noise (the minimum is the cleanest observation of the true
/// cost, and both sides get the same number of chances at it).
fn time_pair(a: &Executor<'_>, b: &Executor<'_>, plan: &PlanRef, reps: usize) -> (f64, f64) {
    // One warm-up run each keeps allocator noise out of the first sample.
    a.run(plan).expect("benchmark plan executes");
    b.run(plan).expect("benchmark plan executes");
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        a.run(plan).expect("benchmark plan executes");
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b.run(plan).expect("benchmark plan executes");
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

fn main() {
    // Debug runs schema-verify every executed plan (no-op in release, so
    // measured throughput is unaffected where it matters).
    if cfg!(debug_assertions) {
        av_analyze::install_engine_gate();
    }
    let mut trace_out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(argv.next().expect("--trace-out needs a path")),
            other => panic!("unknown argument {other:?} (expected --trace-out <path>)"),
        }
    }
    let cfg = BenchConfig::from_env();
    let exec_scale = envf("AV_EXEC_SCALE", 20.0);
    let reps = envf("AV_EXEC_REPS", 20.0) as usize;
    let threads = envf("AV_EXEC_THREADS", 4.0) as usize;
    let pricing = Pricing::paper_defaults();

    // Micro tables: the JOB schema scaled up so every batch dwarfs the
    // 1024-row chunk size and per-operator throughput is measurable.
    let micro_w = job_workload(cfg.job_scale * exec_scale, cfg.seed);
    let cast_rows = micro_w
        .catalog
        .table("cast_info")
        .expect("JOB schema")
        .row_count();

    let aggs = || {
        vec![
            AggExpr {
                func: AggFunc::Count,
                input: None,
                output: "n".into(),
            },
            AggExpr {
                func: AggFunc::Sum,
                input: Some("c.production_year".into()),
                output: "s".into(),
            },
            AggExpr {
                func: AggFunc::Min,
                input: Some("c.note".into()),
                output: "lo".into(),
            },
            AggExpr {
                func: AggFunc::Max,
                input: Some("c.note".into()),
                output: "hi".into(),
            },
        ]
    };
    let filter = PlanBuilder::scan("cast_info", "c")
        .filter(Expr::col("c.production_year").cmp(CmpOp::Gt, Expr::int(1990)))
        .build();
    let filter_and = PlanBuilder::scan("cast_info", "c")
        .filter(
            Expr::col("c.production_year")
                .cmp(CmpOp::Gt, Expr::int(1970))
                .and(Expr::col("c.production_year").cmp(CmpOp::Le, Expr::int(2010)))
                .and(Expr::col("c.kind_id").cmp(CmpOp::Lt, Expr::int(5))),
        )
        .build();
    let aggregate = PlanBuilder::scan("cast_info", "c")
        .aggregate(&["c.kind_id"], aggs())
        .build();
    let filter_agg = PlanBuilder::scan("cast_info", "c")
        .filter(Expr::col("c.production_year").cmp(CmpOp::Gt, Expr::int(1990)))
        .aggregate(&["c.kind_id"], aggs())
        .build();

    let micros: Vec<(&str, usize, PlanRef)> = vec![
        ("filter", cast_rows, filter),
        ("filter_and", cast_rows, filter_and),
        ("aggregate", cast_rows, aggregate),
        ("filter_agg", cast_rows, filter_agg),
    ];
    assert!(
        cast_rows < av_engine::par::par_min_rows_default(),
        "micro tables must sit below the parallel cutover ({cast_rows} rows); \
         lower AV_EXEC_SCALE"
    );

    let reference = Executor::new(&micro_w.catalog, pricing)
        .with_threads(1)
        .with_reference_kernels(true);
    let optimized = Executor::new(&micro_w.catalog, pricing).with_threads(1);
    let mut micro = Vec::with_capacity(micros.len());
    for (op, rows, plan) in &micros {
        // Both paths must agree bitwise — batch *and* cost report — before
        // their relative speed means anything.
        let r = reference.run(plan).expect("benchmark plan executes");
        let o = optimized.run(plan).expect("benchmark plan executes");
        assert!(r.batch == o.batch, "{op}: optimized batch diverged");
        assert!(r.report == o.report, "{op}: optimized report diverged");
        let (tr, to) = time_pair(&reference, &optimized, plan, reps);
        micro.push(MicroResult {
            op: op.to_string(),
            rows: *rows,
            reference_rows_per_sec: *rows as f64 / tr,
            optimized_rows_per_sec: *rows as f64 / to,
            speedup: tr / to,
        });
    }

    // Spawn-overhead ladder: one filter+aggregate plan at 8k..64k fact rows,
    // serial vs pooled vs scoped-spawn, parallelism forced on (min_rows 0)
    // so the sub-cutover sizes are measured rather than short-circuited.
    // All three backends must agree bitwise before speed means anything —
    // this is the determinism contract the pool is built around.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cast_base = 12_000.0; // job_workload's cast_info rows at scale 1.0
    let mut spawn = Vec::new();
    for target in [8_192usize, 16_384, 32_768, 65_536] {
        let w = job_workload(target as f64 / cast_base, cfg.seed);
        let rows = w.catalog.table("cast_info").expect("JOB schema").row_count();
        let plan = PlanBuilder::scan("cast_info", "c")
            .filter(Expr::col("c.production_year").cmp(CmpOp::Gt, Expr::int(1990)))
            .aggregate(&["c.kind_id"], aggs())
            .build();
        let serial = Executor::new(&w.catalog, pricing).with_threads(1);
        let pooled = Executor::new(&w.catalog, pricing)
            .with_threads(threads)
            .with_par_min_rows(0)
            .with_par_backend(av_engine::par::ParBackend::Pool);
        let scoped = Executor::new(&w.catalog, pricing)
            .with_threads(threads)
            .with_par_min_rows(0)
            .with_par_backend(av_engine::par::ParBackend::ScopedSpawn);
        let s = serial.run(&plan).expect("benchmark plan executes");
        for (name, exec) in [("pooled", &pooled), ("scoped", &scoped)] {
            let p = exec.run(&plan).expect("benchmark plan executes");
            assert!(s.batch == p.batch, "{name}@{rows}: batch diverged from serial");
            assert!(s.report == p.report, "{name}@{rows}: report diverged from serial");
        }
        let (serial_a, pooled_t) = time_pair(&serial, &pooled, &plan, reps);
        let (serial_b, scoped_t) = time_pair(&serial, &scoped, &plan, reps);
        let serial_t = serial_a.min(serial_b);
        spawn.push(SpawnResult {
            rows,
            serial_rows_per_sec: rows as f64 / serial_t,
            pooled_rows_per_sec: rows as f64 / pooled_t,
            scoped_rows_per_sec: rows as f64 / scoped_t,
            pooled_speedup: serial_t / pooled_t,
            scoped_speedup: serial_t / scoped_t,
            pool_vs_scoped: scoped_t / pooled_t,
        });
    }

    // Cache replay: the full JOB workload cold, then warm. Every plan is
    // distinct, so the warm pass's hit-rate is exactly 1/2 overall.
    let replay_w = job_workload(cfg.job_scale, cfg.seed);
    let plans = replay_w.plans();
    let cache = ExecCache::new(pricing);
    let start = Instant::now();
    for p in &plans {
        cache.run(&replay_w.catalog, p).expect("query executes");
    }
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for p in &plans {
        cache.run(&replay_w.catalog, p).expect("query executes");
    }
    let warm_seconds = start.elapsed().as_secs_f64();
    let stats = cache.stats();
    let cache_result = CacheResult {
        queries: plans.len(),
        cold_seconds,
        warm_seconds,
        hit_rate: stats.hit_rate(),
        speedup: cold_seconds / warm_seconds.max(1e-12),
    };

    // Tracing overhead: one pass over the default benched workload — each
    // micro plan through the serial and parallel executors, then a cold
    // cache replay (fresh cache each pass so every query executes) — with
    // span recording off vs. on, interleaved pass-by-pass so
    // clock-frequency and allocator drift hits both sides equally. The
    // pass runs at *fixed* default scale, independent of the env knobs:
    // the <5% budget is defined over that workload's span density, and a
    // smoke run with shrunken tables would otherwise measure (and gate) a
    // span-heavier mix the budget was never set against. The replay slice
    // is also timed on its own: its queries are microseconds long, so it
    // is the worst case for per-span cost and is reported separately.
    const TRACE_JOB_SCALE: f64 = 0.05;
    const TRACE_EXEC_SCALE: f64 = 20.0;
    let trace_micro_w = job_workload(TRACE_JOB_SCALE * TRACE_EXEC_SCALE, cfg.seed);
    let trace_replay_w = job_workload(TRACE_JOB_SCALE, cfg.seed);
    let trace_plans = trace_replay_w.plans();
    let workload_pass = |tracer: &Tracer| -> (f64, f64) {
        let start = Instant::now();
        let serial = Executor::new(&trace_micro_w.catalog, pricing)
            .with_threads(1)
            .with_tracer(tracer.clone());
        let parallel = Executor::new(&trace_micro_w.catalog, pricing)
            .with_threads(threads)
            .with_tracer(tracer.clone());
        for (_, _, plan) in &micros {
            serial.run(plan).expect("benchmark plan executes");
            parallel.run(plan).expect("benchmark plan executes");
        }
        let cache = ExecCache::new(pricing).with_tracer(tracer.clone());
        let replay_start = Instant::now();
        for p in &trace_plans {
            cache.run(&trace_replay_w.catalog, p).expect("query executes");
        }
        let replay = replay_start.elapsed().as_secs_f64();
        (start.elapsed().as_secs_f64(), replay)
    };
    // Each side is summarized by the mean of its fastest half. Like
    // `time_pair`'s best-of-reps, this rejects the scheduling-stall tail
    // (stalls only ever make a pass slower); unlike a bare minimum it
    // averages several clean passes, so the estimate doesn't ride on which
    // side got the single luckiest draw. Interleaving gives drift (CPU
    // frequency, thermal) equal weight on both sides.
    let best = |samples: &[f64]| -> f64 {
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        let keep = (s.len() / 2).max(1);
        s[..keep].iter().sum::<f64>() / keep as f64
    };
    let off = Tracer::disabled();
    let on = Tracer::new();
    // Run-length floor: the overhead gate needs enough chances at a clean
    // minimum even when a smoke run dials AV_EXEC_REPS down. 25 interleaved
    // pairs ≈ half a second; on a noisy shared box the fastest-half
    // estimator needs that many draws to shake off scheduler spikes.
    let trace_reps = reps.max(25);
    let (mut off_total, mut on_total) = (Vec::new(), Vec::new());
    let (mut off_replay, mut on_replay) = (Vec::new(), Vec::new());
    for _ in 0..trace_reps {
        let (t, r) = workload_pass(&off);
        off_total.push(t);
        off_replay.push(r);
        let (t, r) = workload_pass(&on);
        on_total.push(t);
        on_replay.push(r);
    }
    let traced_seconds = best(&on_total);
    let untraced_seconds = best(&off_total);
    let trace_result = TraceResult {
        spans: on.span_count() / trace_reps,
        traced_seconds,
        overhead_pct: (traced_seconds / untraced_seconds.max(1e-12) - 1.0) * 100.0,
        replay_overhead_pct: (best(&on_replay) / best(&off_replay).max(1e-12) - 1.0) * 100.0,
    };
    if let Some(path) = &trace_out {
        // Dump one clean pass (fresh tracer) rather than the accumulated
        // measurement spans, so the trace opens as a single workload run.
        let dump = Tracer::new();
        workload_pass(&dump);
        let snap = dump.snapshot();
        std::fs::write(path, av_trace::chrome_trace(&snap)).expect("trace written");
        println!("wrote {path} ({} spans) — open in chrome://tracing", snap.spans.len());
    }

    let report = ExecBenchReport {
        job_scale: cfg.job_scale,
        exec_scale,
        reps,
        threads,
        par_min_rows: av_engine::par::par_min_rows_default(),
        cores,
        micro: micro.clone(),
        spawn: spawn.clone(),
        cache: cache_result.clone(),
        trace: trace_result.clone(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_exec.json", &json).expect("BENCH_exec.json written");

    let rows: Vec<Vec<String>> = micro
        .iter()
        .map(|m| {
            vec![
                m.op.clone(),
                m.rows.to_string(),
                format!("{:.0}", m.reference_rows_per_sec),
                format!("{:.0}", m.optimized_rows_per_sec),
                format!("{:.2}x", m.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["op", "rows", "reference rows/s", "optimized rows/s", "speedup"],
            &rows,
        )
    );
    let spawn_rows: Vec<Vec<String>> = spawn
        .iter()
        .map(|s| {
            vec![
                s.rows.to_string(),
                format!("{:.0}", s.serial_rows_per_sec),
                format!("{:.0}", s.pooled_rows_per_sec),
                format!("{:.0}", s.scoped_rows_per_sec),
                format!("{:.2}x", s.pooled_speedup),
                format!("{:.2}x", s.scoped_speedup),
                format!("{:.2}x", s.pool_vs_scoped),
            ]
        })
        .collect();
    println!(
        "\nspawn overhead ({cores} core(s), {threads} threads, cutover {} rows):\n{}",
        av_engine::par::par_min_rows_default(),
        render_table(
            &[
                "rows",
                "serial rows/s",
                "pooled rows/s",
                "scoped rows/s",
                "pooled speedup",
                "scoped speedup",
                "pool vs scoped",
            ],
            &spawn_rows,
        )
    );
    println!(
        "\ncache replay: {} queries, cold {:.3}s, warm {:.3}s ({:.0}x), hit-rate {:.2}",
        cache_result.queries,
        cache_result.cold_seconds,
        cache_result.warm_seconds,
        cache_result.speedup,
        cache_result.hit_rate,
    );
    println!(
        "traced workload: {} spans, {:.3}s ({:+.1}% vs untraced; replay slice {:+.1}%)",
        trace_result.spans,
        trace_result.traced_seconds,
        trace_result.overhead_pct,
        trace_result.replay_overhead_pct,
    );
    println!("\nwrote BENCH_exec.json");

    // Regression gates: an "optimized" path slower than the reference it
    // replaced fails the build outright.
    for m in &micro {
        assert!(
            m.speedup >= 1.0,
            "{}: selection-vector path regressed ({:.2}x vs reference)",
            m.op,
            m.speedup
        );
    }
    assert!(
        cache_result.hit_rate >= 0.49,
        "warm replay must be cache-served"
    );
    assert!(
        cache_result.speedup > 1.0,
        "cache hits must be cheaper than execution"
    );
    // Cutover gate: the shared pool must make parallelism profitable from
    // the 16k-row cutover up — the measurement `PAR_MIN_ROWS = 16_384`
    // rests on. Only meaningful with real cores to win on.
    if cores > 1 {
        for s in spawn.iter().filter(|s| s.rows >= 16_000) {
            assert!(
                s.pooled_speedup >= 1.0,
                "pooled parallelism unprofitable at {} rows ({:.2}x vs serial); \
                 the 16_384-row cutover is no longer justified",
                s.rows,
                s.pooled_speedup
            );
        }
    } else {
        println!("single core: spawn-overhead cutover gate skipped (report-only)");
    }
    // Tracing budget gate: the < 5% acceptance budget is asserted, not
    // just reported.
    assert!(
        trace_result.overhead_pct < 5.0,
        "tracing overhead {:.2}% breaches the 5% budget",
        trace_result.overhead_pct
    );
}
