//! Executor micro-benchmark: rows/sec for scan / filter / join / aggregate
//! over the JOB-scale tables, serial vs. chunked-parallel, plus the
//! plan-result cache's hit-rate and speedup on a full workload replay.
//!
//! Writes `BENCH_exec.json` (machine-readable, consumed by CI) next to the
//! working directory and prints the same numbers as a table.
//!
//! Knobs: `AV_JOB_SCALE` (table scale, default 0.05), `AV_EXEC_SCALE`
//! (extra multiplier for the micro tables, default 20 so batches far exceed
//! the 1024-row parallel chunk), `AV_EXEC_REPS` (default 20),
//! `AV_EXEC_THREADS` (parallel thread count, default 4), `AV_SEED`.

use av_bench::{render_table, BenchConfig};
use av_engine::{ExecCache, Executor, Pricing};
use av_plan::{AggExpr, AggFunc, CmpOp, Expr, PlanBuilder, PlanRef};
use av_workload::job::job_workload;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct MicroResult {
    op: String,
    /// Input rows driven through the operator per iteration.
    rows: usize,
    serial_rows_per_sec: f64,
    parallel_rows_per_sec: f64,
    /// parallel / serial (>1 means the chunked path wins).
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct CacheResult {
    queries: usize,
    cold_seconds: f64,
    warm_seconds: f64,
    hit_rate: f64,
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ExecBenchReport {
    job_scale: f64,
    exec_scale: f64,
    reps: usize,
    threads: usize,
    micro: Vec<MicroResult>,
    cache: CacheResult,
}

fn envf(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median-of-runs wall time for `reps` executions of `plan`.
fn time_plan(exec: &Executor<'_>, plan: &PlanRef, reps: usize) -> f64 {
    // One warm-up run keeps allocator noise out of the first sample.
    exec.run(plan).expect("benchmark plan executes");
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            exec.run(plan).expect("benchmark plan executes");
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    // Debug runs schema-verify every executed plan (no-op in release, so
    // measured throughput is unaffected where it matters).
    if cfg!(debug_assertions) {
        av_analyze::install_engine_gate();
    }
    let cfg = BenchConfig::from_env();
    let exec_scale = envf("AV_EXEC_SCALE", 20.0);
    let reps = envf("AV_EXEC_REPS", 20.0) as usize;
    let threads = envf("AV_EXEC_THREADS", 4.0) as usize;
    let pricing = Pricing::paper_defaults();

    // Micro tables: the JOB schema scaled up so every batch dwarfs the
    // 1024-row chunk size and per-operator throughput is measurable.
    let micro_w = job_workload(cfg.job_scale * exec_scale, cfg.seed);
    let cast_rows = micro_w
        .catalog
        .table("cast_info")
        .expect("JOB schema")
        .row_count();
    let title_rows = micro_w
        .catalog
        .table("title")
        .expect("JOB schema")
        .row_count();

    let scan = PlanBuilder::scan("cast_info", "c").build();
    let filter = PlanBuilder::scan("cast_info", "c")
        .filter(Expr::col("c.production_year").cmp(CmpOp::Gt, Expr::int(1990)))
        .build();
    let join = PlanBuilder::scan("cast_info", "c")
        .join(PlanBuilder::scan("title", "t"), &[("c.movie_id", "t.id")])
        .build();
    let aggregate = PlanBuilder::scan("cast_info", "c")
        .aggregate(
            &["c.kind_id"],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    input: None,
                    output: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    input: Some("c.production_year".into()),
                    output: "s".into(),
                },
                AggExpr {
                    func: AggFunc::Min,
                    input: Some("c.note".into()),
                    output: "lo".into(),
                },
                AggExpr {
                    func: AggFunc::Max,
                    input: Some("c.note".into()),
                    output: "hi".into(),
                },
            ],
        )
        .build();

    let micros: Vec<(&str, usize, PlanRef)> = vec![
        ("scan", cast_rows, scan),
        ("filter", cast_rows, filter),
        ("join", cast_rows + title_rows, join),
        ("aggregate", cast_rows, aggregate),
    ];

    let serial = Executor::new(&micro_w.catalog, pricing).with_threads(1);
    let parallel = Executor::new(&micro_w.catalog, pricing).with_threads(threads);
    let mut micro = Vec::with_capacity(micros.len());
    for (op, rows, plan) in &micros {
        let ts = time_plan(&serial, plan, reps);
        let tp = time_plan(&parallel, plan, reps);
        micro.push(MicroResult {
            op: op.to_string(),
            rows: *rows,
            serial_rows_per_sec: *rows as f64 / ts,
            parallel_rows_per_sec: *rows as f64 / tp,
            speedup: ts / tp,
        });
    }

    // Cache replay: the full JOB workload cold, then warm. Every plan is
    // distinct, so the warm pass's hit-rate is exactly 1/2 overall.
    let replay_w = job_workload(cfg.job_scale, cfg.seed);
    let plans = replay_w.plans();
    let cache = ExecCache::new(pricing);
    let start = Instant::now();
    for p in &plans {
        cache.run(&replay_w.catalog, p).expect("query executes");
    }
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for p in &plans {
        cache.run(&replay_w.catalog, p).expect("query executes");
    }
    let warm_seconds = start.elapsed().as_secs_f64();
    let stats = cache.stats();
    let cache_result = CacheResult {
        queries: plans.len(),
        cold_seconds,
        warm_seconds,
        hit_rate: stats.hit_rate(),
        speedup: cold_seconds / warm_seconds.max(1e-12),
    };

    let report = ExecBenchReport {
        job_scale: cfg.job_scale,
        exec_scale,
        reps,
        threads,
        micro: micro.clone(),
        cache: cache_result.clone(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_exec.json", &json).expect("BENCH_exec.json written");

    let rows: Vec<Vec<String>> = micro
        .iter()
        .map(|m| {
            vec![
                m.op.clone(),
                m.rows.to_string(),
                format!("{:.0}", m.serial_rows_per_sec),
                format!("{:.0}", m.parallel_rows_per_sec),
                format!("{:.2}x", m.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["op", "rows", "serial rows/s", "par rows/s", "par speedup"],
            &rows,
        )
    );
    println!(
        "\ncache replay: {} queries, cold {:.3}s, warm {:.3}s ({:.0}x), hit-rate {:.2}",
        cache_result.queries,
        cache_result.cold_seconds,
        cache_result.warm_seconds,
        cache_result.speedup,
        cache_result.hit_rate,
    );
    println!("\nwrote BENCH_exec.json");

    assert!(
        cache_result.hit_rate >= 0.49,
        "warm replay must be cache-served"
    );
    assert!(
        cache_result.speedup > 1.0,
        "cache hits must be cheaper than execution"
    );
}
