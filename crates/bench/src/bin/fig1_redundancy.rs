//! Fig. 1 — redundant computation across projects.
//!
//! (a) total vs redundant query counts for the first six projects of the
//! cloud workload; (b) cumulative redundant percentage as projects
//! accumulate.

use av_bench::{render_table, BenchConfig};
use av_workload::{cloud, project_redundancy};

fn main() {
    let cfg = BenchConfig::from_env();
    let workload = cloud::wk1(cfg.wk1_scale, cfg.seed);
    let report = project_redundancy(&workload);

    println!("== Fig. 1(a): total vs redundant queries per project ==\n");
    let rows: Vec<Vec<String>> = report
        .per_project
        .iter()
        .take(6)
        .map(|&(p, total, red)| {
            vec![
                format!("P{}", p + 1),
                total.to_string(),
                red.to_string(),
                format!("{:.1}%", 100.0 * red as f64 / total.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["project", "total", "redundant", "ratio"], &rows)
    );

    println!("== Fig. 1(b): cumulative redundant percentage ==\n");
    let rows: Vec<Vec<String>> = report
        .cumulative_percent
        .iter()
        .enumerate()
        .step_by(4)
        .map(|(k, pct)| vec![format!("{} projects", k + 1), format!("{pct:.1}%")])
        .collect();
    println!("{}", render_table(&["after", "cumulative redundant"], &rows));
}
