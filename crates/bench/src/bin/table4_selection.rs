//! Table IV — best utility per view-selection method: the four greedy
//! rankings, BigSub, RLView, and the exact OPT (JOB only; the ILP blows up
//! at WK scale, matching the paper's report).
//!
//! The ratio column is `U_max / Σ A(q)` — the fraction of the raw workload
//! cost the views save.

use av_bench::{render_table, setup_experiment, BenchConfig};
use av_core::{table2_defaults, WorkloadKind};
use av_select::{greedy_best, BigSub, BigSubConfig, GreedyRank, RlView};

fn main() {
    let cfg = BenchConfig::from_env();
    let mut rows = Vec::new();
    for (which, kind) in [
        ("job", WorkloadKind::Job),
        ("wk1", WorkloadKind::Wk1),
        ("wk2", WorkloadKind::Wk2),
    ] {
        let exp = setup_experiment(which, &cfg, usize::MAX);
        let total_cost: f64 = exp.pre.query_costs.iter().sum();
        let defaults = table2_defaults(kind);
        let mut push = |method: &str, k: String, utility: f64| {
            rows.push(vec![
                which.to_uppercase(),
                method.to_string(),
                k,
                format!("{utility:.4}"),
                format!("{:.2}", 100.0 * utility / total_cost),
            ]);
        };

        let mut best_z: Option<(f64, Vec<bool>)> = None;
        let mut note_best = |utility: f64, z: &[bool]| {
            if best_z.as_ref().map(|(u, _)| utility > *u).unwrap_or(true) {
                best_z = Some((utility, z.to_vec()));
            }
        };

        for rank in GreedyRank::ALL {
            let (k, r) = greedy_best(&exp.actual, rank);
            note_best(r.utility, &r.z);
            push(rank.name(), k.to_string(), r.utility);
        }

        let bigsub = BigSub::run(
            &exp.actual,
            BigSubConfig {
                iterations: defaults.n1 + scaled(defaults.n2, cfg.epoch_scale),
                seed: cfg.seed,
                ..BigSubConfig::default()
            },
        );
        note_best(bigsub.utility, &bigsub.z);
        push("BigSub", bigsub.best_iteration.to_string(), bigsub.utility);

        // Small instances get the paper's full RL budget (n₂ is cheap when
        // |Z| is around 100); big ones use the scaled budget.
        let rl_scale = if exp.actual.num_candidates() <= 150 {
            1.0
        } else {
            cfg.epoch_scale
        };
        let rl = RlView::run(&exp.actual, defaults.rlview(cfg.seed, rl_scale));
        note_best(rl.utility, &rl.z);
        push("RLView", rl.best_iteration.to_string(), rl.utility);

        if which == "job" {
            // Warm-start the branch and bound with the best heuristic so a
            // budget-capped OPT still upper-bounds every method.
            let warm = best_z.as_ref().map(|(_, z)| z.as_slice());
            let (opt, proven) = exp.actual.solve_exact_from(2_000_000, warm);
            push(
                if proven { "OPT" } else { "OPT(budget)" },
                "-".into(),
                opt.utility,
            );
        }
    }
    println!("== Table IV: optimal results per view-selection method ==\n");
    println!(
        "{}",
        render_table(
            &["workload", "method", "k/iter", "utility ($)", "ratio (%)"],
            &rows
        )
    );
    println!(
        "Expected shape (paper Table IV): iteration-based methods beat greedy;\n\
         RLView beats BigSub; OPT (JOB only) bounds everything from above."
    );
}

fn scaled(n: usize, s: f64) -> usize {
    ((n as f64 * s) as usize).max(5)
}
