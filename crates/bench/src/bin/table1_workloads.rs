//! Table I — workload statistics (projects, tables, queries, subqueries,
//! equivalent pairs, candidates |Z|, associated queries |Q|, overlaps).

use av_bench::{build_workload, render_table, BenchConfig};
use av_workload::workload_stats;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "== Table I: workload datasets (JOB scale {}, WK1 {}, WK2 {}) ==\n",
        cfg.job_scale, cfg.wk1_scale, cfg.wk2_scale
    );
    let mut rows = Vec::new();
    for which in ["job", "wk1", "wk2"] {
        let w = build_workload(which, &cfg);
        let s = workload_stats(&w);
        rows.push(vec![
            s.name.clone(),
            format!("{}/{}", s.projects, s.tables),
            format!("{}/{}", s.queries, s.subqueries),
            s.equivalent_pairs.to_string(),
            s.candidate_subqueries.to_string(),
            s.associated_queries.to_string(),
            s.overlapping_pairs.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "#proj/#table",
                "#query/#subq",
                "#equiv pairs",
                "|Z|",
                "|Q|",
                "#overlap",
            ],
            &rows
        )
    );
}
