//! Fig. 9 — utility-vs-k curves for the four greedy top-k selectors
//! (TopkFreq, TopkOver, TopkBen, TopkNorm) on each workload.
//!
//! The expected shape: curves rise while profitable candidates remain, peak
//! strictly inside (0, |Z|), then fall as overhead dominates.

use av_bench::{render_table, setup_experiment, BenchConfig};
use av_select::{greedy_sweep, GreedyRank};

fn main() {
    let cfg = BenchConfig::from_env();
    for which in ["job", "wk1", "wk2"] {
        let exp = setup_experiment(which, &cfg, usize::MAX);
        let nc = exp.actual.num_candidates();
        println!(
            "== Fig. 9 ({}): utility ($) vs k, |Z| = {nc} ==\n",
            which.to_uppercase()
        );
        let sweeps: Vec<(GreedyRank, Vec<(usize, f64)>)> = GreedyRank::ALL
            .iter()
            .map(|&r| (r, greedy_sweep(&exp.actual, r)))
            .collect();

        // Sample ~12 k values across the range for a readable table.
        let step = (nc / 12).max(1);
        let mut rows = Vec::new();
        for k in (0..=nc).step_by(step) {
            let mut row = vec![k.to_string()];
            for (_, sweep) in &sweeps {
                row.push(format!("{:.4}", sweep[k].1));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &["k", "TopkFreq", "TopkOver", "TopkBen", "TopkNorm"],
                &rows
            )
        );
        for (rank, sweep) in &sweeps {
            let peak = sweep
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty sweep");
            println!(
                "{:10} peaks at k = {} with utility ${:.4}",
                rank.name(),
                peak.0,
                peak.1
            );
        }
        println!();
    }
}
