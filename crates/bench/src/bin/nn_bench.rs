//! NN compute-path benchmark: SIMD lane kernels vs the naive baseline,
//! Wide-Deep epoch time on the arena/parallel trainer vs the seed-style
//! reference trainer, and benefit-matrix construction cold vs memoized.
//!
//! Writes `BENCH_nn.json` (machine-readable, consumed by CI) into the
//! working directory and prints the same numbers as tables.
//!
//! Knobs: `AV_NN_QUERIES` (default 226) and `AV_NN_VIEWS` (default 28)
//! size the benefit matrix like the paper's IMDb workload; `AV_NN_EPOCHS`
//! (default 8) and `AV_NN_TRAIN` (default 96) size the training run;
//! `AV_NN_REPS` (default 5) sets kernel timing repetitions;
//! `AV_NN_EPOCH_REPS` (default 3) sets trainer repetitions (best-of);
//! `AV_NN_THREADS` (default 0 = auto) sets trainer workers.
//!
//! `--trace-out <path>` dumps one traced training + batched-inference pass
//! (`cost.epoch`, `cost.grad_reduce`, `cost.forward_batch`,
//! `cost.encode_cache` spans) as chrome://tracing JSON.

use av_cost::widedeep::{WideDeep, WideDeepConfig};
use av_cost::{FeatureInput, TableMeta};
use av_nn::Tensor;
use av_plan::{CmpOp, Expr, PlanBuilder, PlanRef};
use av_trace::Tracer;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct KernelResult {
    m: usize,
    k: usize,
    n: usize,
    naive_gflops: f64,
    simd_gflops: f64,
    /// naive / SIMD wall-time ratio (>1 means the SIMD kernel wins). CI
    /// fails if this ever drops below 1.0 — a regression gate, so a <1.0×
    /// "optimization" can never ship silently again.
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct EpochResult {
    train_samples: usize,
    epochs: usize,
    /// Worker threads the parallel run resolved to.
    threads: usize,
    /// Seed-style path: fresh graph per sample, features re-derived per use.
    reference_epoch_seconds: f64,
    /// Arena graphs + one-time sample preparation, single worker.
    arena_serial_epoch_seconds: f64,
    /// Same, fanned across `threads` workers (bitwise-identical result).
    arena_parallel_epoch_seconds: f64,
    speedup_serial: f64,
    speedup_parallel: f64,
}

#[derive(Debug, Clone, Serialize)]
struct MatrixResult {
    queries: usize,
    views: usize,
    pairs: usize,
    /// Per-pair whole-graph forwards (the seed inference path).
    cold_seconds: f64,
    /// `predict_batch` with an empty encoder cache (includes all encodes).
    memoized_seconds: f64,
    /// `predict_batch` again with the cache fully warm.
    warm_seconds: f64,
    /// cold / memoized.
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Debug, Clone, Serialize)]
struct NnBenchReport {
    kernel: Vec<KernelResult>,
    epoch: EpochResult,
    matrix: MatrixResult,
}

fn envu(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One distinct view plan per `k`.
fn view_plan(k: i64) -> PlanRef {
    PlanBuilder::scan("ev", "t")
        .filter(Expr::col("t.kind").eq(Expr::int(k)))
        .project(&[("t.uid", "t.uid"), ("t.v", "t.v")])
        .build()
}

/// One distinct query plan per `(base view, i)`.
fn query_plan(base: &PlanRef, i: i64) -> PlanRef {
    PlanBuilder::from_plan(base.clone())
        .filter(Expr::col("t.v").cmp(CmpOp::Gt, Expr::int(i)))
        .count_star(&["t.uid"], "n")
        .build()
}

fn tables(rows: f64) -> Vec<TableMeta> {
    vec![TableMeta {
        name: "ev".into(),
        rows,
        columns: 3.0,
        bytes: rows * 24.0,
        avg_distinct_ratio: 0.4,
        column_names: vec!["uid".into(), "kind".into(), "v".into()],
        column_types: vec!["Int".into(), "Int".into(), "Int".into()],
    }]
}

fn rand_tensor(rng: &mut ChaCha8Rng, rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

fn bench_kernels(reps: usize) -> Vec<KernelResult> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // 64..256 are L1/L2-resident; 512 and 1024 spill to L2/L3 so the
    // GFLOP/s claims survive contact with real working sets.
    let shapes = [
        (64, 64, 64),
        (128, 128, 128),
        (256, 128, 256),
        (512, 512, 512),
        (1024, 1024, 1024),
    ];
    let mut out = Vec::with_capacity(shapes.len());
    for &(m, k, n) in &shapes {
        let a = rand_tensor(&mut rng, m, k);
        let b = rand_tensor(&mut rng, k, n);
        let mut simd = Tensor::zeros(m, n);
        // Correctness first: the SIMD kernel must match the scalar fma
        // reference bitwise (the fixed-order reduction contract).
        a.matmul_into(&b, &mut simd);
        assert_eq!(
            a.matmul_reference(&b),
            simd,
            "SIMD kernel must match the scalar fma reference bitwise"
        );
        let flops = 2.0 * (m * k * n) as f64;
        // Interleaved best-of-reps: load noise on a shared core only ever
        // slows a run down, so the minimum is the most faithful estimate,
        // and interleaving keeps slow phases from biasing one kernel.
        let mut tn = f64::INFINITY;
        let mut tb = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let _ = a.matmul_naive(&b);
            tn = tn.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            a.matmul_into(&b, &mut simd);
            tb = tb.min(start.elapsed().as_secs_f64());
        }
        out.push(KernelResult {
            m,
            k,
            n,
            naive_gflops: flops / tn / 1e9,
            simd_gflops: flops / tb / 1e9,
            speedup: tn / tb,
        });
    }
    out
}

fn main() {
    let mut trace_out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(argv.next().expect("--trace-out needs a path")),
            other => panic!("unknown argument {other:?} (expected --trace-out <path>)"),
        }
    }
    let queries = envu("AV_NN_QUERIES", 226);
    let views = envu("AV_NN_VIEWS", 28);
    let train_n = envu("AV_NN_TRAIN", 96);
    let epochs = envu("AV_NN_EPOCHS", 8);
    let reps = envu("AV_NN_REPS", 5).max(1);
    let threads = envu("AV_NN_THREADS", 0);

    // ---- kernels -----------------------------------------------------------
    let kernel = bench_kernels(reps);

    // ---- workload: Q distinct queries × V distinct candidate views ---------
    let view_plans: Vec<PlanRef> = (0..views as i64).map(view_plan).collect();
    let query_plans: Vec<PlanRef> = (0..queries as i64)
        .map(|i| query_plan(&view_plans[(i as usize) % views], i))
        .collect();
    let train: Vec<(FeatureInput, f64)> = (0..train_n)
        .map(|i| {
            let rows = 100.0 * (1 + i % 10) as f64;
            let input = FeatureInput {
                query: query_plans[i % queries].clone(),
                view: view_plans[i % views].clone(),
                tables: tables(rows),
            };
            let y = (1.0 + rows).ln() * (1.0 + 0.01 * (i % views) as f64);
            (input, y)
        })
        .collect();

    let config = WideDeepConfig {
        epochs,
        threads,
        ..WideDeepConfig::default()
    };

    // ---- epoch time: seed-style reference vs arena serial vs parallel ------
    // The three variants are interleaved and each keeps its best-of-reps
    // (minimum) time: machine-load noise only ever slows a run down, so the
    // minimum is the most faithful estimate of each path's true cost, and
    // interleaving keeps slow phases from biasing one variant.
    let epoch_reps = envu("AV_NN_EPOCH_REPS", 3).max(1);
    let serial_cfg = WideDeepConfig { threads: 1, ..config.clone() };
    let mut reference = f64::INFINITY;
    let mut arena_serial = f64::INFINITY;
    let mut arena_parallel = f64::INFINITY;
    let mut model = None;
    for _ in 0..epoch_reps {
        let start = Instant::now();
        let _ = WideDeep::fit_reference(&train, config.clone());
        reference = reference.min(start.elapsed().as_secs_f64() / epochs as f64);

        let start = Instant::now();
        let _ = WideDeep::fit(&train, serial_cfg.clone());
        arena_serial = arena_serial.min(start.elapsed().as_secs_f64() / epochs as f64);

        let start = Instant::now();
        model = Some(WideDeep::fit(&train, config.clone()));
        arena_parallel = arena_parallel.min(start.elapsed().as_secs_f64() / epochs as f64);
    }
    let model = model.expect("at least one rep");

    let resolved_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);

    let epoch = EpochResult {
        train_samples: train.len(),
        epochs,
        threads: if threads > 0 { threads } else { resolved_threads },
        reference_epoch_seconds: reference,
        arena_serial_epoch_seconds: arena_serial,
        arena_parallel_epoch_seconds: arena_parallel,
        speedup_serial: reference / arena_serial,
        speedup_parallel: reference / arena_parallel,
    };

    // ---- benefit matrix: per-pair whole graphs vs memoized batch -----------
    let inputs: Vec<FeatureInput> = query_plans
        .iter()
        .flat_map(|q| {
            view_plans.iter().map(|v| FeatureInput {
                query: q.clone(),
                view: v.clone(),
                tables: tables(500.0),
            })
        })
        .collect();

    let start = Instant::now();
    let cold: Vec<f64> = inputs.iter().map(|i| model.estimate_uncached(i)).collect();
    let cold_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let memoized = model.predict_batch(&inputs);
    let memoized_seconds = start.elapsed().as_secs_f64();
    let (hits, misses) = model.encode_cache_stats();

    let start = Instant::now();
    let warm = model.predict_batch(&inputs);
    let warm_seconds = start.elapsed().as_secs_f64();

    // The fast path must agree with the seed path bitwise, pair by pair.
    for ((c, m), w) in cold.iter().zip(&memoized).zip(&warm) {
        assert_eq!(c.to_bits(), m.to_bits(), "memoized != cold estimate");
        assert_eq!(c.to_bits(), w.to_bits(), "warm != cold estimate");
    }

    let matrix = MatrixResult {
        queries,
        views,
        pairs: inputs.len(),
        cold_seconds,
        memoized_seconds,
        warm_seconds,
        speedup: cold_seconds / memoized_seconds.max(1e-12),
        cache_hits: hits,
        cache_misses: misses,
    };

    if let Some(path) = &trace_out {
        let tracer = Tracer::new();
        let traced = WideDeep::fit_with_tracer(&train, config, &tracer)
            .0
            .with_tracer(tracer.clone());
        let _ = traced.predict_batch(&inputs[..inputs.len().min(64)]);
        let snap = tracer.snapshot();
        std::fs::write(path, av_trace::chrome_trace(&snap)).expect("trace written");
        println!("wrote {path} ({} spans) — open in chrome://tracing", snap.spans.len());
    }

    let report = NnBenchReport {
        kernel: kernel.clone(),
        epoch: epoch.clone(),
        matrix: matrix.clone(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_nn.json", &json).expect("BENCH_nn.json written");

    let rows: Vec<Vec<String>> = kernel
        .iter()
        .map(|k| {
            vec![
                format!("{}x{}x{}", k.m, k.k, k.n),
                format!("{:.2}", k.naive_gflops),
                format!("{:.2}", k.simd_gflops),
                format!("{:.2}x", k.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        av_bench::render_table(&["matmul", "naive GFLOP/s", "SIMD GFLOP/s", "speedup"], &rows)
    );
    println!(
        "\nepoch ({} samples, {} epochs): reference {:.3}s, arena serial {:.3}s ({:.2}x), parallel x{} {:.3}s ({:.2}x)",
        epoch.train_samples,
        epoch.epochs,
        epoch.reference_epoch_seconds,
        epoch.arena_serial_epoch_seconds,
        epoch.speedup_serial,
        epoch.threads,
        epoch.arena_parallel_epoch_seconds,
        epoch.speedup_parallel,
    );
    println!(
        "benefit matrix ({}x{} = {} pairs): cold {:.3}s, memoized {:.3}s ({:.2}x), warm {:.3}s; cache {} hits / {} misses",
        matrix.queries,
        matrix.views,
        matrix.pairs,
        matrix.cold_seconds,
        matrix.memoized_seconds,
        matrix.speedup,
        matrix.warm_seconds,
        matrix.cache_hits,
        matrix.cache_misses,
    );
    println!("\nwrote BENCH_nn.json");

    // Regression gate: every kernel shape must win, every time. This is
    // what lets CI catch a <1.0x "optimization" before it ships.
    for k in &kernel {
        assert!(
            k.speedup >= 1.0,
            "kernel regression: {}x{}x{} SIMD speedup {:.3}x < 1.0x",
            k.m,
            k.k,
            k.n,
            k.speedup
        );
    }
    assert!(
        epoch.speedup_serial > 1.0 || epoch.speedup_parallel > 1.0,
        "arena trainer must beat the reference path"
    );
    assert!(
        matrix.speedup > 1.0,
        "memoized benefit matrix must beat per-pair forwards"
    );
    assert!(
        matrix.cache_misses <= (queries + views) as u64,
        "each distinct plan should be encoded at most once"
    );
}
