//! Span-cost probe: isolates av-trace's per-span overhead two ways.
//!
//! 1. **Hot micro loop** — open/attr/close the same span shape 100k times
//!    on one tracer. This is the lower bound: everything stays in cache
//!    and the clock's vDSO path is hot.
//! 2. **In-context replay** — the JOB workload replayed cold through
//!    `ExecCache` with tracing off vs. on, interleaved, median-of-60.
//!    Replay queries are tens of microseconds with ~7 spans each, so this
//!    is the densest realistic span rate; the per-span delta here runs
//!    2–3× the hot-loop figure (cold clock/cache effects).
//!
//! `exec_bench` owns the acceptance-budget measurement (< 5% over its
//! whole workload); this binary exists to attribute regressions when that
//! number moves. Knobs: `AV_JOB_SCALE`, `AV_SEED` via the usual env vars.

use av_bench::BenchConfig;
use av_engine::{ExecCache, Pricing};
use av_trace::Tracer;
use av_workload::job::job_workload;
use std::time::Instant;

const REPLAY_REPS: usize = 60;

fn main() {
    let cfg = BenchConfig::from_env();
    let w = job_workload(cfg.job_scale, cfg.seed);
    let plans = w.plans();
    // Warm the allocator and page cache before timing anything.
    for _ in 0..10 {
        let c = ExecCache::new(Pricing::paper_defaults());
        for p in &plans {
            c.run(&w.catalog, p).expect("query executes");
        }
    }

    // Hot micro loop: one span + three numeric attrs, a string attr on
    // every fourth (the executor's scan-span shape).
    let t = Tracer::new();
    let n = 100_000u64;
    let t0 = Instant::now();
    for i in 0..n {
        let s = t.span("exec.filter");
        if i % 4 == 0 {
            s.record_str("table", "cast_info");
        }
        s.record_num("rows", i as f64);
        s.record_num("bytes", 1.0);
        s.record_num("ops", 2.0);
    }
    println!(
        "hot micro loop: {:.0} ns/span",
        t0.elapsed().as_secs_f64() / n as f64 * 1e9
    );

    // In-context: cold replays off vs. on, interleaved so drift hits both.
    let mut off = Vec::with_capacity(REPLAY_REPS);
    let mut on = Vec::with_capacity(REPLAY_REPS);
    let tracer = Tracer::new();
    for _ in 0..REPLAY_REPS {
        let c = ExecCache::new(Pricing::paper_defaults());
        let t0 = Instant::now();
        for p in &plans {
            c.run(&w.catalog, p).expect("query executes");
        }
        off.push(t0.elapsed().as_secs_f64());
        let c = ExecCache::new(Pricing::paper_defaults()).with_tracer(tracer.clone());
        let t0 = Instant::now();
        for p in &plans {
            c.run(&w.catalog, p).expect("query executes");
        }
        on.push(t0.elapsed().as_secs_f64());
    }
    off.sort_by(|a, b| a.total_cmp(b));
    on.sort_by(|a, b| a.total_cmp(b));
    let (off_p50, on_p50) = (off[REPLAY_REPS / 2], on[REPLAY_REPS / 2]);
    let spans_per_rep = tracer.span_count() as f64 / REPLAY_REPS as f64;
    println!(
        "replay p50: off {:.4}ms on {:.4}ms ({:+.1}%)  {:.0} spans/rep  delta/span {:.0} ns",
        off_p50 * 1e3,
        on_p50 * 1e3,
        (on_p50 / off_p50 - 1.0) * 100.0,
        spans_per_rep,
        (on_p50 - off_p50) / spans_per_rep * 1e9
    );
}
