//! Table III — cost-estimation accuracy (MAE / MAPE) for every estimator:
//! Optimizer, DeepLearn, LR, GBM, the three Wide-Deep ablations, and W-D.
//!
//! Ground truth: for JOB-scale, measured `A(q|v)` from executing rewritten
//! queries (the paper's exact protocol); the 7:1:2 split and Adam training
//! follow Table II (epochs scaled by `AV_EPOCH_SCALE`).

use av_bench::{render_table, setup_experiment, BenchConfig};
use av_core::{table2_defaults, WorkloadKind};
use av_cost::{
    mae, metrics::mape_floored, Ablation, CostEstimator, DeepLearnEstimator, FeatureInput,
    Gbm, GbmConfig, LinearRegression, OptimizerEstimator, PairSample, WideDeep,
};

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "== Table III: cost estimation (epoch scale {}, pair cap {}) ==\n",
        cfg.epoch_scale, cfg.train_pairs
    );

    let mut rows = Vec::new();
    for (which, kind) in [
        ("job", WorkloadKind::Job),
        ("wk1", WorkloadKind::Wk1),
        ("wk2", WorkloadKind::Wk2),
    ] {
        let exp = setup_experiment(which, &cfg, cfg.train_pairs);
        let samples: Vec<PairSample> = exp.pairs.iter().map(|p| p.sample.clone()).collect();
        if samples.len() < 10 {
            eprintln!("{which}: too few pairs ({}), skipping", samples.len());
            continue;
        }
        let (train_idx, _val_idx, test_idx) =
            av_cost::metrics::split_7_1_2(samples.len(), cfg.seed);
        let train: Vec<PairSample> = train_idx.iter().map(|&i| samples[i].clone()).collect();
        let test: Vec<PairSample> = test_idx.iter().map(|&i| samples[i].clone()).collect();
        let train_pairs: Vec<(FeatureInput, f64)> = train
            .iter()
            .map(|s| (s.input.clone(), s.cost_qv))
            .collect();
        let truth: Vec<f64> = test.iter().map(|s| s.cost_qv).collect();
        // Percentage errors are meaningless against near-zero costs (a
        // rewrite can collapse a query to an empty view scan); floor at 5%
        // of the mean cost, as a real benchmark would.
        let floor = 0.05 * truth.iter().map(|y| y.abs()).sum::<f64>() / truth.len() as f64;

        let defaults = table2_defaults(kind);
        let wd_cfg = |ablation| {
            let mut c = defaults.widedeep(cfg.seed, cfg.epoch_scale);
            c.ablation = ablation;
            // Scaled batch size: the paper's 128 assumes tens of thousands
            // of samples.
            c.batch_size = c.batch_size.min(train.len().max(1));
            c
        };

        let estimators: Vec<(String, Vec<f64>)> = vec![
            evaluate(&OptimizerEstimator::default(), &test),
            evaluate(
                &DeepLearnEstimator::fit(
                    &train,
                    (defaults.epochs as f64 * cfg.epoch_scale * 10.0) as usize,
                    defaults.lr as f32,
                    cfg.seed,
                ),
                &test,
            ),
            evaluate(&LinearRegression::fit(&train_pairs), &test),
            evaluate(&Gbm::fit_samples(&train_pairs, GbmConfig::default()), &test),
            evaluate(&WideDeep::fit(&train_pairs, wd_cfg(Ablation::NExp)), &test),
            evaluate(&WideDeep::fit(&train_pairs, wd_cfg(Ablation::NStr)), &test),
            evaluate(&WideDeep::fit(&train_pairs, wd_cfg(Ablation::NKw)), &test),
            evaluate(&WideDeep::fit(&train_pairs, wd_cfg(Ablation::None)), &test),
        ];

        for (name, preds) in estimators {
            rows.push(vec![
                which.to_uppercase(),
                name,
                format!("{:.3}", mae(&truth, &preds) * 1e6),
                format!("{:.2}", mape_floored(&truth, &preds, floor)),
            ]);
        }
        eprintln!(
            "{which}: {} pairs ({} train / {} test)",
            samples.len(),
            train.len(),
            test.len()
        );
    }
    println!(
        "{}",
        render_table(&["workload", "estimator", "MAE (µ$)", "MAPE (%)"], &rows)
    );
    println!(
        "Expected shape (paper Table III): Optimizer worst; learned models better;\n\
         W-D best, with N-Kw ≥ N-Str ≥ N-Exp among the ablations."
    );
}

fn evaluate(est: &dyn CostEstimator, test: &[PairSample]) -> (String, Vec<f64>) {
    (
        est.name().to_string(),
        test.iter().map(|s| est.estimate(&s.input)).collect(),
    )
}
