//! Ablation study for RLView's design choices (beyond the paper's own
//! ablations): what do the IterView warm start, the DQN fine-tuning and the
//! ε-greedy exploration each contribute?
//!
//! Four configurations on the WK1-like instance:
//! - `full`        — RLView as implemented;
//! - `no-warmup`   — n₁ = 0 (start from a random state);
//! - `no-training` — replay threshold set above any reachable memory size,
//!   so the Q-network never updates (random-init argmax policy);
//! - `no-explore`  — ε = 0 (the paper's literal greedy-argmax policy).

use av_bench::{render_table, setup_experiment, BenchConfig};
use av_core::{table2_defaults, WorkloadKind};
use av_select::{RlView, RlViewConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let exp = setup_experiment("wk1", &cfg, usize::MAX);
    let defaults = table2_defaults(WorkloadKind::Wk1);
    let base = defaults.rlview(cfg.seed, cfg.epoch_scale);

    let variants: Vec<(&str, RlViewConfig)> = vec![
        ("full", base.clone()),
        (
            "no-warmup",
            RlViewConfig {
                n1: 0,
                ..base.clone()
            },
        ),
        (
            "no-training",
            RlViewConfig {
                memory_size: usize::MAX / 2,
                ..base.clone()
            },
        ),
        (
            "no-explore",
            RlViewConfig {
                epsilon: 0.0,
                ..base
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, rl_cfg) in variants {
        let r = RlView::run(&exp.actual, rl_cfg);
        let tail = &r.trajectory[r.trajectory.len().saturating_sub(r.trajectory.len() / 4).min(r.trajectory.len() - 1)..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let sd = (tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64)
            .sqrt();
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", r.utility),
            format!("{:.4}", mean),
            format!("{:.4}", sd),
            r.trajectory.len().to_string(),
        ]);
    }
    println!("== RLView ablations (WK1-like instance) ==\n");
    println!(
        "{}",
        render_table(
            &["variant", "best utility ($)", "tail mean ($)", "tail sd", "steps"],
            &rows
        )
    );
    println!(
        "Expected: `full` dominates; `no-training` oscillates (highest tail sd);\n\
         `no-warmup` wastes early steps; `no-explore` risks plateauing early."
    );
}
