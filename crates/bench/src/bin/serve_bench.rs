//! Serving-layer benchmark: closed-loop latency/throughput at 1, 8 and 64
//! concurrent clients, cold vs warm cache, with a re-optimization landing
//! mid-load at the highest concurrency — plus one open-loop run at a fixed
//! arrival rate.
//!
//! Writes `BENCH_serve.json` (machine-readable, consumed by CI) into the
//! working directory and prints the same numbers as tables.
//!
//! Throughput model: clients are closed-loop (request → think → repeat), so
//! on a single core qps ≈ clients / (think + service) until 1/service
//! saturates the machine. The scaling claim this benchmark checks — warm
//! 64-client throughput ≥ 4× the 1-client figure — comes from overlapping
//! think times, not from parallel execution, and holds on one core.
//!
//! A pool-vs-scoped section re-runs the cold ladder with the executor's
//! parallel cutover forced to zero, once on the shared morsel pool and
//! once on per-query scoped spawning, interleaved: the pool must match or
//! beat scoped spawning at every level (>= 1.0x with real cores, >= 0.95x
//! single-core where both degenerate to near-serial and only noise
//! separates them). With cores to win on, warm top-concurrency throughput
//! must also clear 1.5x the pre-pool 9,491 qps seed figure.
//!
//! Knobs: `AV_SERVE_REQUESTS` (default 64) requests per client,
//! `AV_SERVE_THINK_US` (default 2000) think time in microseconds,
//! `AV_SERVE_SEED` (default 70) workload seed, `AV_SERVE_TENANTS`
//! (default 4), `AV_SERVE_OPEN_QPS` (default 400) open-loop arrival rate,
//! `AV_SERVE_POOL_REPS` (default 3) pool-vs-scoped paired reps per level.

use av_cost::OptimizerEstimator;
use av_online::LifecycleConfig;
use av_serve::{
    run_closed_loop, run_open_loop, AdmissionConfig, ClosedLoopConfig, FlightDump, LoadReport,
    ObsConfig, OpenLoopConfig, ServeConfig, ViewServer,
};
use av_workload::cloud::mini;
use serde::Serialize;
use std::time::Duration;

#[derive(Debug, Clone, Serialize)]
struct BenchConfig {
    seed: u64,
    requests_per_client: usize,
    think_us: u64,
    tenants: usize,
    plans: usize,
    cores: usize,
}

#[derive(Debug, Clone, Serialize)]
struct ReoptRecord {
    epoch: u64,
    admitted: usize,
    dropped: usize,
    rejected: usize,
    live_views: usize,
    /// The swap landed while the warm 64-client run was in flight.
    during_live_load: bool,
}

#[derive(Debug, Clone, Serialize)]
struct LevelResult {
    clients: usize,
    cold: LoadReport,
    warm: LoadReport,
    /// Only at the highest level: the warm run with re-optimization racing
    /// it, and a post-swap pass served entirely from the new epoch.
    #[serde(skip_serializing_if = "Option::is_none")]
    reopt: Option<ReoptRecord>,
    #[serde(skip_serializing_if = "Option::is_none")]
    post_reopt: Option<LoadReport>,
}

#[derive(Debug, Clone, Serialize)]
struct CacheRecord {
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Result bytes shed by capacity evictions (memory-pressure signal).
    evicted_bytes: u64,
    hit_rate: f64,
    shards: usize,
}

/// Telemetry-overhead measurement: the warm top-concurrency ladder run at
/// zero think time with the flight recorder / SLO monitor / residual
/// stream on vs off, interleaved, best-of-`reps` throughput per mode.
///
/// The *measurement* is the saturated service-time delta, not closed-loop
/// latency: with more clients than cores, mean latency at saturation is
/// roughly `clients x service - think`, so a sub-microsecond service-time
/// cost shows up amplified `clients`-fold in the mean. Saturated qps is
/// `1 / service`, making `1/qps_on - 1/qps_off` the exact per-query cost
/// in nanoseconds. The *gate* compares that cost against 2% of the warm
/// ladder's mean request latency at its configured think time.
#[derive(Debug, Clone, Serialize)]
struct ObsRecord {
    reps: usize,
    qps_off: f64,
    qps_on: f64,
    /// Informational: best warm mean latency per mode at saturation.
    mean_us_off: f64,
    mean_us_on: f64,
    /// Per-query telemetry cost in nanoseconds: the median over reps of
    /// the paired per-rep `1/qps_on - 1/qps_off` at saturation, where
    /// throughput is the reciprocal of service time. May be negative
    /// within noise.
    overhead_ns: f64,
    /// `(qps_off / qps_on - 1)` in percent of the saturated warm-hit
    /// service time — the most adversarial denominator the bench has.
    overhead_pct: f64,
    /// Counters from the telemetry-on server after its measured run.
    recorded: u64,
    residuals_recorded: u64,
    alerts: u64,
    dumps: u64,
}

/// The flight-recorder artifact (`FLIGHT_serve.json`): the stored
/// anomaly/alert-triggered dumps plus one on-demand capture at the end.
#[derive(Debug, Clone, Serialize)]
struct FlightArtifact {
    stored: Vec<FlightDump>,
    on_demand: FlightDump,
}

#[derive(Debug, Clone, Serialize)]
struct ScalingRecord {
    qps_warm_1: f64,
    qps_warm_max: f64,
    ratio: f64,
}

/// Pool-vs-scoped spawn comparison at one ladder level: identical servers
/// except for the executor backend, both forced to parallelize every chunk
/// (`par_min_rows = 0`) so the spawn path runs on every operator rather
/// than only on scans past the 16k cutover. Cold (execution-heavy) runs,
/// interleaved in alternating order, best-of-reps per side.
#[derive(Debug, Clone, Serialize)]
struct PoolVsScoped {
    clients: usize,
    reps: usize,
    pooled_qps: f64,
    scoped_qps: f64,
    /// `pooled_qps / scoped_qps` — the shared pool must not lose to
    /// per-query scoped spawning at any concurrency.
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ServeBenchReport {
    config: BenchConfig,
    levels: Vec<LevelResult>,
    scaling: ScalingRecord,
    open_loop: LoadReport,
    /// Sharded result-cache counters of the 64-client server.
    cache: CacheRecord,
    /// Telemetry on-vs-off overhead on the warm top-concurrency ladder.
    obs: ObsRecord,
    /// Shared-pool vs per-query scoped spawning at every ladder level.
    pool_vs_scoped: Vec<PoolVsScoped>,
}

fn envu(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn server_with_obs(w: &av_workload::Workload, obs: ObsConfig) -> ViewServer {
    ViewServer::new(
        w.catalog.clone(),
        Box::new(OptimizerEstimator::default()),
        ServeConfig {
            lifecycle: LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            // Deep enough that 64 closed-loop clients queue rather than
            // shed: queue wait is charged to latency, not dropped.
            admission: AdmissionConfig {
                max_inflight_per_tenant: 32,
                max_queued_per_tenant: 256,
            },
            obs,
            ..ServeConfig::default()
        },
    )
}

fn server_for(w: &av_workload::Workload) -> ViewServer {
    server_with_obs(w, ObsConfig::default())
}

/// A workload whose scans actually span chunks: the `mini` ladder tables
/// (100–600 rows) all fit in one 1024-row chunk, so on it `map_chunks`
/// degenerates to the serial path and a backend comparison measures
/// nothing. 3–8 chunks per scan gives the spawn machinery real work at
/// every ladder level.
fn pool_ladder_workload(seed: u64) -> av_workload::Workload {
    av_workload::gen::generate(&av_workload::GeneratorConfig {
        name: "pool-ladder".into(),
        seed,
        projects: 2,
        tables: 4,
        rows_range: (3 * 1024, 8 * 1024),
        queries: 24,
        pool_per_table: 2,
        share_probability: 0.7,
        aggregate_probability: 0.5,
        join_template_probability: 0.5,
        join_tables: (2, 2),
        skew: 1.0,
    })
}

/// A server whose executors use the given parallel backend and spawn a
/// task for every chunk (`par_min_rows = 0`), telemetry off so the
/// comparison isolates the spawn machinery.
fn server_with_backend(
    w: &av_workload::Workload,
    backend: av_engine::par::ParBackend,
) -> ViewServer {
    ViewServer::new(
        w.catalog.clone(),
        Box::new(OptimizerEstimator::default()),
        ServeConfig {
            lifecycle: LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            admission: AdmissionConfig {
                max_inflight_per_tenant: 32,
                max_queued_per_tenant: 256,
            },
            obs: ObsConfig::disabled(),
            par_min_rows: Some(0),
            exec_backend: backend,
            // Fixed 4-way DOP with the elastic policy off: on a one-core
            // box elastic DOP collapses to 1 and map_chunks would run
            // serially on both backends, making the comparison vacuous.
            // Forcing threads exercises the actual spawn machinery the
            // two backends differ in (same shape as exec_bench's ladder).
            exec_threads: Some(4),
            elastic_dop: false,
            ..ServeConfig::default()
        },
    )
}

/// Paired pool-vs-scoped comparison at one concurrency: fresh servers per
/// rep (cold runs — execution-heavy, so the executor's spawn path
/// dominates), alternating which backend goes first, best throughput per
/// side across reps.
fn measure_pool_vs_scoped(
    w: &av_workload::Workload,
    plans: &[av_plan::PlanRef],
    clients: usize,
    requests_per_client: usize,
    tenants: usize,
    reps: usize,
) -> PoolVsScoped {
    use av_engine::par::ParBackend;
    let cfg = ClosedLoopConfig {
        clients,
        requests_per_client,
        think: Duration::ZERO,
        tenants,
    };
    // [scoped, pooled] so `as usize` indexing matches the bool.
    let mut best = [0.0f64; 2];
    for rep in 0..reps {
        let order = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for pooled in order {
            let backend = if pooled {
                ParBackend::Pool
            } else {
                ParBackend::ScopedSpawn
            };
            let server = server_with_backend(w, backend);
            let report = run_closed_loop(&server, plans, &cfg);
            expect_clean(&report, &format!("pool-vs-scoped@{clients}"));
            let i = pooled as usize;
            best[i] = best[i].max(report.qps);
        }
    }
    PoolVsScoped {
        clients,
        reps,
        pooled_qps: best[1],
        scoped_qps: best[0],
        speedup: best[1] / best[0].max(1e-12),
    }
}

/// Interleave telemetry-off and telemetry-on warm runs at the top
/// concurrency with zero think time and keep each mode's best (maximum)
/// saturated throughput: the ceiling is what the service path actually
/// sustains, the rest is scheduler noise shared by both modes. Returns
/// the record plus the last telemetry-on server, whose counters and
/// ring feed the artifacts.
fn measure_obs_overhead(
    w: &av_workload::Workload,
    plans: &[av_plan::PlanRef],
    cfg: &ClosedLoopConfig,
    reps: usize,
) -> (ObsRecord, ViewServer) {
    let warmup_cfg = ClosedLoopConfig {
        think: Duration::ZERO,
        requests_per_client: (cfg.requests_per_client * 4).max(256),
        ..cfg.clone()
    };
    // Much longer measured runs than the ladder's: scheduler disturbances
    // (background kernel work, preemption storms) cost a roughly fixed
    // number of milliseconds regardless of run length, so their per-query
    // contribution shrinks linearly with requests. At ~40ms a single
    // disturbance reads as ±500ns/query; at ~160ms it is down in the
    // double digits. The floors keep the measurement honest when
    // `AV_SERVE_REQUESTS` is dialed down for a smoke run.
    let cfg = ClosedLoopConfig {
        requests_per_client: (cfg.requests_per_client * 16).max(1024),
        ..warmup_cfg.clone()
    };
    let mut best_qps = [0.0f64; 2];
    let mut best_mean = [f64::INFINITY; 2];
    let mut deltas_ns = Vec::new();
    let mut last_on = None;
    for rep in 0..reps {
        // Alternate which mode goes first so slow drift in the host's
        // background load cancels out of the comparison.
        let order = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        let mut rep_qps = [0.0f64; 2];
        for on in order {
            let obs = if on {
                ObsConfig::default()
            } else {
                ObsConfig::disabled()
            };
            let server = server_with_obs(w, obs);
            let warmup = run_closed_loop(&server, plans, &warmup_cfg);
            expect_clean(&warmup, "obs ladder warmup");
            let warm = run_closed_loop(&server, plans, &cfg);
            expect_clean(&warm, "obs ladder warm");
            let i = on as usize;
            rep_qps[i] = warm.qps;
            best_qps[i] = best_qps[i].max(warm.qps);
            best_mean[i] = best_mean[i].min(warm.mean_us);
            if on {
                last_on = Some(server);
            }
        }
        // Pair the two adjacent runs of this rep: they share the host's
        // state of the moment, so their difference isolates the telemetry
        // cost far better than any cross-rep comparison.
        deltas_ns.push((1.0 / rep_qps[1] - 1.0 / rep_qps[0]) * 1e9);
    }
    // Median of the paired deltas: robust to a rep that caught a noisy
    // neighbour or an unlucky preemption in either mode.
    deltas_ns.sort_by(f64::total_cmp);
    let overhead_ns = deltas_ns[deltas_ns.len() / 2];
    println!(
        "telemetry per-rep paired deltas (ns/query, sorted): {:?}",
        deltas_ns.iter().map(|d| d.round()).collect::<Vec<_>>()
    );
    let server = last_on.expect("telemetry-on rep ran");
    let stats = server.stats_snapshot();
    let record = ObsRecord {
        reps,
        qps_off: best_qps[0],
        qps_on: best_qps[1],
        mean_us_off: best_mean[0],
        mean_us_on: best_mean[1],
        overhead_ns,
        overhead_pct: overhead_ns / (1e9 / best_qps[0]) * 100.0,
        recorded: stats.recorded,
        residuals_recorded: stats.residuals.recorded,
        alerts: stats.alerts.len() as u64,
        dumps: stats.dumps.len() as u64,
    };
    (record, server)
}

fn expect_clean(report: &LoadReport, label: &str) {
    assert_eq!(report.failed, 0, "{label}: failed queries");
    assert_eq!(report.rejected, 0, "{label}: shed load (widen admission)");
}

fn row(label: &str, r: &LoadReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{}", r.requests),
        format!("{:.0}", r.qps),
        format!("{:.0}", r.p50_us),
        format!("{:.0}", r.p95_us),
        format!("{:.0}", r.p99_us),
        format!("{}", r.rewrite_hits),
    ]
}

fn main() {
    let seed = envu("AV_SERVE_SEED", 70);
    let requests_per_client = envu("AV_SERVE_REQUESTS", 64) as usize;
    let think_us = envu("AV_SERVE_THINK_US", 2000);
    let tenants = envu("AV_SERVE_TENANTS", 4) as usize;
    let open_qps = envu("AV_SERVE_OPEN_QPS", 400) as f64;

    let w = mini(seed);
    let plans = w.plans();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = BenchConfig {
        seed,
        requests_per_client,
        think_us,
        tenants,
        plans: plans.len(),
        cores,
    };

    let levels_spec = [1usize, 8, 64];
    let top = *levels_spec.last().expect("levels");
    let mut levels: Vec<LevelResult> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut cache = None;

    for &clients in &levels_spec {
        // Fresh server per level: `cold` really is an empty result cache
        // and an epoch-0, view-free deployment.
        let server = server_for(&w);
        let cfg = ClosedLoopConfig {
            clients,
            requests_per_client,
            think: Duration::from_micros(think_us),
            tenants,
        };
        let cold = run_closed_loop(&server, &plans, &cfg);
        expect_clean(&cold, &format!("cold@{clients}"));

        let (warm, reopt, post_reopt) = if clients == top {
            // Race a re-optimization against the warm run: the swap must
            // land while clients are in flight, and nothing may fail.
            let reopt_delay = Duration::from_secs_f64((cold.wall_seconds * 0.25).max(0.001));
            let mut summary = None;
            let warm = std::thread::scope(|scope| {
                let server = &server;
                let plans = &plans;
                let handle = scope.spawn(move || {
                    std::thread::sleep(reopt_delay);
                    server.reoptimize(plans, Some("tenant0")).expect("reoptimizes")
                });
                let warm = run_closed_loop(server, plans, &cfg);
                summary = Some(handle.join().expect("reopt thread"));
                warm
            });
            let summary = summary.expect("reopt summary");
            assert_eq!(server.epoch(), 1, "the mid-load swap landed");
            assert!(summary.admitted > 0, "re-optimization admits views");
            let post = run_closed_loop(&server, &plans, &cfg);
            expect_clean(&post, &format!("post_reopt@{clients}"));
            assert!(
                post.rewrite_hits > 0,
                "published views must route the workload"
            );
            (
                warm,
                Some(ReoptRecord {
                    epoch: summary.epoch,
                    admitted: summary.admitted,
                    dropped: summary.dropped,
                    rejected: summary.rejected,
                    live_views: summary.live_views,
                    during_live_load: true,
                }),
                Some(post),
            )
        } else {
            (run_closed_loop(&server, &plans, &cfg), None, None)
        };
        expect_clean(&warm, &format!("warm@{clients}"));

        rows.push(row(&format!("cold  x{clients}"), &cold));
        rows.push(row(&format!("warm  x{clients}"), &warm));
        if let Some(p) = &post_reopt {
            rows.push(row(&format!("post  x{clients}"), p));
        }
        if clients == top {
            let stats = server.cache_stats();
            cache = Some(CacheRecord {
                hits: stats.hits,
                misses: stats.misses,
                evictions: stats.evictions,
                evicted_bytes: stats.evicted_bytes,
                hit_rate: stats.hit_rate(),
                shards: server.shard_stats().len(),
            });
        }
        levels.push(LevelResult {
            clients,
            cold,
            warm,
            reopt,
            post_reopt,
        });
    }

    let qps_warm_1 = levels[0].warm.qps;
    let qps_warm_max = levels.last().expect("levels").warm.qps;
    let scaling = ScalingRecord {
        qps_warm_1,
        qps_warm_max,
        ratio: if qps_warm_1 > 0.0 {
            qps_warm_max / qps_warm_1
        } else {
            0.0
        },
    };

    // One open-loop run on a fresh server: fixed arrival rate, bounded
    // queue, latency measured from the scheduled arrival.
    let open_server = server_for(&w);
    let open_loop = run_open_loop(
        &open_server,
        &plans,
        &OpenLoopConfig {
            workers: 4,
            target_qps: open_qps,
            requests: (requests_per_client * 4).max(32),
            queue_depth: 64,
            tenants,
        },
    );
    assert_eq!(open_loop.failed, 0, "open loop: failed queries");
    rows.push(row(&format!("open  @{open_qps:.0}qps"), &open_loop));

    // Pool-vs-scoped executor comparison across the ladder: the shared
    // morsel pool must not lose to per-query scoped spawning at any
    // concurrency, measured where it matters (cold, execution-heavy runs
    // with the spawn path forced on for every chunk).
    let pvs_reps = envu("AV_SERVE_POOL_REPS", 3) as usize;
    let pool_w = pool_ladder_workload(seed);
    let pool_plans = pool_w.plans();
    let pool_vs_scoped: Vec<PoolVsScoped> = levels_spec
        .iter()
        .map(|&clients| {
            measure_pool_vs_scoped(
                &pool_w,
                &pool_plans,
                clients,
                requests_per_client,
                tenants,
                pvs_reps,
            )
        })
        .collect();

    // Telemetry overhead at the top concurrency, then export the
    // telemetry-on server's scrape body and flight-recorder artifacts.
    let obs_reps = envu("AV_SERVE_OBS_REPS", 5) as usize;
    let top_cfg = ClosedLoopConfig {
        clients: top,
        requests_per_client,
        think: Duration::from_micros(think_us),
        tenants,
    };
    let (mut obs, obs_server) = measure_obs_overhead(&w, &plans, &top_cfg, obs_reps);
    // Populate the residual stream before exporting: routed queries only
    // carry estimates once views are published, so swap a deployment in
    // and take one short pass over the plans.
    obs_server
        .reoptimize(&plans, Some("tenant0"))
        .expect("obs server reoptimizes");
    let residual_pass = run_closed_loop(&obs_server, &plans, &top_cfg);
    expect_clean(&residual_pass, "obs residual pass");
    let final_stats = obs_server.stats_snapshot();
    obs.recorded = final_stats.recorded;
    obs.residuals_recorded = final_stats.residuals.recorded;
    obs.alerts = final_stats.alerts.len() as u64;
    obs.dumps = final_stats.dumps.len() as u64;
    std::fs::write("METRICS_serve.prom", obs_server.prometheus_text())
        .expect("METRICS_serve.prom written");
    let flight = FlightArtifact {
        stored: obs_server.obs().dumps(),
        on_demand: obs_server.obs().dump_now("bench-on-demand"),
    };
    std::fs::write(
        "FLIGHT_serve.json",
        serde_json::to_string_pretty(&flight).expect("flight serializes"),
    )
    .expect("FLIGHT_serve.json written");

    // Two-sided gate. The acceptance criterion is that telemetry adds
    // under 2% to what a 64-client warm-ladder request experiences (its
    // mean latency at the configured think, reopt race included). That
    // budget is latency-scale, so a second, absolute backstop at 300ns
    // — ~3x the measured per-query cost — catches regressions the 2%
    // criterion is too coarse to see (a dump captured on the serving
    // path costs ~1ms; the old per-fire capture bug measured +30µs per
    // query). The *measurement* behind both is the saturated
    // service-time delta: at think 0, qps is the reciprocal of service
    // time, so `1/qps_on - 1/qps_off` is exact nanoseconds per query.
    let warm_top_mean_us = levels
        .iter()
        .find(|l| l.clients == top)
        .map(|l| l.warm.mean_us)
        .expect("top level ran");
    let ladder_budget_ns = 0.02 * warm_top_mean_us * 1_000.0;
    let backstop_ns = 300.0;

    let report = ServeBenchReport {
        config: config.clone(),
        levels,
        scaling: scaling.clone(),
        open_loop,
        cache: cache.expect("top level ran"),
        obs: obs.clone(),
        pool_vs_scoped: pool_vs_scoped.clone(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("BENCH_serve.json written");

    println!(
        "{}",
        av_bench::render_table(
            &["phase", "requests", "qps", "p50 µs", "p95 µs", "p99 µs", "rewrites"],
            &rows
        )
    );
    println!(
        "\nscaling (warm, think {think_us}µs, {cores} core(s)): 1 client {:.0} qps -> {top} clients {:.0} qps ({:.1}x)",
        scaling.qps_warm_1, scaling.qps_warm_max, scaling.ratio
    );
    println!(
        "\ntelemetry overhead (saturated x{top}, think 0, best of {obs_reps}): \
         off {:.0} qps -> on {:.0} qps = {:+.0}ns/query ({:+.2}% of the {:.1}µs warm hit); \
         budgets: {:.0}ns (2% of the {:.1}µs warm-ladder mean), {backstop_ns:.0}ns backstop; \
         {} records, {} residuals, {} alerts, {} dumps",
        obs.qps_off, obs.qps_on, obs.overhead_ns, obs.overhead_pct,
        1e6 / obs.qps_off, ladder_budget_ns, warm_top_mean_us,
        obs.recorded, obs.residuals_recorded, obs.alerts, obs.dumps
    );
    println!(
        "\npool vs scoped spawn (cold, think 0, par forced, best of {pvs_reps}):\n{}",
        av_bench::render_table(
            &["clients", "pooled qps", "scoped qps", "pool/scoped"],
            &pool_vs_scoped
                .iter()
                .map(|p| vec![
                    format!("{}", p.clients),
                    format!("{:.0}", p.pooled_qps),
                    format!("{:.0}", p.scoped_qps),
                    format!("{:.2}x", p.speedup),
                ])
                .collect::<Vec<_>>()
        )
    );
    println!("wrote BENCH_serve.json, METRICS_serve.prom, FLIGHT_serve.json");

    assert!(
        scaling.ratio >= 4.0,
        "64-client warm throughput must be >= 4x the 1-client figure, got {:.2}x",
        scaling.ratio
    );
    assert!(
        obs.recorded > 0,
        "the telemetry-on ladder must flow through the flight recorder"
    );
    assert!(
        obs.residuals_recorded > 0,
        "the post-swap pass must feed the estimator-residual stream"
    );
    assert!(
        obs.overhead_ns < ladder_budget_ns,
        "telemetry must add under 2% to a warm-ladder request (budget {ladder_budget_ns:.0}ns), \
         got {:+.0}ns/query (off {:.0} qps, on {:.0} qps)",
        obs.overhead_ns,
        obs.qps_off,
        obs.qps_on
    );
    assert!(
        obs.overhead_ns < backstop_ns,
        "telemetry regression backstop: per-query cost must stay under {backstop_ns:.0}ns, \
         got {:+.0}ns/query (off {:.0} qps, on {:.0} qps)",
        obs.overhead_ns,
        obs.qps_off,
        obs.qps_on
    );
    // Pool gate: the shared pool must match or beat per-query scoped
    // spawning at every ladder level. With real cores the bar is 1.0x; on
    // a single core both backends degenerate to near-serial execution and
    // the paired cold runs carry a few percent of scheduler noise, so the
    // bar drops to 0.95x — still tight enough to catch a pool that
    // actually costs throughput.
    let pool_floor = if cores > 1 { 1.0 } else { 0.95 };
    for p in &pool_vs_scoped {
        assert!(
            p.speedup >= pool_floor,
            "shared pool lost to scoped spawning at {} clients: {:.2}x \
             (pooled {:.0} qps vs scoped {:.0} qps, floor {pool_floor}x)",
            p.clients,
            p.speedup,
            p.pooled_qps,
            p.scoped_qps
        );
    }
    // Absolute throughput gate vs the pre-pool seed figure (9,491 qps warm
    // at 64 clients): the pooled, elastically parallel server must clear
    // 1.5x that. The win comes from real parallel execution, so the gate
    // only binds with cores to parallelize across; on one core the ladder
    // is reported but the multiplier is unreachable by construction.
    const SEED_WARM_TOP_QPS: f64 = 9_491.0;
    if cores > 1 {
        assert!(
            scaling.qps_warm_max >= 1.5 * SEED_WARM_TOP_QPS,
            "warm x{top} throughput {:.0} qps below 1.5x the {SEED_WARM_TOP_QPS:.0} qps seed figure",
            scaling.qps_warm_max
        );
    } else {
        println!(
            "single core: warm x{top} absolute gate (>= {:.0} qps) skipped, measured {:.0} qps",
            1.5 * SEED_WARM_TOP_QPS,
            scaling.qps_warm_max
        );
    }
}
