//! Serving-layer benchmark: closed-loop latency/throughput at 1, 8 and 64
//! concurrent clients, cold vs warm cache, with a re-optimization landing
//! mid-load at the highest concurrency — plus one open-loop run at a fixed
//! arrival rate.
//!
//! Writes `BENCH_serve.json` (machine-readable, consumed by CI) into the
//! working directory and prints the same numbers as tables.
//!
//! Throughput model: clients are closed-loop (request → think → repeat), so
//! on a single core qps ≈ clients / (think + service) until 1/service
//! saturates the machine. The scaling claim this benchmark checks — warm
//! 64-client throughput ≥ 4× the 1-client figure — comes from overlapping
//! think times, not from parallel execution, and holds on one core.
//!
//! Knobs: `AV_SERVE_REQUESTS` (default 64) requests per client,
//! `AV_SERVE_THINK_US` (default 2000) think time in microseconds,
//! `AV_SERVE_SEED` (default 70) workload seed, `AV_SERVE_TENANTS`
//! (default 4), `AV_SERVE_OPEN_QPS` (default 400) open-loop arrival rate.

use av_cost::OptimizerEstimator;
use av_online::LifecycleConfig;
use av_serve::{
    run_closed_loop, run_open_loop, AdmissionConfig, ClosedLoopConfig, LoadReport,
    OpenLoopConfig, ServeConfig, ViewServer,
};
use av_workload::cloud::mini;
use serde::Serialize;
use std::time::Duration;

#[derive(Debug, Clone, Serialize)]
struct BenchConfig {
    seed: u64,
    requests_per_client: usize,
    think_us: u64,
    tenants: usize,
    plans: usize,
    cores: usize,
}

#[derive(Debug, Clone, Serialize)]
struct ReoptRecord {
    epoch: u64,
    admitted: usize,
    dropped: usize,
    rejected: usize,
    live_views: usize,
    /// The swap landed while the warm 64-client run was in flight.
    during_live_load: bool,
}

#[derive(Debug, Clone, Serialize)]
struct LevelResult {
    clients: usize,
    cold: LoadReport,
    warm: LoadReport,
    /// Only at the highest level: the warm run with re-optimization racing
    /// it, and a post-swap pass served entirely from the new epoch.
    #[serde(skip_serializing_if = "Option::is_none")]
    reopt: Option<ReoptRecord>,
    #[serde(skip_serializing_if = "Option::is_none")]
    post_reopt: Option<LoadReport>,
}

#[derive(Debug, Clone, Serialize)]
struct CacheRecord {
    hits: u64,
    misses: u64,
    evictions: u64,
    hit_rate: f64,
    shards: usize,
}

#[derive(Debug, Clone, Serialize)]
struct ScalingRecord {
    qps_warm_1: f64,
    qps_warm_max: f64,
    ratio: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ServeBenchReport {
    config: BenchConfig,
    levels: Vec<LevelResult>,
    scaling: ScalingRecord,
    open_loop: LoadReport,
    /// Sharded result-cache counters of the 64-client server.
    cache: CacheRecord,
}

fn envu(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn server_for(w: &av_workload::Workload) -> ViewServer {
    ViewServer::new(
        w.catalog.clone(),
        Box::new(OptimizerEstimator::default()),
        ServeConfig {
            lifecycle: LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            // Deep enough that 64 closed-loop clients queue rather than
            // shed: queue wait is charged to latency, not dropped.
            admission: AdmissionConfig {
                max_inflight_per_tenant: 32,
                max_queued_per_tenant: 256,
            },
            ..ServeConfig::default()
        },
    )
}

fn expect_clean(report: &LoadReport, label: &str) {
    assert_eq!(report.failed, 0, "{label}: failed queries");
    assert_eq!(report.rejected, 0, "{label}: shed load (widen admission)");
}

fn row(label: &str, r: &LoadReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{}", r.requests),
        format!("{:.0}", r.qps),
        format!("{:.0}", r.p50_us),
        format!("{:.0}", r.p95_us),
        format!("{:.0}", r.p99_us),
        format!("{}", r.rewrite_hits),
    ]
}

fn main() {
    let seed = envu("AV_SERVE_SEED", 70);
    let requests_per_client = envu("AV_SERVE_REQUESTS", 64) as usize;
    let think_us = envu("AV_SERVE_THINK_US", 2000);
    let tenants = envu("AV_SERVE_TENANTS", 4) as usize;
    let open_qps = envu("AV_SERVE_OPEN_QPS", 400) as f64;

    let w = mini(seed);
    let plans = w.plans();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = BenchConfig {
        seed,
        requests_per_client,
        think_us,
        tenants,
        plans: plans.len(),
        cores,
    };

    let levels_spec = [1usize, 8, 64];
    let top = *levels_spec.last().expect("levels");
    let mut levels: Vec<LevelResult> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut cache = None;

    for &clients in &levels_spec {
        // Fresh server per level: `cold` really is an empty result cache
        // and an epoch-0, view-free deployment.
        let server = server_for(&w);
        let cfg = ClosedLoopConfig {
            clients,
            requests_per_client,
            think: Duration::from_micros(think_us),
            tenants,
        };
        let cold = run_closed_loop(&server, &plans, &cfg);
        expect_clean(&cold, &format!("cold@{clients}"));

        let (warm, reopt, post_reopt) = if clients == top {
            // Race a re-optimization against the warm run: the swap must
            // land while clients are in flight, and nothing may fail.
            let reopt_delay = Duration::from_secs_f64((cold.wall_seconds * 0.25).max(0.001));
            let mut summary = None;
            let warm = std::thread::scope(|scope| {
                let server = &server;
                let plans = &plans;
                let handle = scope.spawn(move || {
                    std::thread::sleep(reopt_delay);
                    server.reoptimize(plans, Some("tenant0")).expect("reoptimizes")
                });
                let warm = run_closed_loop(server, plans, &cfg);
                summary = Some(handle.join().expect("reopt thread"));
                warm
            });
            let summary = summary.expect("reopt summary");
            assert_eq!(server.epoch(), 1, "the mid-load swap landed");
            assert!(summary.admitted > 0, "re-optimization admits views");
            let post = run_closed_loop(&server, &plans, &cfg);
            expect_clean(&post, &format!("post_reopt@{clients}"));
            assert!(
                post.rewrite_hits > 0,
                "published views must route the workload"
            );
            (
                warm,
                Some(ReoptRecord {
                    epoch: summary.epoch,
                    admitted: summary.admitted,
                    dropped: summary.dropped,
                    rejected: summary.rejected,
                    live_views: summary.live_views,
                    during_live_load: true,
                }),
                Some(post),
            )
        } else {
            (run_closed_loop(&server, &plans, &cfg), None, None)
        };
        expect_clean(&warm, &format!("warm@{clients}"));

        rows.push(row(&format!("cold  x{clients}"), &cold));
        rows.push(row(&format!("warm  x{clients}"), &warm));
        if let Some(p) = &post_reopt {
            rows.push(row(&format!("post  x{clients}"), p));
        }
        if clients == top {
            let stats = server.cache_stats();
            cache = Some(CacheRecord {
                hits: stats.hits,
                misses: stats.misses,
                evictions: stats.evictions,
                hit_rate: stats.hit_rate(),
                shards: server.shard_stats().len(),
            });
        }
        levels.push(LevelResult {
            clients,
            cold,
            warm,
            reopt,
            post_reopt,
        });
    }

    let qps_warm_1 = levels[0].warm.qps;
    let qps_warm_max = levels.last().expect("levels").warm.qps;
    let scaling = ScalingRecord {
        qps_warm_1,
        qps_warm_max,
        ratio: if qps_warm_1 > 0.0 {
            qps_warm_max / qps_warm_1
        } else {
            0.0
        },
    };

    // One open-loop run on a fresh server: fixed arrival rate, bounded
    // queue, latency measured from the scheduled arrival.
    let open_server = server_for(&w);
    let open_loop = run_open_loop(
        &open_server,
        &plans,
        &OpenLoopConfig {
            workers: 4,
            target_qps: open_qps,
            requests: (requests_per_client * 4).max(32),
            queue_depth: 64,
            tenants,
        },
    );
    assert_eq!(open_loop.failed, 0, "open loop: failed queries");
    rows.push(row(&format!("open  @{open_qps:.0}qps"), &open_loop));

    let report = ServeBenchReport {
        config: config.clone(),
        levels,
        scaling: scaling.clone(),
        open_loop,
        cache: cache.expect("top level ran"),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("BENCH_serve.json written");

    println!(
        "{}",
        av_bench::render_table(
            &["phase", "requests", "qps", "p50 µs", "p95 µs", "p99 µs", "rewrites"],
            &rows
        )
    );
    println!(
        "\nscaling (warm, think {think_us}µs, {cores} core(s)): 1 client {:.0} qps -> {top} clients {:.0} qps ({:.1}x)",
        scaling.qps_warm_1, scaling.qps_warm_max, scaling.ratio
    );
    println!("wrote BENCH_serve.json");

    assert!(
        scaling.ratio >= 4.0,
        "64-client warm throughput must be >= 4x the 1-client figure, got {:.2}x",
        scaling.ratio
    );
}
