//! Table V — end-to-end comparison of the four estimator × selector
//! combinations: O&B, O&R, W&B, W&R, on JOB plus one sampled project from
//! each cloud workload (the paper's P1 ⊂ WK1 and P2 ⊂ WK2).
//!
//! Reported per method: materialized views (#m) and their overhead (o_m),
//! rewritten queries #(q|v) and their measured benefit (b_{q|v}), rewritten
//! workload latency, and the saved-cost ratio r_c = (b − o) / c_q.

use av_bench::{build_workload, render_table, BenchConfig};
use av_core::{
    collect_pair_truth, preprocess_and_measure, table2_defaults, AutoViewConfig,
    AutoViewSystem, EstimatorKind, SelectorKind, WorkloadKind,
};
use av_cost::{CostEstimator, FeatureInput, OptimizerEstimator, WideDeep};
use av_engine::Pricing;
use av_select::BigSubConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    let mut rows = Vec::new();

    for (label, which, kind, project) in [
        ("JOB", "job", WorkloadKind::Job, None),
        ("P1", "wk1", WorkloadKind::Wk1, Some(0usize)),
        ("P2", "wk2", WorkloadKind::Wk2, Some(0usize)),
    ] {
        let workload = build_workload(which, &cfg);
        // P1/P2: restrict to one project, the paper's sampling trick for
        // keeping full-materialization experiments affordable.
        let plans: Vec<_> = workload
            .queries
            .iter()
            .filter(|q| project.map(|p| q.project == p).unwrap_or(true))
            .map(|q| q.plan.clone())
            .collect();
        let pricing = Pricing::paper_defaults();
        let defaults = table2_defaults(kind);

        // Shared measurement across the four combos.
        let mut catalog = workload.catalog.clone();
        let pre = preprocess_and_measure(&mut catalog, &plans, pricing).expect("preprocess");
        let pairs = collect_pair_truth(&catalog, &pre, &plans, cfg.train_pairs, cfg.seed)
            .expect("pairs");
        eprintln!(
            "{label}: {} queries, {} candidates, {} training pairs",
            plans.len(),
            pre.analysis.candidates.len(),
            pairs.len()
        );

        // Train each estimator once.
        let train: Vec<(FeatureInput, f64)> = pairs
            .iter()
            .map(|p| (p.sample.input.clone(), p.sample.cost_qv))
            .collect();
        let wd = WideDeep::fit(&train, defaults.widedeep(cfg.seed, cfg.epoch_scale));
        let opt = OptimizerEstimator::default();
        let estimators: [(&str, &dyn CostEstimator, EstimatorKind); 2] = [
            ("O", &opt, EstimatorKind::Optimizer),
            (
                "W",
                &wd,
                EstimatorKind::WideDeep(defaults.widedeep(cfg.seed, cfg.epoch_scale)),
            ),
        ];

        let rl_cfg = defaults.rlview(cfg.seed, cfg.epoch_scale);
        let bigsub_cfg = BigSubConfig {
            iterations: rl_cfg.n1 + rl_cfg.n2,
            seed: cfg.seed,
            ..BigSubConfig::default()
        };

        let raw_cost: f64 = pre.query_costs.iter().sum();
        let raw_latency: f64 = pre.query_latencies.iter().sum();
        rows.push(vec![
            label.to_string(),
            "raw".into(),
            plans.len().to_string(),
            format!("{raw_cost:.4}"),
            format!("{raw_latency:.1}"),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);

        for (ename, est, ekind) in estimators {
            for (sname, selector) in [
                ("B", SelectorKind::BigSub(bigsub_cfg.clone())),
                ("R", SelectorKind::RlView(rl_cfg.clone())),
            ] {
                let sys = AutoViewSystem::new(
                    catalog.clone(),
                    plans.clone(),
                    AutoViewConfig {
                        pricing,
                        estimator: ekind.clone(),
                        selector,
                        max_training_pairs: cfg.train_pairs,
                        seed: cfg.seed,
                    },
                );
                let instance = sys.build_instance(&pre, est);
                let selection = sys.config.selector.run(&instance);
                let r = sys
                    .execute_selection(&pre, &selection)
                    .expect("deployment executes");
                rows.push(vec![
                    label.to_string(),
                    format!("{ename}&{sname}"),
                    format!("{}", r.num_rewritten),
                    format!("{:.4}", r.benefit),
                    format!("{:.1}", r.rewritten_latency),
                    r.num_views.to_string(),
                    format!("{:.4}", r.view_overhead),
                    format!("{:.2}", r.saved_ratio_percent),
                    format!("{:.4}", r.estimated_utility),
                ]);
            }
        }
    }

    println!("== Table V: end-to-end results ==\n");
    println!(
        "{}",
        render_table(
            &[
                "data", "method", "#(q|v)", "b_qv ($)", "latency(s)", "#m", "o_m ($)",
                "r_c (%)", "est.util ($)",
            ],
            &rows
        )
    );
    println!(
        "Expected shape (paper Table V): W&R attains the best saved-cost ratio r_c;\n\
         learned cost model (W&*) beats Optimizer-driven selection; more views\n\
         (#m) does not imply more savings."
    );
}
