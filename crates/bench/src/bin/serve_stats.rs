//! `serve stats` — stand up the demo serving stack, drive closed-loop
//! traffic through a re-optimization swap, and print the telemetry layer's
//! snapshot as a dashboard: per-tenant SLO windows and burn rates, the
//! estimator-residual summary, stored flight-recorder dumps, and the
//! result-cache counters.
//!
//! Modes (mutually exclusive, dashboard is the default):
//!   --json   print the full `ObsStats` snapshot as JSON
//!   --prom   print the Prometheus text exposition
//!   --dump   capture an on-demand flight-recorder dump and print it as JSON
//!
//! Knobs: `AV_SERVE_SEED` (default 70), `AV_SERVE_TENANTS` (default 4),
//! `AV_SERVE_STATS_CLIENTS` (default 8), `AV_SERVE_STATS_REQUESTS`
//! (default 64 per client).

use av_cost::OptimizerEstimator;
use av_online::LifecycleConfig;
use av_serve::{
    run_closed_loop, AdmissionConfig, ClosedLoopConfig, ObsConfig, ServeConfig, ViewServer,
};
use av_workload::cloud::mini;
use std::time::Duration;

fn envu(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let seed = envu("AV_SERVE_SEED", 70);
    let tenants = envu("AV_SERVE_TENANTS", 4) as usize;
    let clients = envu("AV_SERVE_STATS_CLIENTS", 8) as usize;
    let requests = envu("AV_SERVE_STATS_REQUESTS", 64) as usize;

    let w = mini(seed);
    let plans = w.plans();
    let server = ViewServer::new(
        w.catalog.clone(),
        Box::new(OptimizerEstimator::default()),
        ServeConfig {
            lifecycle: LifecycleConfig {
                byte_budget: usize::MAX,
                min_benefit_per_byte: 0.0,
                tenant_byte_budget: usize::MAX,
            },
            admission: AdmissionConfig {
                max_inflight_per_tenant: 32,
                max_queued_per_tenant: 256,
            },
            obs: ObsConfig::default(),
            ..ServeConfig::default()
        },
    );

    // Cold pass, a re-optimization swap, then a warm pass on the new
    // epoch: after this the SLO windows, residual store (post-swap
    // queries carry estimates) and flight ring all have real traffic.
    let cfg = ClosedLoopConfig {
        clients,
        requests_per_client: requests,
        think: Duration::from_micros(500),
        tenants,
    };
    let cold = run_closed_loop(&server, &plans, &cfg);
    let reopt = server.reoptimize(&plans, Some("tenant0")).expect("reoptimize");
    let warm = run_closed_loop(&server, &plans, &cfg);
    let stats = server.stats_snapshot();

    match mode.as_str() {
        "--json" => {
            println!("{}", serde_json::to_string_pretty(&stats).expect("stats to json"));
            return;
        }
        "--prom" => {
            print!("{}", server.prometheus_text());
            return;
        }
        "--dump" => {
            let dump = server.obs().dump_now("serve-stats");
            println!("{}", serde_json::to_string_pretty(&dump).expect("dump to json"));
            return;
        }
        "" => {}
        other => {
            eprintln!("unknown flag {other}; expected --json, --prom or --dump");
            std::process::exit(2);
        }
    }

    println!("== serve stats (seed {seed}, {clients} clients x {requests} requests, {tenants} tenants) ==");
    println!(
        "epoch {}  live views {}  cold {:.0} qps / warm {:.0} qps  recorded {}",
        reopt.epoch, reopt.live_views, cold.qps, warm.qps, stats.recorded
    );

    println!("\n-- per-tenant SLO --");
    let rows: Vec<Vec<String>> = stats
        .slo
        .iter()
        .map(|t| {
            vec![
                t.tenant.clone(),
                format!("{}", t.requests),
                format!("{}", t.shed_or_failed),
                format!("{}", t.p50_us),
                format!("{}", t.p95_us),
                format!("{}", t.p99_us),
                format!("{:.2}", t.latency_fast_burn),
                format!("{:.2}", t.latency_slow_burn),
                format!("{:.2}", t.availability_fast_burn),
                format!("{:.2}", t.availability_slow_burn),
                format!("{}", t.alerts_fired),
            ]
        })
        .collect();
    table(
        &[
            "tenant", "reqs", "shed", "p50us", "p95us", "p99us", "lat-fast", "lat-slow",
            "avail-fast", "avail-slow", "alerts",
        ],
        &rows,
    );

    println!(
        "\n-- estimator residuals ({} recorded, {} retained) --",
        stats.residuals.recorded, stats.residuals.retained
    );
    let agg_row = |label: String, a: &av_serve::ErrorAggregate| {
        let mean_q = if a.samples > 0 {
            a.q_sum / a.samples as f64
        } else {
            0.0
        };
        let over_pct = if a.samples > 0 {
            a.overestimates as f64 / a.samples as f64 * 100.0
        } else {
            0.0
        };
        vec![
            label,
            format!("{}", a.samples),
            format!("{mean_q:.2}"),
            format!("{:.2}", a.q_max),
            format!("{over_pct:.0}%"),
            format!("{}", a.degenerate),
        ]
    };
    let mut rows: Vec<Vec<String>> = stats
        .residuals
        .per_op
        .iter()
        .map(|(op, a)| agg_row(format!("op:{op}"), a))
        .collect();
    rows.extend(
        stats
            .residuals
            .per_view
            .iter()
            .map(|(view, a)| agg_row(format!("view:{view:08x}"), a)),
    );
    table(&["series", "samples", "mean-q", "max-q", "over", "degen"], &rows);

    if !stats.alerts.is_empty() {
        println!("\n-- SLO alerts --");
        for a in &stats.alerts {
            println!(
                "  {} {:?}: fast {:.1}x slow {:.1}x at {}ns",
                a.tenant, a.objective, a.fast_burn, a.slow_burn, a.at_nanos
            );
        }
    }

    println!("\n-- flight recorder --");
    if stats.dumps.is_empty() {
        println!("  no triggered dumps ({} suppressed)", stats.dumps_suppressed);
    } else {
        for d in &stats.dumps {
            println!("  {} at seq {} ({} records)", d.reason, d.seq_at, d.records);
        }
        println!("  {} further triggers suppressed", stats.dumps_suppressed);
    }

    let cache = server.cache_stats();
    let total = cache.hits + cache.misses;
    println!(
        "\n-- result cache --\n  {} hits / {} misses ({:.0}% hit rate), {} evictions ({} bytes shed)",
        cache.hits,
        cache.misses,
        if total > 0 {
            cache.hits as f64 / total as f64 * 100.0
        } else {
            0.0
        },
        cache.evictions,
        cache.evicted_bytes
    );

    let pool = server.pool_stats();
    let (memo_hits, memo_misses) = server.current().route_memo_stats();
    let memo_total = memo_hits + memo_misses;
    println!("\n-- scheduler pool --");
    table(
        &[
            "workers", "active", "queue", "jobs", "tasks", "steals", "busy ms", "p50 us", "p95 us",
        ],
        &[vec![
            pool.workers.to_string(),
            pool.active_workers.to_string(),
            pool.queue_depth.to_string(),
            pool.jobs.to_string(),
            pool.tasks.to_string(),
            pool.steals.to_string(),
            format!("{:.1}", pool.busy_nanos as f64 / 1e6),
            format!("{:.0}", pool.drain_nanos_p50 as f64 / 1e3),
            format!("{:.0}", pool.drain_nanos_p95 as f64 / 1e3),
        ]],
    );
    println!(
        "  route memo: {} hits / {} misses ({:.0}% hit rate)",
        memo_hits,
        memo_misses,
        if memo_total > 0 {
            memo_hits as f64 / memo_total as f64 * 100.0
        } else {
            0.0
        }
    );
    println!("\nre-run with --json, --prom or --dump for machine-readable output");
}
