//! Fig. 10 — convergence comparison: per-iteration utility of IterView vs
//! RLView on the WK1- and WK2-like workloads.
//!
//! The expected shape: IterView keeps oscillating (no memory across
//! iterations); RLView stabilizes once the DQN's replay memory warms up.
//! WK1's skewed benefits/overheads produce wider swings than WK2's.

use av_bench::{render_table, setup_experiment, BenchConfig};
use av_core::{table2_defaults, WorkloadKind};
use av_select::{IterView, IterViewConfig, RlView};

fn main() {
    let cfg = BenchConfig::from_env();
    for (which, kind) in [("wk1", WorkloadKind::Wk1), ("wk2", WorkloadKind::Wk2)] {
        let exp = setup_experiment(which, &cfg, usize::MAX);
        let defaults = table2_defaults(kind);
        let mut rl_cfg = defaults.rlview(cfg.seed, 1.0);
        // Keep the per-iteration granularity of the paper's Fig. 10 x-axis
        // (~n₁+n₂ points): a handful of flips per RL epoch.
        rl_cfg.max_steps_per_epoch = 6;
        let rl = RlView::run(&exp.actual, rl_cfg);

        // Match total iteration budgets: n = n₁ + n₂ (paper's protocol).
        let iter = IterView::new(
            &exp.actual,
            IterViewConfig {
                iterations: rl.trajectory.len(),
                seed: cfg.seed,
                freeze_after: None,
            },
        )
        .run();

        println!(
            "== Fig. 10 ({}): intermediate utility per iteration ==\n",
            which.to_uppercase()
        );
        let n = rl.trajectory.len();
        let step = (n / 16).max(1);
        let rows: Vec<Vec<String>> = (0..n)
            .step_by(step)
            .map(|i| {
                vec![
                    i.to_string(),
                    format!("{:.4}", iter.trajectory.get(i).copied().unwrap_or(f64::NAN)),
                    format!("{:.4}", rl.trajectory[i]),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["iteration", "IterView ($)", "RLView ($)"], &rows)
        );

        let tail = |t: &[f64]| {
            let tail = &t[t.len().saturating_sub(t.len() / 4).min(t.len() - 1)..];
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            let var =
                tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64;
            (mean, var.sqrt())
        };
        let (im, isd) = tail(&iter.trajectory);
        let (rm, rsd) = tail(&rl.trajectory);
        println!(
            "tail (last quarter): IterView mean ${im:.4} ± {isd:.4}, RLView mean ${rm:.4} ± {rsd:.4}"
        );
        println!(
            "best utility:        IterView ${:.4}, RLView ${:.4}\n",
            iter.utility, rl.utility
        );
    }
}
