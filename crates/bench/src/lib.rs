//! # av-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_redundancy` | Fig. 1 — redundant computation per project |
//! | `table1_workloads` | Table I — workload statistics |
//! | `table3_cost_estimation` | Table III — MAE/MAPE of all estimators |
//! | `fig9_topk` | Fig. 9 — utility-vs-k curves of the greedy methods |
//! | `table4_selection` | Table IV — optimal utility per selector + OPT |
//! | `fig10_convergence` | Fig. 10 — IterView vs RLView trajectories |
//! | `table5_end_to_end` | Table V — O&B / O&R / W&B / W&R end-to-end |
//! | `ablation_rlview` | extra: RLView component ablations |
//!
//! Scale knobs (environment variables, all optional):
//! - `AV_JOB_SCALE` — JOB data scale factor (default `0.05`);
//! - `AV_WK1_SCALE` / `AV_WK2_SCALE` — WK query-count scale factors
//!   (defaults `0.01` / `0.005`);
//! - `AV_EPOCH_SCALE` — multiplier on the paper's Table II training epochs
//!   and RL epochs (default `0.2`);
//! - `AV_TRAIN_PAIRS` — cap on executed ground-truth pairs (default `400`);
//! - `AV_SEED` — master seed (default `42`).
//!
//! Experiments never match the paper's absolute numbers (the substrate is a
//! simulator); the *shapes* — who wins, where curves peak, which method
//! converges — are the reproduction target (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use av_core::{collect_pair_truth, preprocess_and_measure, PairTruth, Preprocessed};
use av_engine::{Catalog, Pricing};
use av_ilp::MvsInstance;
use av_plan::PlanRef;
use av_workload::{cloud, job::job_workload, Workload};

/// Parsed scale knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub job_scale: f64,
    pub wk1_scale: f64,
    pub wk2_scale: f64,
    pub epoch_scale: f64,
    pub train_pairs: usize,
    pub seed: u64,
}

impl BenchConfig {
    /// Read configuration from the environment.
    pub fn from_env() -> BenchConfig {
        let f = |k: &str, d: f64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        BenchConfig {
            job_scale: f("AV_JOB_SCALE", 0.05),
            wk1_scale: f("AV_WK1_SCALE", 0.01),
            wk2_scale: f("AV_WK2_SCALE", 0.005),
            epoch_scale: f("AV_EPOCH_SCALE", 0.2),
            train_pairs: f("AV_TRAIN_PAIRS", 400.0) as usize,
            seed: f("AV_SEED", 42.0) as u64,
        }
    }
}

/// A fully-measured experiment context: workload, preprocessing, measured
/// pair ground truth and the *actual* benefit matrix.
pub struct Experiment {
    pub name: String,
    pub workload: Workload,
    /// Catalog including materialized candidate views.
    pub catalog: Catalog,
    pub plans: Vec<PlanRef>,
    pub pre: Preprocessed,
    pub pairs: Vec<PairTruth>,
    /// MVS instance with measured (actual) benefits.
    pub actual: MvsInstance,
    pub pricing: Pricing,
}

/// Build one of the three workloads by name (`job`, `wk1`, `wk2`).
pub fn build_workload(which: &str, cfg: &BenchConfig) -> Workload {
    match which {
        "job" => job_workload(cfg.job_scale, cfg.seed),
        "wk1" => cloud::wk1(cfg.wk1_scale, cfg.seed),
        "wk2" => cloud::wk2(cfg.wk2_scale, cfg.seed),
        other => panic!("unknown workload {other:?} (use job|wk1|wk2)"),
    }
}

/// Run pre-process + measurement + full pair-truth collection for a
/// workload and assemble the actual-benefit MVS instance.
pub fn setup_experiment(which: &str, cfg: &BenchConfig, pair_limit: usize) -> Experiment {
    let workload = build_workload(which, cfg);
    let pricing = Pricing::paper_defaults();
    let mut catalog = workload.catalog.clone();
    let plans = workload.plans();
    let pre = preprocess_and_measure(&mut catalog, &plans, pricing)
        .expect("generated workloads execute");
    let pairs = collect_pair_truth(&catalog, &pre, &plans, pair_limit, cfg.seed)
        .expect("pair truth collection");
    let actual = actual_instance(&pre, &pairs, plans.len());
    Experiment {
        name: which.to_string(),
        workload,
        catalog,
        plans,
        pre,
        pairs,
        actual,
        pricing,
    }
}

/// Assemble the MVS instance whose benefits are the *measured* ones.
pub fn actual_instance(
    pre: &Preprocessed,
    pairs: &[PairTruth],
    num_queries: usize,
) -> MvsInstance {
    let nc = pre.analysis.candidates.len();
    let mut benefits = vec![vec![0.0; nc]; num_queries];
    for p in pairs {
        benefits[p.query][p.candidate] = p.actual_benefit;
    }
    MvsInstance {
        benefits,
        overheads: pre.overheads.clone(),
        overlaps: pre.analysis.overlap_pairs.clone(),
    }
}

/// Render a simple aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = line(header.iter().map(|s| s.to_string()).collect());
    out.push('\n');
    out.push_str(&"-".repeat(out.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        let c = BenchConfig::from_env();
        assert!(c.job_scale > 0.0);
        assert!(c.train_pairs > 0);
    }

    #[test]
    fn mini_experiment_setup_works() {
        let cfg = BenchConfig {
            job_scale: 0.02,
            wk1_scale: 0.001,
            wk2_scale: 0.001,
            epoch_scale: 0.1,
            train_pairs: 20,
            seed: 1,
        };
        let exp = setup_experiment("wk1", &cfg, 20);
        assert!(!exp.plans.is_empty());
        assert_eq!(
            exp.actual.benefits.len(),
            exp.plans.len(),
            "benefit matrix covers all queries"
        );
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("long_header"));
        assert_eq!(t.lines().count(), 4);
    }
}
