//! Criterion micro-benchmarks for the hot paths behind the experiment
//! harnesses: parsing, equivalence analysis, execution, rewriting, the
//! Wide-Deep forward pass, one IterView iteration, and the exact per-query
//! ILP.

use av_cost::{CostEstimator, FeatureInput, WideDeep, WideDeepConfig};
use av_engine::{Executor, Pricing};
use av_equiv::{analyze_workload, canonicalize};
use av_ilp::MvsInstance;
use av_plan::parse_query;
use av_select::{IterView, IterViewConfig};
use av_workload::cloud::mini;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let sql = "select t1.user_id, count(*) as cnt from ( \
                 select t1.user_id, t1.memo from user_memo t1 \
                 where t1.dt = '1010' and t1.memo_type = 'pen' ) t1 \
               inner join ( \
                 select t2.user_id, t2.action from user_action t2 \
                 where t2.type = 1 and t2.dt = '1010' ) t2 \
               on t1.user_id = t2.user_id group by t1.user_id";
    c.bench_function("parse_fig2_query", |b| {
        b.iter(|| parse_query(black_box(sql)).expect("parses"))
    });
}

fn bench_canonicalize(c: &mut Criterion) {
    let plan = parse_query(
        "select a.x from t1 a join t2 b on a.id = b.id \
         where a.k = 1 and b.j = 2 and a.z > 5",
    )
    .expect("parses");
    c.bench_function("canonicalize_join_plan", |b| {
        b.iter(|| canonicalize(black_box(&plan)))
    });
}

fn bench_analyze_workload(c: &mut Criterion) {
    let w = mini(77);
    let plans = w.plans();
    c.bench_function("analyze_40_query_workload", |b| {
        b.iter(|| analyze_workload(black_box(&plans)))
    });
}

fn bench_execute(c: &mut Criterion) {
    let w = mini(78);
    let exec = Executor::new(&w.catalog, Pricing::paper_defaults());
    let plan = w.queries[0].plan.clone();
    c.bench_function("execute_generated_query", |b| {
        b.iter(|| exec.run(black_box(&plan)).expect("runs"))
    });
}

fn bench_widedeep_forward(c: &mut Criterion) {
    let w = mini(79);
    let plan = w.queries[0].plan.clone();
    let view = av_plan::enumerate_subqueries(&plan)
        .into_iter()
        .next_back()
        .expect("has subqueries")
        .plan;
    let input = FeatureInput {
        query: plan,
        view,
        tables: vec![],
    };
    let model = WideDeep::fit(
        &[(input.clone(), 1.0)],
        WideDeepConfig {
            epochs: 1,
            embed_dim: 8,
            lstm1_hidden: 8,
            lstm2_hidden: 8,
            ..WideDeepConfig::default()
        },
    );
    c.bench_function("widedeep_estimate", |b| {
        b.iter(|| model.estimate(black_box(&input)))
    });
}

fn random_instance(nq: usize, nc: usize) -> MvsInstance {
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    MvsInstance {
        benefits: (0..nq)
            .map(|_| {
                (0..nc)
                    .map(|_| {
                        if rng.gen_bool(0.3) {
                            rng.gen_range(0.1..5.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect(),
        overheads: (0..nc).map(|_| rng.gen_range(0.5..4.0)).collect(),
        overlaps: (0..nc / 2).map(|j| (j, j + nc / 2)).collect(),
    }
}

fn bench_iterview_iteration(c: &mut Criterion) {
    let m = random_instance(50, 30);
    c.bench_function("iterview_20_iterations_50q_30c", |b| {
        b.iter(|| {
            IterView::new(
                black_box(&m),
                IterViewConfig {
                    iterations: 20,
                    ..IterViewConfig::default()
                },
            )
            .run()
        })
    });
}

fn bench_y_opt(c: &mut Criterion) {
    let m = random_instance(1, 40);
    let z = vec![true; 40];
    c.bench_function("y_opt_exact_40_candidates", |b| {
        b.iter(|| m.solve_y_for_query(0, black_box(&z)))
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_canonicalize,
    bench_analyze_workload,
    bench_execute,
    bench_widedeep_forward,
    bench_iterview_iteration,
    bench_y_opt,
);
criterion_main!(benches);
