//! Core workload generator: seeded schema, data and query synthesis.
//!
//! Queries are built in the paper's Fig. 2 shape — per-table
//! `Filter → Project` subplans joined along foreign keys, optionally topped
//! with an aggregate — and share subplans by drawing from a per-table pool
//! of *base subqueries*. Pool reuse is what creates the redundant
//! computation the whole system exists to exploit.

use av_engine::{Catalog, Column, Table};
use av_plan::{AggExpr, AggFunc, Expr, PlanBuilder, PlanRef};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One generated query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Stable query id within the workload.
    pub id: usize,
    /// Project the query belongs to (cloud workloads; JOB has one project).
    pub project: usize,
    /// The logical plan.
    pub plan: PlanRef,
}

/// A generated workload: catalog plus queries.
pub struct Workload {
    pub name: String,
    pub catalog: Catalog,
    pub queries: Vec<QueryRecord>,
    pub num_projects: usize,
}

impl Workload {
    /// Plans only, in query order (the shape most analyses want).
    pub fn plans(&self) -> Vec<PlanRef> {
        self.queries.iter().map(|q| q.plan.clone()).collect()
    }
}

/// Knobs of the core generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    pub name: String,
    pub seed: u64,
    /// Number of projects; tables and queries are spread across them.
    pub projects: usize,
    /// Total number of tables.
    pub tables: usize,
    /// Rows per table are drawn uniformly from this range.
    pub rows_range: (usize, usize),
    /// Total number of queries.
    pub queries: usize,
    /// Size of the shared base-subquery pool per table.
    pub pool_per_table: usize,
    /// Probability that a query's table access reuses a pool subquery
    /// instead of a fresh random filter — the redundancy dial.
    pub share_probability: f64,
    /// Probability a query is topped with an aggregate.
    pub aggregate_probability: f64,
    /// Probability that a multi-table query reuses a *join template*: its
    /// first two accesses take fixed pool entries, so the whole two-table
    /// join subplan recurs across queries. Nested sharing is what creates
    /// overlapping candidates (a Join candidate containing a Project
    /// candidate).
    pub join_template_probability: f64,
    /// Number of joined tables per query drawn from this range.
    pub join_tables: (usize, usize),
    /// Benefit/overhead skew: exponent applied to table-size draws. Higher
    /// values produce more skewed workloads (the paper observes WK1 is more
    /// skewed than WK2).
    pub skew: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            name: "synthetic".into(),
            seed: 7,
            projects: 1,
            tables: 8,
            rows_range: (200, 2000),
            queries: 100,
            pool_per_table: 3,
            share_probability: 0.6,
            aggregate_probability: 0.5,
            join_template_probability: 0.0,
            join_tables: (1, 3),
            skew: 1.0,
        }
    }
}

/// Value domains used for filterable attribute columns.
const KIND_CARD: i64 = 6;
const DT_VALUES: [&str; 5] = ["1007", "1008", "1009", "1010", "1011"];

/// Generate a workload from a config.
pub fn generate(config: &GeneratorConfig) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut catalog = Catalog::new();

    // ---- tables ----------------------------------------------------------
    // Every table gets: id (unique), fk (into the previous table in the same
    // project, forming a chain the joins can walk), kind (low-cardinality
    // int), dt (low-cardinality string), val (float payload).
    let mut table_names: Vec<String> = Vec::with_capacity(config.tables);
    let mut table_project: Vec<usize> = Vec::with_capacity(config.tables);
    let mut table_rows: Vec<usize> = Vec::with_capacity(config.tables);
    // Size draws happen up front so the sequence of uniforms depends only on
    // the seed and table count, not on how many data values each table
    // consumes. Two configs differing only in `skew` therefore see the same
    // underlying u's, making skew's effect on the size spread monotone.
    let size_u: Vec<f64> = (0..config.tables)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect();
    for (t, &u) in size_u.iter().enumerate() {
        let project = t % config.projects.max(1);
        let name = format!("{}_p{}_t{}", config.name, project, t);
        let (lo, hi) = config.rows_range;
        // Skewed size draw: u^skew stretches the distribution's tail.
        let rows = lo + ((hi - lo) as f64 * u.powf(config.skew)) as usize;
        let parent_rows = table_rows.last().copied().unwrap_or(rows).max(1);
        let id: Vec<i64> = (0..rows as i64).collect();
        let fk: Vec<i64> = (0..rows)
            .map(|_| rng.gen_range(0..parent_rows as i64))
            .collect();
        let kind: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..KIND_CARD)).collect();
        let dt: Vec<String> = (0..rows)
            .map(|_| DT_VALUES[rng.gen_range(0..DT_VALUES.len())].to_string())
            .collect();
        let val: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..100.0)).collect();
        let table = Table::new(
            name.clone(),
            vec![
                ("id", Column::Int(id)),
                ("fk", Column::Int(fk)),
                ("kind", Column::Int(kind)),
                ("dt", Column::str(dt)),
                ("val", Column::Float(val)),
            ],
        )
        .expect("generated columns are rectangular");
        catalog.add_table(table).expect("generated names are unique");
        table_names.push(name);
        table_project.push(project);
        table_rows.push(rows);
    }

    // ---- base-subquery pool ----------------------------------------------
    // For each table, a pool of filtered projections whose filters are drawn
    // once; queries that sample the pool share these subplans verbatim
    // (alias included, so sharing is detectable both structurally and
    // semantically).
    #[derive(Clone)]
    struct PoolEntry {
        predicate: Expr,
        alias: String,
    }
    let mut pools: Vec<Vec<PoolEntry>> = Vec::with_capacity(config.tables);
    for t in 0..config.tables {
        let mut pool = Vec::with_capacity(config.pool_per_table);
        for p in 0..config.pool_per_table {
            let alias = format!("b{t}_{p}");
            let predicate = random_predicate(&mut rng, &alias);
            pool.push(PoolEntry { predicate, alias });
        }
        pools.push(pool);
    }

    // ---- queries -----------------------------------------------------------
    let mut queries = Vec::with_capacity(config.queries);
    let per_project: Vec<Vec<usize>> = (0..config.projects.max(1))
        .map(|p| {
            (0..config.tables)
                .filter(|&t| table_project[t] == p)
                .collect()
        })
        .collect();

    for qid in 0..config.queries {
        let project = qid % config.projects.max(1);
        let local = &per_project[project];
        // Fall back to any table if a project ended up empty.
        let local: &[usize] = if local.is_empty() {
            &(0..config.tables).collect::<Vec<_>>()
        } else {
            local
        };

        let (jlo, jhi) = config.join_tables;
        let n_tables = rng.gen_range(jlo..=jhi.max(jlo)).min(local.len());
        // Walk a chain of tables within the project.
        let start = rng.gen_range(0..local.len());
        let chain: Vec<usize> = (0..n_tables).map(|k| local[(start + k) % local.len()]).collect();
        // Join template: pin the first two accesses to fixed pool entries so
        // the two-table join subplan recurs verbatim across queries sharing
        // this `start`.
        let use_template =
            chain.len() >= 2 && rng.gen_bool(config.join_template_probability);

        let mut builders: Vec<(PlanBuilder, String)> = Vec::with_capacity(chain.len());
        for (pos, &t) in chain.iter().enumerate() {
            let (pred, alias) = if use_template && pos < 2 {
                let e = &pools[t][start % pools[t].len()];
                (e.predicate.clone(), e.alias.clone())
            } else if rng.gen_bool(config.share_probability) {
                let e = &pools[t][rng.gen_range(0..pools[t].len())];
                (e.predicate.clone(), e.alias.clone())
            } else {
                let alias = format!("q{qid}_{pos}");
                (random_predicate(&mut rng, &alias), alias)
            };
            let b = PlanBuilder::scan(&table_names[t], &alias)
                .filter(pred)
                .project(&[
                    (&format!("{alias}.id"), &format!("{alias}.id")),
                    (&format!("{alias}.fk"), &format!("{alias}.fk")),
                    (&format!("{alias}.val"), &format!("{alias}.val")),
                ]);
            builders.push((b, alias));
        }

        // Join the chain: each table joins its fk to the previous table's id.
        let mut iter = builders.into_iter();
        let (mut plan, mut prev_alias) = iter.next().expect("chain non-empty");
        for (b, alias) in iter {
            let on_left = format!("{alias}.fk");
            let on_right = format!("{prev_alias}.id");
            plan = b.join(plan, &[(on_left.as_str(), on_right.as_str())]);
            prev_alias = alias;
        }

        // Top: aggregate or projection.
        let plan = if rng.gen_bool(config.aggregate_probability) {
            let group = format!("{prev_alias}.fk");
            let agg = match rng.gen_range(0..3) {
                0 => AggExpr {
                    func: AggFunc::Count,
                    input: None,
                    output: "cnt".into(),
                },
                1 => AggExpr {
                    func: AggFunc::Sum,
                    input: Some(format!("{prev_alias}.val")),
                    output: "total".into(),
                },
                _ => AggExpr {
                    func: AggFunc::Max,
                    input: Some(format!("{prev_alias}.val")),
                    output: "peak".into(),
                },
            };
            plan.aggregate(&[group.as_str()], vec![agg]).build()
        } else {
            let keep = format!("{prev_alias}.id");
            let val = format!("{prev_alias}.val");
            plan.project(&[(keep.as_str(), "out_id"), (val.as_str(), "out_val")])
                .build()
        };

        queries.push(QueryRecord {
            id: qid,
            project,
            plan,
        });
    }

    Workload {
        name: config.name.clone(),
        catalog,
        queries,
        num_projects: config.projects.max(1),
    }
}

fn random_predicate(rng: &mut ChaCha8Rng, alias: &str) -> Expr {
    // Mix selectivities: highly-selective views are small and cheap to
    // scan (profitable to materialize); unselective ones barely shrink the
    // input, so their overhead can exceed their benefit. The mix is what
    // gives the paper's Fig. 9 utility curves their rise-then-fall shape.
    use av_plan::CmpOp;
    match rng.gen_range(0..4) {
        // ~1/30 of rows: kind = x AND dt = d.
        0 => Expr::col(format!("{alias}.kind"))
            .eq(Expr::int(rng.gen_range(0..KIND_CARD)))
            .and(Expr::col(format!("{alias}.dt")).eq(Expr::str(
                DT_VALUES[rng.gen_range(0..DT_VALUES.len())],
            ))),
        // ~1/6: kind = x.
        1 => Expr::col(format!("{alias}.kind")).eq(Expr::int(rng.gen_range(0..KIND_CARD))),
        // ~1/2 .. ~5/6: kind <= x.
        2 => Expr::col(format!("{alias}.kind"))
            .cmp(CmpOp::Le, Expr::int(rng.gen_range(2..KIND_CARD))),
        // ~4/5: dt != d — a view nearly as large as its base table.
        _ => Expr::col(format!("{alias}.dt")).cmp(
            CmpOp::Ne,
            Expr::str(DT_VALUES[rng.gen_range(0..DT_VALUES.len())]),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_engine::{Executor, Pricing};

    fn small() -> GeneratorConfig {
        GeneratorConfig {
            name: "test".into(),
            tables: 4,
            queries: 20,
            rows_range: (50, 200),
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(
                av_plan::Fingerprint::of(&x.plan),
                av_plan::Fingerprint::of(&y.plan)
            );
        }
    }

    #[test]
    fn every_query_executes() {
        let w = generate(&small());
        let exec = Executor::new(&w.catalog, Pricing::paper_defaults());
        for q in &w.queries {
            let r = exec.run(&q.plan).expect("generated query must execute");
            assert!(r.report.cost_dollars > 0.0);
        }
    }

    #[test]
    fn sharing_produces_duplicate_subplans() {
        let mut cfg = small();
        cfg.share_probability = 1.0;
        cfg.queries = 30;
        let w = generate(&cfg);
        let analysis = av_equiv::analyze_workload(&w.plans());
        assert!(
            analysis.equivalent_pairs > 0,
            "pool reuse must create equivalent subqueries"
        );
        let shared = analysis
            .candidates
            .iter()
            .filter(|c| c.query_frequency >= 2)
            .count();
        assert!(shared > 0, "some candidate must span multiple queries");
    }

    #[test]
    fn zero_sharing_still_generates_valid_queries() {
        let mut cfg = small();
        cfg.share_probability = 0.0;
        let w = generate(&cfg);
        assert_eq!(w.queries.len(), 20);
    }

    #[test]
    fn projects_partition_queries() {
        let mut cfg = small();
        cfg.projects = 3;
        cfg.tables = 9;
        cfg.queries = 30;
        let w = generate(&cfg);
        for q in &w.queries {
            assert!(q.project < 3);
        }
        let counts: Vec<usize> = (0..3)
            .map(|p| w.queries.iter().filter(|q| q.project == p).count())
            .collect();
        assert_eq!(counts, vec![10, 10, 10]);
    }

    #[test]
    fn skew_increases_size_spread() {
        let mut flat = small();
        flat.tables = 30;
        flat.skew = 1.0;
        let mut skewed = flat.clone();
        skewed.skew = 4.0;
        let spread = |w: &Workload| {
            let rows: Vec<usize> = w
                .catalog
                .table_names()
                .map(|n| w.catalog.table(n).expect("exists").row_count())
                .collect();
            let max = *rows.iter().max().expect("some") as f64;
            let min = *rows.iter().min().expect("some") as f64;
            max / min.max(1.0)
        };
        assert!(spread(&generate(&skewed)) >= spread(&generate(&flat)));
    }
}
