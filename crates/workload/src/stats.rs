//! Workload statistics — the rows of the paper's Table I.

use crate::gen::Workload;
use av_equiv::Analyzer;
use serde::{Deserialize, Serialize};

/// The Table I row for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadStats {
    pub name: String,
    pub projects: usize,
    pub tables: usize,
    pub queries: usize,
    pub subqueries: usize,
    pub equivalent_pairs: usize,
    /// `|Z|` — candidate subqueries (clusters spanning ≥ 2 queries).
    pub candidate_subqueries: usize,
    /// `|Q|` — queries that can use at least one candidate view.
    pub associated_queries: usize,
    pub overlapping_pairs: usize,
}

/// Compute Table I statistics for a workload by running the pre-process
/// pipeline (subquery extraction → equivalence clustering → overlap).
pub fn workload_stats(workload: &Workload) -> WorkloadStats {
    let mut analyzer = Analyzer::new();
    analyzer.min_query_frequency = 2;
    let analysis = analyzer.analyze(&workload.plans());
    WorkloadStats {
        name: workload.name.clone(),
        projects: workload.num_projects,
        tables: workload.catalog.len(),
        queries: workload.queries.len(),
        subqueries: analysis.total_subqueries,
        equivalent_pairs: analysis.equivalent_pairs,
        candidate_subqueries: analysis.candidates.len(),
        associated_queries: analysis.associated_queries(),
        overlapping_pairs: analysis.overlap_pairs.len(),
    }
}

impl WorkloadStats {
    /// Render as the paper's Table I column.
    pub fn render(&self) -> String {
        format!(
            "workload: {}\n# project / # table      {} / {}\n# query / # subquery     {} / {}\n# equivalent pairs       {}\n# candidate subquery |Z| {}\n# associated query |Q|   {}\n# overlapping pairs      {}",
            self.name,
            self.projects,
            self.tables,
            self.queries,
            self.subqueries,
            self.equivalent_pairs,
            self.candidate_subqueries,
            self.associated_queries,
            self.overlapping_pairs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::mini;

    #[test]
    fn stats_are_internally_consistent() {
        let w = mini(7);
        let s = workload_stats(&w);
        assert_eq!(s.queries, 40);
        assert!(s.subqueries >= s.queries, "every query has ≥1 subquery");
        assert!(s.associated_queries <= s.queries);
        assert!(
            s.overlapping_pairs
                <= s.candidate_subqueries * s.candidate_subqueries.saturating_sub(1) / 2
        );
    }

    #[test]
    fn render_mentions_all_counts() {
        let w = mini(7);
        let s = workload_stats(&w);
        let r = s.render();
        assert!(r.contains("|Z|"));
        assert!(r.contains(&format!("{}", s.queries)));
    }
}
