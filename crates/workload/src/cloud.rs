//! WK1/WK2-like cloud workloads.
//!
//! The paper's WK1 and WK2 are private Ant-Financial workloads
//! (21 projects / 389 tables / 38.6k queries and 25 projects / 435 tables /
//! 157.6k queries). The traces are unobtainable, so these presets generate
//! workloads with the same *shape* — project partitioning, table counts,
//! heavy subquery sharing, and WK1's heavier benefit/overhead skew — at a
//! configurable scale factor. `scale = 1/20` (the default used by the
//! benchmark harnesses) keeps end-to-end experiment runtimes in minutes.

use crate::gen::{generate, GeneratorConfig, Workload};

/// WK1-like preset: 21 projects, 389 tables, `38_600 × scale` queries,
/// higher skew (the paper's Fig. 10 notes WK1's benefits/overheads are more
/// skewed than WK2's).
pub fn wk1(scale: f64, seed: u64) -> Workload {
    generate(&GeneratorConfig {
        name: "WK1".into(),
        seed,
        projects: 21,
        tables: 389,
        rows_range: (100, 3000),
        queries: scaled(38_600, scale),
        pool_per_table: 3,
        share_probability: 0.55,
        aggregate_probability: 0.5,
        join_template_probability: 0.5,
        join_tables: (2, 3),
        skew: 3.0,
    })
}

/// WK2-like preset: 25 projects, 435 tables, `157_600 × scale` queries,
/// milder skew but more complex queries (wider joins).
pub fn wk2(scale: f64, seed: u64) -> Workload {
    generate(&GeneratorConfig {
        name: "WK2".into(),
        seed,
        projects: 25,
        tables: 435,
        rows_range: (100, 2000),
        queries: scaled(157_600, scale),
        pool_per_table: 4,
        share_probability: 0.5,
        aggregate_probability: 0.6,
        join_template_probability: 0.4,
        join_tables: (2, 4),
        skew: 1.5,
    })
}

/// A miniature cloud workload for tests and the quickstart example.
pub fn mini(seed: u64) -> Workload {
    generate(&GeneratorConfig {
        name: "mini".into(),
        seed,
        projects: 2,
        tables: 6,
        rows_range: (100, 600),
        queries: 40,
        pool_per_table: 2,
        share_probability: 0.7,
        aggregate_probability: 0.5,
        join_template_probability: 0.5,
        join_tables: (2, 2),
        skew: 1.0,
    })
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wk1_shape_matches_table_i() {
        let w = wk1(0.002, 5); // tiny scale for the test
        assert_eq!(w.num_projects, 21);
        assert_eq!(w.catalog.len(), 389);
        assert_eq!(w.queries.len(), 77);
    }

    #[test]
    fn wk2_has_more_projects_tables_queries_than_wk1() {
        let a = wk1(0.002, 5);
        let b = wk2(0.002, 5);
        assert!(b.num_projects > a.num_projects);
        assert!(b.catalog.len() > a.catalog.len());
        assert!(b.queries.len() > a.queries.len());
    }

    #[test]
    fn mini_workload_has_sharing() {
        let w = mini(3);
        let analysis = av_equiv::analyze_workload(&w.plans());
        assert!(analysis.equivalent_pairs > 0);
    }

    #[test]
    fn scale_floor_prevents_empty_workloads() {
        let w = wk1(0.0, 1);
        assert_eq!(w.queries.len(), 10);
    }
}
