//! # av-workload — workload substrates
//!
//! Deterministic generators for the three workloads of the paper's
//! evaluation (Table I):
//!
//! - **JOB** ([`job::job_workload`]): an IMDB-flavoured 21-table schema with
//!   113 multi-join query templates plus one predicate-perturbed variant
//!   each (226 queries), mirroring the paper's trick for injecting
//!   redundant computation into the Join Order Benchmark.
//! - **WK1 / WK2** ([`cloud::wk1`], [`cloud::wk2`]): project-partitioned
//!   analytical workloads in the shape of the Ant-Financial traces —
//!   many projects, hundreds of tables, heavy subquery sharing. The real
//!   traces are proprietary; the generators reproduce their *statistics*
//!   (Table I's row shape) at a configurable scale factor.
//!
//! All generation is seeded: the same seed yields byte-identical catalogs
//! and plans.

#![forbid(unsafe_code)]

pub mod cloud;
pub mod gen;
pub mod job;
pub mod redundancy;
pub mod stats;

pub use gen::{GeneratorConfig, QueryRecord, Workload};
pub use redundancy::{project_redundancy, RedundancyReport};
pub use stats::{workload_stats, WorkloadStats};
