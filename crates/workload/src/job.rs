//! The JOB-like workload: an IMDB-flavoured schema and the paper's
//! 113 + 113 query construction.
//!
//! The paper uses the real IMDB database (3.7 GB) with the 113 queries of
//! the Join Order Benchmark, then "for making more redundant computation"
//! generates one extra query per raw query by modifying predicates —
//! 226 queries total (Table I). We reproduce the *structure*: 21 tables
//! named after IMDB's, 113 seeded multi-join templates, and one
//! literal-perturbed variant per template.

use crate::gen::{QueryRecord, Workload};
use av_engine::{Catalog, Column, Table};
use av_plan::{AggExpr, AggFunc, Expr, PlanBuilder, PlanNode, PlanRef, Value};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The 21 IMDB tables of JOB.
pub const IMDB_TABLES: [&str; 21] = [
    "title",
    "name",
    "cast_info",
    "char_name",
    "movie_companies",
    "company_name",
    "company_type",
    "movie_info",
    "info_type",
    "movie_info_idx",
    "movie_keyword",
    "keyword",
    "kind_type",
    "link_type",
    "movie_link",
    "aka_name",
    "aka_title",
    "person_info",
    "role_type",
    "comp_cast_type",
    "complete_cast",
];

/// Foreign-key edges `(child, fk_col, parent)` of the IMDB-like schema.
/// Every child's `fk_col` references `parent.id`.
const FK_EDGES: [(&str, &str, &str); 12] = [
    ("cast_info", "movie_id", "title"),
    ("cast_info", "person_id", "name"),
    ("movie_companies", "movie_id", "title"),
    ("movie_companies", "company_id", "company_name"),
    ("movie_info", "movie_id", "title"),
    ("movie_info_idx", "movie_id", "title"),
    ("movie_keyword", "movie_id", "title"),
    ("movie_keyword", "keyword_id", "keyword"),
    ("movie_link", "movie_id", "title"),
    ("aka_title", "movie_id", "title"),
    ("person_info", "person_id", "name"),
    ("complete_cast", "movie_id", "title"),
];

/// Base row counts at scale 1.0 (fact tables large, dimensions small).
fn base_rows(table: &str) -> usize {
    match table {
        "title" | "name" => 4000,
        "cast_info" => 12000,
        "movie_info" | "movie_keyword" => 8000,
        "movie_companies" | "movie_info_idx" | "person_info" => 5000,
        "movie_link" | "aka_title" | "aka_name" | "complete_cast" => 2000,
        "char_name" | "keyword" | "company_name" => 1500,
        _ => 60, // the small type/dimension tables
    }
}

/// Generate the JOB-like workload. `scale` multiplies table sizes;
/// `seed` drives all randomness.
pub fn job_workload(scale: f64, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut catalog = Catalog::new();

    for table in IMDB_TABLES {
        let rows = ((base_rows(table) as f64 * scale) as usize).max(20);
        let mut cols: Vec<(&str, Column)> = vec![("id", Column::Int((0..rows as i64).collect()))];
        // FK columns this table carries.
        let fk_cols: Vec<&str> = FK_EDGES
            .iter()
            .filter(|(c, _, _)| *c == table)
            .map(|(_, f, _)| *f)
            .collect();
        let mut fk_data: Vec<(&str, Column)> = Vec::new();
        for f in fk_cols {
            let parent = FK_EDGES
                .iter()
                .find(|(c, fc, _)| *c == table && *fc == f)
                .map(|(_, _, p)| *p)
                .expect("edge exists");
            let parent_rows = ((base_rows(parent) as f64 * scale) as usize).max(20) as i64;
            fk_data.push((
                f,
                Column::Int((0..rows).map(|_| rng.gen_range(0..parent_rows)).collect()),
            ));
        }
        cols.extend(fk_data);
        // Filterable attributes shared across all tables.
        cols.push((
            "kind_id",
            Column::Int((0..rows).map(|_| rng.gen_range(0..7i64)).collect()),
        ));
        cols.push((
            "production_year",
            Column::Int((0..rows).map(|_| rng.gen_range(1950..2020i64)).collect()),
        ));
        cols.push((
            "note",
            Column::str(
                (0..rows)
                    .map(|_| {
                        ["(producer)", "(writer)", "(uncredited)", "(voice)", ""]
                            [rng.gen_range(0..5)]
                        .to_string()
                    })
                    .collect(),
            ),
        ));
        catalog
            .add_table(Table::new(table, cols).expect("rectangular"))
            .expect("unique names");
    }

    // ---- 113 join templates ------------------------------------------------
    // Each template: a chain through the FK graph rooted at a fact table,
    // per-table filters drawn from a shared pool (creating cross-template
    // sharing), and a Project or Aggregate on top.
    let mut pool_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf00d);
    let shared_filters: Vec<(i64, i64)> = (0..10)
        .map(|_| {
            (
                pool_rng.gen_range(0..7i64),
                pool_rng.gen_range(1950..2015i64),
            )
        })
        .collect();

    let mut queries = Vec::with_capacity(226);
    for template in 0..113 {
        let plan = build_template(template, &shared_filters, &mut rng);
        queries.push(QueryRecord {
            id: queries.len(),
            project: 0,
            plan: plan.clone(),
        });
        // The perturbed variant: one literal changed.
        let variant = perturb_literal(&plan, &mut rng);
        queries.push(QueryRecord {
            id: queries.len(),
            project: 0,
            plan: variant,
        });
    }

    Workload {
        name: "JOB".into(),
        catalog,
        queries,
        num_projects: 1,
    }
}

fn build_template(
    template: usize,
    shared_filters: &[(i64, i64)],
    rng: &mut ChaCha8Rng,
) -> PlanRef {
    // Choose a fact edge and a shared child filter from a small pool: the
    // (edge, filter) combo is the reusable subquery, so the pool size caps
    // the candidate count near the paper's |Z| = 28.
    let combo = template % 24;
    let e1 = FK_EDGES[combo % FK_EDGES.len()];
    let (kind, year) = shared_filters[combo % shared_filters.len()];

    // Child subplan: filtered projection from the pool — the shared piece.
    let child_alias = format!("c{combo}");
    let child = PlanBuilder::scan(e1.0, &child_alias)
        .filter(
            Expr::col(format!("{child_alias}.kind_id"))
                .eq(Expr::int(kind))
                .and(
                    Expr::col(format!("{child_alias}.production_year"))
                        .cmp(av_plan::CmpOp::Gt, Expr::int(year)),
                ),
        )
        .project(&[
            (
                &format!("{child_alias}.{}", e1.1),
                &format!("{child_alias}.{}", e1.1),
            ),
            (
                &format!("{child_alias}.kind_id"),
                &format!("{child_alias}.kind_id"),
            ),
        ]);

    // Parent subplan. Every third template draws its parent filter from a
    // small pool, so the *whole join* recurs across templates (with
    // different tops) — that containment is what creates the paper's
    // overlapping candidate pairs.
    let shared_join = template.is_multiple_of(3);
    let parent_lit = if shared_join {
        1950 + (template as i64 % 8) * 9
    } else {
        1950 + (template as i64 * 7) % 97
    };
    let parent_alias = if shared_join {
        format!("pp{}", template % 8)
    } else {
        format!("p{template}")
    };
    let parent = PlanBuilder::scan(e1.2, &parent_alias)
        .filter(
            Expr::col(format!("{parent_alias}.production_year"))
                .cmp(av_plan::CmpOp::Gt, Expr::int(parent_lit)),
        )
        .project(&[
            (
                &format!("{parent_alias}.id"),
                &format!("{parent_alias}.id"),
            ),
            (
                &format!("{parent_alias}.kind_id"),
                &format!("{parent_alias}.kind_id"),
            ),
        ]);

    let join = child.join(
        parent,
        &[(
            &format!("{child_alias}.{}", e1.1),
            &format!("{parent_alias}.id"),
        )],
    );

    // Shared-join templates vary the top so the recurring join sits under
    // distinct queries; the rest split half aggregate, half project.
    if shared_join {
        let agg = match (template / 24) % 3 {
            0 => AggExpr {
                func: AggFunc::Count,
                input: None,
                output: "cnt".into(),
            },
            1 => AggExpr {
                func: AggFunc::Sum,
                input: Some(format!("{parent_alias}.id")),
                output: "sum_id".into(),
            },
            _ => AggExpr {
                func: AggFunc::Max,
                input: Some(format!("{child_alias}.kind_id")),
                output: "max_kind".into(),
            },
        };
        join.aggregate(&[&format!("{parent_alias}.kind_id")], vec![agg])
            .build()
    } else if template.is_multiple_of(2) {
        join.aggregate(
            &[&format!("{parent_alias}.kind_id")],
            vec![AggExpr {
                func: AggFunc::Count,
                input: None,
                output: "cnt".into(),
            }],
        )
        .build()
    } else {
        let _ = rng;
        join.project(&[
            (&format!("{parent_alias}.id"), "movie"),
            (&format!("{child_alias}.kind_id"), "kind"),
        ])
        .build()
    }
}

/// Produce the paper's "manually modified predicate" variant: walk the plan
/// and nudge the *last* integer literal found in a filter — the
/// template-specific parent predicate — so the variant still shares the
/// pooled child subquery with its template.
pub fn perturb_literal(plan: &PlanRef, rng: &mut ChaCha8Rng) -> PlanRef {
    let delta = rng.gen_range(1..4i64);
    // First pass: count int literals.
    let mut total = 0usize;
    rewrite(plan, &mut |e: &Expr| {
        if matches!(e, Expr::Literal(Value::Int(_))) {
            total += 1;
        }
        None
    });
    // Second pass: replace the last one.
    let mut seen = 0usize;
    rewrite(plan, &mut |e: &Expr| {
        if let Expr::Literal(Value::Int(v)) = e {
            seen += 1;
            if seen == total {
                return Some(Expr::Literal(Value::Int(v + delta)));
            }
        }
        None
    })
}

/// Structural map over a plan's filter predicates.
fn rewrite(plan: &PlanRef, subst: &mut dyn FnMut(&Expr) -> Option<Expr>) -> PlanRef {
    match plan.as_ref() {
        PlanNode::TableScan { .. } => plan.clone(),
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: rewrite(input, subst),
            predicate: rewrite_expr(predicate, subst),
        }
        .into_ref(),
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: rewrite(input, subst),
            exprs: exprs.clone(),
        }
        .into_ref(),
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => PlanNode::Join {
            left: rewrite(left, subst),
            right: rewrite(right, subst),
            on: on.clone(),
            join_type: *join_type,
        }
        .into_ref(),
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: rewrite(input, subst),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        }
        .into_ref(),
    }
}

fn rewrite_expr(e: &Expr, subst: &mut dyn FnMut(&Expr) -> Option<Expr>) -> Expr {
    if let Some(new) = subst(e) {
        return new;
    }
    match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(rewrite_expr(left, subst)),
            right: Box::new(rewrite_expr(right, subst)),
        },
        Expr::And(v) => Expr::And(v.iter().map(|e| rewrite_expr(e, subst)).collect()),
        Expr::Or(v) => Expr::Or(v.iter().map(|e| rewrite_expr(e, subst)).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(rewrite_expr(inner, subst))),
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(rewrite_expr(left, subst)),
            right: Box::new(rewrite_expr(right, subst)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_engine::{Executor, Pricing};

    #[test]
    fn has_21_tables_and_226_queries() {
        let w = job_workload(0.05, 1);
        assert_eq!(w.catalog.len(), 21);
        assert_eq!(w.queries.len(), 226);
    }

    #[test]
    fn variants_differ_from_templates() {
        let w = job_workload(0.05, 1);
        for pair in w.queries.chunks(2) {
            assert_ne!(
                av_plan::Fingerprint::of(&pair[0].plan),
                av_plan::Fingerprint::of(&pair[1].plan),
                "variant must differ from its template"
            );
        }
    }

    #[test]
    fn queries_execute_and_have_positive_cost() {
        let w = job_workload(0.05, 1);
        let exec = Executor::new(&w.catalog, Pricing::paper_defaults());
        for q in w.queries.iter().step_by(20) {
            let r = exec.run(&q.plan).expect("JOB query executes");
            assert!(r.report.cost_dollars > 0.0);
        }
    }

    #[test]
    fn workload_contains_shared_subqueries() {
        let w = job_workload(0.05, 1);
        let analysis = av_equiv::analyze_workload(&w.plans());
        assert!(analysis.equivalent_pairs > 100, "JOB-like sharing expected");
        let shared = analysis
            .candidates
            .iter()
            .filter(|c| c.query_frequency >= 2)
            .count();
        assert!(shared >= 10, "got {shared} shared candidates");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = job_workload(0.05, 3);
        let b = job_workload(0.05, 3);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(
                av_plan::Fingerprint::of(&x.plan),
                av_plan::Fingerprint::of(&y.plan)
            );
        }
    }

    #[test]
    fn perturb_changes_exactly_one_literal() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let plan = PlanBuilder::scan("t", "a")
            .filter(
                Expr::col("a.x")
                    .eq(Expr::int(5))
                    .and(Expr::col("a.y").eq(Expr::int(7))),
            )
            .project(&[("a.x", "x")])
            .build();
        let v = perturb_literal(&plan, &mut rng);
        let count_lits = |p: &PlanRef| {
            let mut lits = Vec::new();
            p.visit_preorder(&mut |n| {
                if let PlanNode::Filter { predicate, .. } = n {
                    collect_ints(predicate, &mut lits);
                }
            });
            lits
        };
        fn collect_ints(e: &Expr, out: &mut Vec<i64>) {
            match e {
                Expr::Literal(Value::Int(i)) => out.push(*i),
                Expr::Cmp { left, right, .. } => {
                    collect_ints(left, out);
                    collect_ints(right, out);
                }
                Expr::And(v) | Expr::Or(v) => v.iter().for_each(|e| collect_ints(e, out)),
                Expr::Not(e) => collect_ints(e, out),
                _ => {}
            }
        }
        let orig = count_lits(&plan);
        let pert = count_lits(&v);
        assert_eq!(orig.len(), pert.len());
        let diffs: Vec<usize> = orig
            .iter()
            .zip(&pert)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs, vec![orig.len() - 1], "only the last literal changes");
    }
}
