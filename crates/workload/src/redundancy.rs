//! Redundant-computation profiling — the paper's Fig. 1.
//!
//! A query *includes redundant computation* when one of its subqueries is
//! equivalent to a subquery of a different query (computing it twice is the
//! redundancy a materialized view removes). Fig. 1(a) counts total vs
//! redundant queries per project; Fig. 1(b) plots the cumulative percentage
//! of redundant queries as projects accumulate.

use crate::gen::Workload;
use av_equiv::analyze_workload;
use serde::{Deserialize, Serialize};

/// Per-project and cumulative redundancy statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RedundancyReport {
    /// `(project, total queries, redundant queries)` — Fig. 1(a).
    pub per_project: Vec<(usize, usize, usize)>,
    /// Cumulative redundant percentage after the first `k+1` projects —
    /// Fig. 1(b).
    pub cumulative_percent: Vec<f64>,
}

/// Profile a workload's redundancy.
pub fn project_redundancy(workload: &Workload) -> RedundancyReport {
    let plans = workload.plans();
    let analysis = analyze_workload(&plans);

    // A query is redundant iff it matches a candidate whose cluster spans
    // ≥ 2 distinct queries.
    let multi_query: Vec<bool> = analysis
        .candidates
        .iter()
        .map(|c| c.query_frequency >= 2)
        .collect();
    let redundant: Vec<bool> = analysis
        .query_matches
        .iter()
        .map(|ms| ms.iter().any(|m| multi_query[m.candidate]))
        .collect();

    let mut per_project = Vec::with_capacity(workload.num_projects);
    for p in 0..workload.num_projects {
        let total = workload.queries.iter().filter(|q| q.project == p).count();
        let red = workload
            .queries
            .iter()
            .filter(|q| q.project == p && redundant[q.id])
            .count();
        per_project.push((p, total, red));
    }

    let mut cumulative_percent = Vec::with_capacity(workload.num_projects);
    let mut cum_total = 0usize;
    let mut cum_red = 0usize;
    for &(_, total, red) in &per_project {
        cum_total += total;
        cum_red += red;
        cumulative_percent.push(if cum_total == 0 {
            0.0
        } else {
            100.0 * cum_red as f64 / cum_total as f64
        });
    }

    RedundancyReport {
        per_project,
        cumulative_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::mini;
    use crate::gen::{generate, GeneratorConfig};

    #[test]
    fn shared_workload_shows_redundancy() {
        let w = mini(11);
        let r = project_redundancy(&w);
        let total_red: usize = r.per_project.iter().map(|&(_, _, red)| red).sum();
        assert!(total_red > 0, "pool sharing must create redundant queries");
        assert_eq!(r.per_project.len(), w.num_projects);
    }

    #[test]
    fn redundant_never_exceeds_total() {
        let w = mini(12);
        let r = project_redundancy(&w);
        for &(_, total, red) in &r.per_project {
            assert!(red <= total);
        }
    }

    #[test]
    fn cumulative_percent_in_range() {
        let w = mini(13);
        let r = project_redundancy(&w);
        for &p in &r.cumulative_percent {
            assert!((0.0..=100.0).contains(&p));
        }
        assert_eq!(r.cumulative_percent.len(), w.num_projects);
    }

    #[test]
    fn sharing_dial_controls_redundancy() {
        // Fresh filters still collide by chance (the literal domains are
        // small), so compare the dial's extremes rather than an absolute.
        let config = |share: f64| GeneratorConfig {
            name: "dial".into(),
            seed: 14,
            share_probability: share,
            pool_per_table: 1,
            tables: 6,
            queries: 30,
            rows_range: (50, 100),
            ..GeneratorConfig::default()
        };
        let red_count = |share: f64| {
            let w = generate(&config(share));
            let r = project_redundancy(&w);
            r.per_project.iter().map(|&(_, _, x)| x).sum::<usize>()
        };
        assert!(
            red_count(0.0) < red_count(1.0),
            "sharing probability must increase redundancy"
        );
    }
}
