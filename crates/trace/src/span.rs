//! Hierarchical spans: enter/exit guards, nesting, and per-span wall time.
//!
//! A [`Tracer`] owns one logical span stack plus a [`Metrics`] registry.
//! Opening a span ([`Tracer::span`]) pushes onto the stack; dropping the
//! returned [`SpanGuard`] closes it and records its end time. Children
//! opened while a guard is live are parented under it, so a full
//! `AutoViewSystem` run yields a tree: pipeline phases at the root,
//! per-operator executor spans at the leaves.
//!
//! The tracer is cheap to clone (`Arc` inside) and thread-safe, but the
//! span *stack* is one logical stack: open spans from the orchestrating
//! thread; worker threads should record into [`Tracer::metrics`] instead.
//! A disabled tracer ([`Tracer::disabled`]) makes every call a near-no-op
//! so instrumented hot paths stay within the <5% overhead budget.

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{Metrics, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded span. Spans land here when their guard drops; instants
/// have `end_nanos == start_nanos`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Dense id: index into the snapshot's span vector.
    pub id: u64,
    /// Enclosing span at open time, if any.
    pub parent: Option<u64>,
    pub name: String,
    pub start_nanos: u64,
    pub end_nanos: u64,
    /// Numeric attributes (`rows`, `bytes`, `ops`, losses, …).
    pub num_attrs: Vec<(String, f64)>,
    /// String attributes (operator detail, table names, …).
    pub str_attrs: Vec<(String, String)>,
}

impl SpanRecord {
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    pub fn num_attr(&self, key: &str) -> Option<f64> {
        self.num_attrs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Everything a run produced: the span tree plus the metrics registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSnapshot {
    pub spans: Vec<SpanRecord>,
    pub metrics: MetricsSnapshot,
}

impl TraceSnapshot {
    /// Distinct names among root spans (no parent) — the run's phases.
    pub fn phase_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Pretty JSON for the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

/// How many numeric attributes a guard buffers on the stack. No current
/// instrumentation site attaches more (exec: rows/bytes/ops; RL episodes:
/// epoch/epsilon/steps/reward); extras spill into a Vec.
const INLINE_NUM_ATTRS: usize = 4;

/// Sentinel for "no enclosing span" in the `current` atomic and in the
/// packed records' `parent` field.
const NO_SPAN: u32 = u32::MAX;

/// Fixed-size (48-byte) packed span record. Attributes live in separate
/// append-only streams keyed by span id, so the per-span log write stays
/// within one cache line regardless of how many attributes a span carries —
/// that, not lock cost, is what keeps the traced executor inside the <5%
/// overhead budget.
struct RawSpan {
    id: u32,
    /// [`NO_SPAN`] when the span is a root.
    parent: u32,
    name: &'static str,
    start_nanos: u64,
    end_nanos: u64,
}

struct NumEntry {
    span: u32,
    key: &'static str,
    value: f64,
}

/// Attribute-value string with inline storage. Nearly every value recorded
/// on a hot span is a short table or operator name; storing those in-place
/// keeps `record_str` allocation-free, which matters at one scan span per
/// query in the traced replay path. Longer values spill to the heap.
enum AttrStr {
    Inline { len: u8, bytes: [u8; 22] },
    Heap(Box<str>),
}

impl AttrStr {
    fn new(s: &str) -> AttrStr {
        if s.len() <= 22 {
            let mut bytes = [0u8; 22];
            bytes[..s.len()].copy_from_slice(s.as_bytes());
            AttrStr::Inline {
                len: s.len() as u8,
                bytes,
            }
        } else {
            AttrStr::Heap(s.into())
        }
    }

    fn as_str(&self) -> &str {
        match self {
            // Whole-str byte copies can't split a char boundary.
            AttrStr::Inline { len, bytes } => {
                std::str::from_utf8(&bytes[..*len as usize]).expect("attr bytes are utf8")
            }
            AttrStr::Heap(s) => s,
        }
    }
}

struct StrEntry {
    span: u32,
    key: &'static str,
    value: AttrStr,
}

/// Closed spans (in close order; snapshots re-sort by id = open order) plus
/// the packed attribute streams.
#[derive(Default)]
struct Log {
    spans: Vec<RawSpan>,
    num_attrs: Vec<NumEntry>,
    str_attrs: Vec<StrEntry>,
    /// Retired [`SpanBuffer`] states, capacity intact. Flushing a buffer
    /// appends its records (ids remapped to global) and parks the emptied
    /// vectors here; the next `Tracer::buffer` call pops one instead of
    /// allocating. A traced query therefore costs zero heap allocations
    /// once the pool is warm — per-query malloc churn, not lock cost, is
    /// what used to separate the traced path from the untraced one.
    free: Vec<BufState>,
}

/// Clock dispatch. The production clock is stored unboxed so the two reads
/// per span are direct (well-predicted) calls instead of virtual ones;
/// injected clocks ([`Tracer::with_clock`]) take the dynamic arm.
enum ClockSource {
    Monotonic(MonotonicClock),
    Injected(Box<dyn Clock>),
}

impl ClockSource {
    #[inline]
    fn now_nanos(&self) -> u64 {
        match self {
            ClockSource::Monotonic(c) => c.now_nanos(),
            ClockSource::Injected(c) => c.now_nanos(),
        }
    }
}

struct Inner {
    enabled: bool,
    clock: ClockSource,
    /// Next span id (ids are assigned at open, so id order = open order).
    next_id: AtomicU32,
    /// Innermost open span, [`NO_SPAN`] at the root. Guards save the value
    /// they displace and restore it on drop, so no stack is needed and the
    /// hot path stays lock-free until the close-time log push.
    current: AtomicU32,
    log: Mutex<Log>,
    metrics: Metrics,
}

/// Handle to the trace of one run. Clone freely; clones share state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .finish()
    }
}

impl Tracer {
    /// An enabled tracer on real (monotonic) time.
    pub fn new() -> Tracer {
        Tracer::build(true, ClockSource::Monotonic(MonotonicClock::new()))
    }

    /// An enabled tracer on the given clock (use [`crate::TestClock`] in
    /// tests for reproducible durations).
    pub fn with_clock(clock: Box<dyn Clock>) -> Tracer {
        Tracer::build(true, ClockSource::Injected(clock))
    }

    /// A tracer whose every operation is a near-no-op: spans are never
    /// recorded and metrics calls return immediately. Instrumented code can
    /// hold one unconditionally and stay off the hot path.
    pub fn disabled() -> Tracer {
        Tracer::build(false, ClockSource::Injected(Box::new(crate::clock::TestClock::new())))
    }

    fn build(enabled: bool, clock: ClockSource) -> Tracer {
        let log = if enabled {
            // Head off early realloc churn; a full pipeline run records a
            // few thousand spans, mostly executor operators with three
            // numeric attributes each.
            Log {
                spans: Vec::with_capacity(1024),
                num_attrs: Vec::with_capacity(4096),
                str_attrs: Vec::with_capacity(64),
                free: Vec::new(),
            }
        } else {
            Log::default()
        };
        Tracer {
            inner: Arc::new(Inner {
                enabled,
                clock,
                next_id: AtomicU32::new(0),
                current: AtomicU32::new(NO_SPAN),
                log: Mutex::new(log),
                metrics: Metrics::new(),
            }),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The tracer's metrics registry. A disabled tracer still accepts
    /// metric writes — counters like cache hit/miss stay meaningful in
    /// un-traced runs; only span recording is suppressed.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Seconds since the tracer's clock origin (for callers that need a raw
    /// duration without opening a span).
    pub fn now_seconds(&self) -> f64 {
        self.inner.clock.now_nanos() as f64 / 1e9
    }

    /// Nanoseconds since the tracer's clock origin — the raw form of
    /// [`Tracer::now_seconds`], used by telemetry that stores integer
    /// timestamps (flight-recorder records, SLO window rotation).
    pub fn now_nanos(&self) -> u64 {
        self.inner.clock.now_nanos()
    }

    /// Open a span named `name`, parented under the innermost open span.
    /// Dropping the guard closes it.
    ///
    /// The open path is lock-free: an id allocation and a swap of the
    /// `current` pointer. All open-span state (name, parent, start time)
    /// rides in the guard and is committed to the record log in one lock
    /// acquisition at close.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.inner.enabled {
            return SpanGuard {
                tracer: None,
                id: 0,
                prev: NO_SPAN,
                name,
                start_nanos: 0,
                attrs: RefCell::new(GuardAttrs::default()),
            };
        }
        let start_nanos = self.inner.clock.now_nanos();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let prev = self.inner.current.swap(id, Ordering::Relaxed);
        SpanGuard {
            tracer: Some(self),
            id,
            prev,
            name,
            start_nanos,
            attrs: RefCell::new(GuardAttrs::default()),
        }
    }

    /// Record a zero-duration marker event (e.g. `online.drift_trigger`)
    /// under the innermost open span.
    pub fn instant(&self, name: &'static str) {
        if !self.inner.enabled {
            return;
        }
        let now = self.inner.clock.now_nanos();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = self.inner.current.load(Ordering::Relaxed);
        let mut log = self.inner.log.lock().expect("span log poisoned");
        log.spans.push(RawSpan {
            id,
            parent,
            name,
            start_nanos: now,
            end_nanos: now,
        });
    }

    /// Run `f` inside a span named `name`, and accumulate its duration into
    /// the metrics registry's timing of the same name. The timing is
    /// recorded even when span recording is disabled, so phase totals stay
    /// available in un-traced runs.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = self.inner.clock.now_nanos();
        let guard = self.span(name);
        let out = f();
        drop(guard);
        let elapsed = self.inner.clock.now_nanos().saturating_sub(start);
        self.inner
            .metrics
            .record_seconds(name, elapsed as f64 / 1e9);
        out
    }

    /// Number of spans opened so far (ids are dense, so the next-id counter
    /// is the count — including spans whose guards are still live).
    pub fn span_count(&self) -> usize {
        self.inner.next_id.load(Ordering::Relaxed) as usize
    }

    /// Start an unsynchronized span buffer for a traced hot region (e.g.
    /// one executor run). Spans recorded through the buffer touch no locks
    /// or shared cache lines; the whole batch is committed to this tracer's
    /// log in one lock acquisition when the buffer drops, and the emptied
    /// vectors are recycled so a warm tracer hands out buffers without
    /// allocating. Buffered roots parent under the tracer's innermost open
    /// span at buffer creation, so buffered operator spans still nest
    /// inside phase spans.
    pub fn buffer(&self) -> SpanBuffer<'_> {
        if !self.inner.enabled {
            return SpanBuffer {
                tracer: None,
                global_parent: NO_SPAN,
                current: Cell::new(NO_SPAN),
                state: RefCell::new(BufState::default()),
            };
        }
        // Reuse a retired buffer's vectors when one is available; only the
        // first few buffers ever allocate.
        let state = self
            .inner
            .log
            .lock()
            .expect("span log poisoned")
            .free
            .pop()
            .unwrap_or_else(|| BufState {
                // One plan's operator tree: a few dozen spans, ~3 numeric
                // attributes each. Sized so a typical run never regrows.
                spans: Vec::with_capacity(32),
                num_attrs: Vec::with_capacity(96),
                str_attrs: Vec::with_capacity(8),
            });
        SpanBuffer {
            tracer: Some(self),
            global_parent: self.inner.current.load(Ordering::Relaxed),
            current: Cell::new(NO_SPAN),
            state: RefCell::new(state),
        }
    }

    /// Copy out everything recorded so far, in open order. Spans whose
    /// guards are still live at snapshot time are not included — their state
    /// lives in the guard and only lands in the log at close. Likewise,
    /// spans inside a [`SpanBuffer`] appear once the buffer flushes.
    pub fn snapshot(&self) -> TraceSnapshot {
        let log = self.inner.log.lock().expect("span log poisoned");
        let mut spans: Vec<SpanRecord> = log
            .spans
            .iter()
            .map(|r| SpanRecord {
                id: r.id as u64,
                parent: (r.parent != NO_SPAN).then_some(r.parent as u64),
                name: r.name.to_string(),
                start_nanos: r.start_nanos,
                end_nanos: r.end_nanos,
                num_attrs: Vec::new(),
                str_attrs: Vec::new(),
            })
            .collect();
        spans.sort_by_key(|s| s.id);
        // Attach the packed attribute streams: ids are unique and the span
        // vector is sorted by id, so each entry binds by binary search.
        for e in &log.num_attrs {
            if let Ok(i) = spans.binary_search_by_key(&(e.span as u64), |s| s.id) {
                spans[i].num_attrs.push((e.key.to_string(), e.value));
            }
        }
        for e in &log.str_attrs {
            if let Ok(i) = spans.binary_search_by_key(&(e.span as u64), |s| s.id) {
                spans[i]
                    .str_attrs
                    .push((e.key.to_string(), e.value.as_str().to_string()));
            }
        }
        TraceSnapshot {
            spans,
            metrics: self.inner.metrics.snapshot(),
        }
    }
}

/// Buffer-local span storage; ids are indices into `spans`.
#[derive(Default)]
struct BufState {
    spans: Vec<RawSpan>,
    num_attrs: Vec<NumEntry>,
    str_attrs: Vec<StrEntry>,
}

/// Unsynchronized span recording for one traced hot region — see
/// [`Tracer::buffer`]. Not `Sync`: a buffer belongs to the thread driving
/// the region (worker threads keep using [`Tracer::metrics`]).
pub struct SpanBuffer<'t> {
    /// None when the tracer is disabled (every call is inert).
    tracer: Option<&'t Tracer>,
    global_parent: u32,
    /// Buffer-local index of the innermost open buffered span.
    current: Cell<u32>,
    state: RefCell<BufState>,
}

impl<'t> SpanBuffer<'t> {
    /// False when the owning tracer records no spans — instrumented code
    /// can skip attribute computation entirely.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Open a buffered span. Same nesting semantics as [`Tracer::span`],
    /// scoped to this buffer.
    pub fn span(&self, name: &'static str) -> BufGuard<'_, 't> {
        let Some(t) = self.tracer else {
            return BufGuard {
                buf: None,
                idx: 0,
                prev: NO_SPAN,
            };
        };
        let now = t.inner.clock.now_nanos();
        let mut st = self.state.borrow_mut();
        let idx = st.spans.len() as u32;
        st.spans.push(RawSpan {
            id: idx,
            parent: self.current.get(),
            name,
            start_nanos: now,
            end_nanos: now,
        });
        let prev = self.current.replace(idx);
        BufGuard {
            buf: Some(self),
            idx,
            prev,
        }
    }
}

impl Drop for SpanBuffer<'_> {
    fn drop(&mut self) {
        let Some(t) = self.tracer else { return };
        let mut st = std::mem::take(self.state.get_mut());
        let n = st.spans.len() as u32;
        let mut log = t.inner.log.lock().expect("span log poisoned");
        if n > 0 {
            // Remap buffer-local ids (`0..n`) to a fresh global range and
            // append. The copy is a few cache lines per query; keeping the
            // vectors (capacity intact) for the free pool is what makes the
            // steady state allocation-free.
            let base = t.inner.next_id.fetch_add(n, Ordering::Relaxed);
            for r in st.spans.drain(..) {
                let parent = if r.parent != NO_SPAN {
                    base + r.parent
                } else {
                    self.global_parent
                };
                log.spans.push(RawSpan {
                    id: base + r.id,
                    parent,
                    name: r.name,
                    start_nanos: r.start_nanos,
                    end_nanos: r.end_nanos,
                });
            }
            for e in st.num_attrs.drain(..) {
                log.num_attrs.push(NumEntry {
                    span: base + e.span,
                    key: e.key,
                    value: e.value,
                });
            }
            for e in st.str_attrs.drain(..) {
                log.str_attrs.push(StrEntry {
                    span: base + e.span,
                    key: e.key,
                    value: e.value,
                });
            }
        }
        log.free.push(st);
    }
}

/// RAII guard for a buffered span; drop closes it.
pub struct BufGuard<'b, 't> {
    /// None when the buffer is inert.
    buf: Option<&'b SpanBuffer<'t>>,
    idx: u32,
    prev: u32,
}

impl BufGuard<'_, '_> {
    /// Attach a numeric attribute to this buffered span.
    pub fn record_num(&self, key: &'static str, value: f64) {
        if let Some(b) = self.buf {
            b.state.borrow_mut().num_attrs.push(NumEntry {
                span: self.idx,
                key,
                value,
            });
        }
    }

    /// Attach several numeric attributes in one call — one buffer borrow
    /// instead of one per attribute, which is worth ~2x on an operator
    /// span's standard rows/bytes/ops triple.
    pub fn record_nums<const N: usize>(&self, kvs: [(&'static str, f64); N]) {
        if let Some(b) = self.buf {
            let mut st = b.state.borrow_mut();
            for (key, value) in kvs {
                st.num_attrs.push(NumEntry {
                    span: self.idx,
                    key,
                    value,
                });
            }
        }
    }

    /// Attach a string attribute to this buffered span. Values up to 22
    /// bytes (every table/operator name) are stored inline, no allocation.
    pub fn record_str(&self, key: &'static str, value: &str) {
        if let Some(b) = self.buf {
            b.state.borrow_mut().str_attrs.push(StrEntry {
                span: self.idx,
                key,
                value: AttrStr::new(value),
            });
        }
    }
}

impl Drop for BufGuard<'_, '_> {
    fn drop(&mut self) {
        let Some(b) = self.buf else { return };
        let t = b.tracer.expect("live guard implies live tracer");
        let now = t.inner.clock.now_nanos();
        let mut st = b.state.borrow_mut();
        st.spans[self.idx as usize].end_nanos = now;
        b.current.set(self.prev);
    }
}

/// Attributes buffered in the guard (on the stack, cache-warm) until close.
struct GuardAttrs {
    num: [(&'static str, f64); INLINE_NUM_ATTRS],
    num_len: u8,
    num_spill: Vec<(&'static str, f64)>,
    str0: Option<(&'static str, String)>,
    str_spill: Vec<(&'static str, String)>,
}

impl Default for GuardAttrs {
    fn default() -> Self {
        GuardAttrs {
            num: [("", 0.0); INLINE_NUM_ATTRS],
            num_len: 0,
            num_spill: Vec::new(),
            str0: None,
            str_spill: Vec::new(),
        }
    }
}

/// RAII guard for an open span; drop closes the span.
///
/// The guard carries the whole open-span state (name, parent, start time,
/// buffered attributes), so a hot operator span costs two atomic ops at
/// open and a single lock acquisition at close no matter how many
/// attributes it records.
pub struct SpanGuard<'a> {
    /// None when the tracer is disabled (the guard is inert).
    tracer: Option<&'a Tracer>,
    id: u32,
    /// Value of `current` displaced at open (the parent), restored at close.
    prev: u32,
    name: &'static str,
    start_nanos: u64,
    attrs: RefCell<GuardAttrs>,
}

impl SpanGuard<'_> {
    /// Attach a numeric attribute (rows, bytes, loss, …) to this span.
    pub fn record_num(&self, key: &'static str, value: f64) {
        if self.tracer.is_some() {
            let mut attrs = self.attrs.borrow_mut();
            let len = attrs.num_len as usize;
            if len < INLINE_NUM_ATTRS {
                attrs.num[len] = (key, value);
                attrs.num_len += 1;
            } else {
                attrs.num_spill.push((key, value));
            }
        }
    }

    /// Attach a string attribute to this span.
    pub fn record_str(&self, key: &'static str, value: &str) {
        if self.tracer.is_some() {
            let mut attrs = self.attrs.borrow_mut();
            if attrs.str0.is_none() && attrs.str_spill.is_empty() {
                attrs.str0 = Some((key, value.to_string()));
            } else {
                attrs.str_spill.push((key, value.to_string()));
            }
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(t) = self.tracer else { return };
        let now = t.inner.clock.now_nanos();
        // Restore the enclosing span. Guards drop LIFO, so `current` holds
        // this span's id; the compare-exchange keeps a stray out-of-order
        // drop (an outer guard dropped while an inner one leaks) from
        // clobbering the live inner span's context.
        let _ = t.inner.current.compare_exchange(
            self.id,
            self.prev,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        let attrs = self.attrs.get_mut();
        let mut log = t.inner.log.lock().expect("span log poisoned");
        log.spans.push(RawSpan {
            id: self.id,
            parent: self.prev,
            name: self.name,
            start_nanos: self.start_nanos,
            end_nanos: now,
        });
        for &(key, value) in &attrs.num[..attrs.num_len as usize] {
            log.num_attrs.push(NumEntry {
                span: self.id,
                key,
                value,
            });
        }
        for (key, value) in attrs.num_spill.drain(..) {
            log.num_attrs.push(NumEntry {
                span: self.id,
                key,
                value,
            });
        }
        if let Some((key, value)) = attrs.str0.take() {
            log.str_attrs.push(StrEntry {
                span: self.id,
                key,
                value: AttrStr::new(&value),
            });
        }
        for (key, value) in attrs.str_spill.drain(..) {
            log.str_attrs.push(StrEntry {
                span: self.id,
                key,
                value: AttrStr::new(&value),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    fn traced() -> (Tracer, TestClock) {
        let clock = TestClock::new();
        let tracer = Tracer::with_clock(Box::new(clock.clone()));
        (tracer, clock)
    }

    #[test]
    fn spans_nest_and_time_deterministically() {
        let (t, clock) = traced();
        {
            let outer = t.span("pipeline.train");
            clock.advance(100);
            {
                let inner = t.span("cost.adam_step");
                inner.record_num("epoch", 3.0);
                clock.advance(50);
            }
            clock.advance(25);
            outer.record_str("estimator", "widedeep");
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.name, "pipeline.train");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.start_nanos, 0);
        assert_eq!(outer.end_nanos, 175);
        assert_eq!(inner.name, "cost.adam_step");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.start_nanos, 100);
        assert_eq!(inner.end_nanos, 150);
        assert_eq!(inner.num_attr("epoch"), Some(3.0));
        assert_eq!(outer.str_attrs, vec![("estimator".to_string(), "widedeep".to_string())]);
    }

    #[test]
    fn siblings_share_a_parent_in_open_order() {
        let (t, clock) = traced();
        let root = t.span("root");
        for name in ["a", "b", "c"] {
            let _s = t.span(name);
            clock.advance(10);
        }
        drop(root);
        let snap = t.snapshot();
        let kids: Vec<&str> = snap
            .spans
            .iter()
            .filter(|s| s.parent == Some(0))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(kids, vec!["a", "b", "c"], "children recorded in open order");
        assert_eq!(snap.phase_names(), vec!["root".to_string()]);
    }

    #[test]
    fn instants_are_zero_duration_children() {
        let (t, clock) = traced();
        {
            let _root = t.span("online.ingest");
            clock.advance(7);
            t.instant("online.drift_trigger");
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let ev = &snap.spans[1];
        assert_eq!(ev.name, "online.drift_trigger");
        assert_eq!(ev.parent, Some(0));
        assert_eq!(ev.start_nanos, 7);
        assert_eq!(ev.duration_nanos(), 0);
    }

    #[test]
    fn open_spans_are_absent_until_their_guard_drops() {
        let (t, clock) = traced();
        let root = t.span("pipeline.truth");
        clock.advance(5);
        assert_eq!(t.span_count(), 1, "open span counts");
        assert!(t.snapshot().spans.is_empty(), "but is not yet in the log");
        drop(root);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].end_nanos, 5);
    }

    #[test]
    fn time_records_span_and_timing() {
        let (t, clock) = traced();
        let out = t.time("phase", || {
            clock.advance(2_000_000_000);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(t.span_count(), 1);
        let timing = t.metrics().timing("phase").expect("timing recorded");
        assert_eq!(timing.count, 1);
        assert!((timing.total_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_tracer_records_no_spans_but_keeps_metrics() {
        let t = Tracer::disabled();
        {
            let g = t.span("never");
            g.record_num("x", 1.0);
        }
        t.instant("never");
        let out = t.time("phase", || 5);
        assert_eq!(out, 5);
        t.metrics().inc("engine.cache_hit");
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.metrics.counters["engine.cache_hit"], 1);
    }

    #[test]
    fn buffered_spans_nest_flush_on_drop_and_parent_under_phase() {
        let (t, clock) = traced();
        let phase = t.span("pipeline.deploy");
        clock.advance(10);
        {
            let buf = t.buffer();
            {
                let root = buf.span("exec.filter");
                clock.advance(5);
                {
                    let child = buf.span("exec.scan");
                    child.record_str("table", "orders");
                    clock.advance(3);
                }
                root.record_num("rows", 7.0);
            }
            // Not yet flushed: only the open phase span exists, unrecorded.
            assert!(t.snapshot().spans.is_empty());
        }
        drop(phase);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        let by_name = |n: &str| snap.spans.iter().find(|s| s.name == n).expect("span");
        let phase = by_name("pipeline.deploy");
        let filter = by_name("exec.filter");
        let scan = by_name("exec.scan");
        assert_eq!(phase.parent, None);
        assert_eq!(filter.parent, Some(phase.id), "buffered root nests under the phase");
        assert_eq!(scan.parent, Some(filter.id));
        assert_eq!(filter.start_nanos, 10);
        assert_eq!(filter.end_nanos, 18);
        assert_eq!(scan.duration_nanos(), 3);
        assert_eq!(filter.num_attr("rows"), Some(7.0));
        assert_eq!(scan.str_attrs[0], ("table".to_string(), "orders".to_string()));
    }

    #[test]
    fn empty_or_disabled_buffers_record_nothing() {
        let t = Tracer::disabled();
        {
            let buf = t.buffer();
            let g = buf.span("never");
            g.record_num("x", 1.0);
        }
        assert_eq!(t.span_count(), 0);
        let live = Tracer::new();
        drop(live.buffer());
        assert!(live.snapshot().spans.is_empty());
    }

    #[test]
    fn snapshot_json_round_trips() {
        let (t, clock) = traced();
        {
            let g = t.span("pipeline.select");
            clock.advance(33);
            g.record_num("views", 4.0);
            g.record_str("selector", "rlview");
        }
        t.metrics().inc("select.flips");
        t.metrics().observe("select.reward", 0.125);
        let snap = t.snapshot();
        let text = snap.to_json();
        let back: TraceSnapshot = serde_json::from_str(&text).expect("round-trips");
        assert_eq!(back.spans, snap.spans);
        assert_eq!(back.metrics.counters, snap.metrics.counters);
        assert_eq!(
            back.metrics.histograms["select.reward"].count,
            snap.metrics.histograms["select.reward"].count
        );
    }
}
